#!/usr/bin/env python
"""k-clique mining for dense-community detection (bioinformatics style).

Clique listing underpins protein-complex detection and clique-percolation
community finding — another of the paper's motivating domains.  This
example plants dense "complexes" in a noisy background network, recovers
them via 4- and 5-clique listing, and shows how symmetry breaking keeps
the work proportional to the number of *distinct* cliques.

Run:  python examples/clique_communities.py
"""

from collections import Counter

from repro import count, embeddings
from repro.graph import planted_cliques
from repro.mining.api import plan_for
from repro.pattern import automorphism_count, named_pattern


def main() -> None:
    # 12 planted "protein complexes" (6-cliques) in a random background.
    graph = planted_cliques(
        600, num_cliques=12, clique_size=6, background_p=0.01, seed=99
    )
    print(
        f"network: {graph.num_vertices} vertices, {graph.num_edges} edges, "
        "12 planted 6-vertex complexes"
    )

    # ------------------------------------------------------------------
    # Count cliques of growing size; the planted complexes dominate.
    # ------------------------------------------------------------------
    for name in ("tc", "4cl", "5cl"):
        print(f"  {name}: {count(graph, name):,}")

    # Each planted 6-clique contains C(6,5) = 6 distinct 5-cliques; random
    # background 5-cliques are essentially impossible at p = 0.01.
    five_cliques = embeddings(graph, "5cl")
    expected = 12 * 6
    print(f"5-cliques found: {len(five_cliques)} (~{expected} from plants)")

    # ------------------------------------------------------------------
    # Recover the complexes: vertices appearing in many 5-cliques.
    # ------------------------------------------------------------------
    membership: Counter = Counter()
    for clique in five_cliques:
        membership.update(clique)
    core_vertices = {v for v, n in membership.items() if n >= 3}
    print(
        f"vertices in >= 3 distinct 5-cliques: {len(core_vertices)} "
        f"(12 complexes x 6 members = {12 * 6})"
    )

    # ------------------------------------------------------------------
    # Why symmetry breaking matters: each 5-clique has |Aut| = 120
    # automorphic orderings; restrictions keep exactly one.
    # ------------------------------------------------------------------
    aut = automorphism_count(named_pattern("5cl"))
    plan = plan_for("5cl")
    print(
        f"\n5-clique automorphisms: {aut}; plan restrictions: "
        f"{[str(r) for r in plan.restrictions]}"
    )
    print(
        "without restrictions the engine would enumerate "
        f"{len(five_cliques) * aut:,} embeddings instead of "
        f"{len(five_cliques):,}"
    )
    assert all(a < b < c < d < e for a, b, c, d, e in five_cliques)
    print("every listed clique is in canonical (ascending) order")


if __name__ == "__main__":
    main()
