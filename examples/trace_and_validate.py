#!/usr/bin/env python
"""Inspecting a simulation: traces, Gantt charts, and cross-validation.

Shows the tooling around the simulators:

* the :class:`~repro.hw.trace.Tracer` records per-PE timelines, rendered
  as a text Gantt chart — the load-imbalance pathology of power-law
  graphs (paper section 2.3) is directly visible;
* :func:`~repro.mining.validate.cross_validate` runs every executor
  (brute force, reference engine, both accelerators, the software model)
  on one job and checks they agree;
* the cost-model order search (paper section 2.1's compiler topic)
  compares candidate mining orders for a pattern.

Run:  python examples/trace_and_validate.py
"""

from repro import FingersConfig, named_pattern, simulate
from repro.graph import erdos_renyi, load_dataset
from repro.hw.trace import Tracer, render_gantt
from repro.mining.validate import cross_validate
from repro.pattern.compiler import choose_vertex_order, compile_plan
from repro.pattern.ordering import (
    OrderCostModel,
    estimate_plan_cost,
    search_vertex_order,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Trace a run on a skewed graph and render the timeline.
    # ------------------------------------------------------------------
    graph = load_dataset("Lj")
    roots = list(range(0, graph.num_vertices, 32))
    tracer = Tracer()
    result = simulate(
        graph, "tc", FingersConfig(num_pes=6), roots=roots, tracer=tracer
    )
    print(f"tc on the LiveJournal analog, 6 PEs: {result.cycles:,.0f} cycles, "
          f"imbalance {result.chip.load_imbalance:.2f}")
    print("timeline ('#' = task groups, '.' = memory stalls):")
    print(render_gantt(tracer, width=66))
    for pid in range(6):
        print(f"  PE{pid}: busy fraction {tracer.busy_fraction(pid):.2f}")

    # ------------------------------------------------------------------
    # 2. Cross-validate every executor on one small job.
    # ------------------------------------------------------------------
    small = erdos_renyi(25, 0.3, seed=42)
    report = cross_validate(small, "tt", include_software=True)
    print()
    print(report)
    assert report.consistent

    # ------------------------------------------------------------------
    # 3. Compare mining orders under the cost model.
    # ------------------------------------------------------------------
    pattern = named_pattern("dia")
    model = OrderCostModel.from_graph(graph)
    greedy = choose_vertex_order(pattern)
    searched = search_vertex_order(pattern, model=model)
    print("\nmining-order search for the diamond pattern:")
    for label, order in (("greedy", greedy), ("searched", searched)):
        plan = compile_plan(pattern, order=order)
        cost = estimate_plan_cost(plan, model)
        print(f"  {label:9s} order={list(order)}  estimated work={cost:,.0f}")


if __name__ == "__main__":
    main()
