#!/usr/bin/env python
"""Architect's view: explore the FINGERS design space under an area budget.

Uses the area model (paper Table 2) and the timing model together the way
section 6.4 does: sweep the IU count under the iso-area rule
(#IUs x segment length = constant), compare task-group sizing policies,
and pick a configuration for a target workload.

Run:  python examples/design_space_exploration.py
"""

from repro import FingersConfig, simulate
from repro.graph import load_dataset
from repro.hw.area import (
    fingers_pe_area,
    iso_area_segment_length,
    scale_28_to_15,
)


def main() -> None:
    graph = load_dataset("Yo")
    roots = list(range(0, graph.num_vertices, 4))
    workload = "tt"
    print(
        f"target workload: {workload} on the Youtube analog "
        f"({graph.num_vertices} vertices, avg degree {graph.avg_degree():.1f})"
    )

    # ------------------------------------------------------------------
    # Iso-area IU sweep (the Figure 12 experiment, condensed).
    # ------------------------------------------------------------------
    print("\n#IUs  s_l  PE area(mm2@28nm)  cycles        speedup-vs-1IU")
    base_cycles = None
    best = None
    for num_ius in (1, 4, 8, 16, 24, 48):
        seg = iso_area_segment_length(num_ius)
        cfg = FingersConfig(num_pes=1, num_ius=num_ius, long_segment_len=seg)
        area = fingers_pe_area(cfg).total
        res = simulate(graph, workload, cfg, roots=roots)
        if base_cycles is None:
            base_cycles = res.cycles
        speedup = base_cycles / res.cycles
        marker = ""
        if best is None or res.cycles < best[1]:
            best = (num_ius, res.cycles)
            marker = "  <- best so far"
        print(
            f"{num_ius:4d}  {seg:3d}  {area:17.3f}  {res.cycles:12,.0f}"
            f"  {speedup:14.2f}{marker}"
        )
    print(f"\nbest iso-area configuration: {best[0]} IUs")

    # ------------------------------------------------------------------
    # Task-group sizing (the pseudo-DFS knob of section 4.1).
    # ------------------------------------------------------------------
    print("\ntask-group size sensitivity (paper: 'performance is insensitive"
          " to these parameters'):")
    auto = simulate(graph, workload, FingersConfig(num_pes=1), roots=roots)
    print(f"  auto policy (chose {auto.chip.task_group_size}): "
          f"{auto.cycles:12,.0f} cycles")
    for size in (1, 2, 4, 8, 16):
        cfg = FingersConfig(num_pes=1, task_group_size=size)
        res = simulate(graph, workload, cfg, roots=roots)
        print(f"  group size {size:2d}:          {res.cycles:12,.0f} cycles"
              f"  ({auto.cycles / res.cycles:.2f}x vs auto)")

    # ------------------------------------------------------------------
    # Chip-level: PEs under a fixed area budget.
    # ------------------------------------------------------------------
    print("\nchip-level scaling at the paper's default PE:")
    pe_area_15 = scale_28_to_15(fingers_pe_area().total)
    for num_pes in (5, 10, 20):
        res = simulate(graph, workload, FingersConfig(num_pes=num_pes),
                       roots=roots)
        print(
            f"  {num_pes:2d} PEs ({num_pes * pe_area_15:5.2f} mm2 @15nm): "
            f"{res.cycles:12,.0f} cycles, "
            f"load imbalance {res.chip.load_imbalance:.2f}"
        )


if __name__ == "__main__":
    main()
