#!/usr/bin/env python
"""Motif census of a social-style network — the paper's intro use case.

Triad (and tetrad) censuses are the classic social-network-analysis
workload the paper motivates graph mining with [Holland & Leinhardt 1976;
Frank 1988]: count every connected 3- and 4-vertex motif, then derive
summary statistics such as the global clustering coefficient.

This example runs the census two ways — the pure-software reference
engine, and the FINGERS accelerator model as a multi-pattern job (the
paper's ``3mc`` benchmark) — and checks they agree.

Run:  python examples/social_motif_census.py
"""

from repro import FingersConfig, motif_census, simulate
from repro.graph import barabasi_albert
from repro.pattern import compile_multi_plan, motif_patterns


def main() -> None:
    # A preferential-attachment network: a stand-in for a small social
    # graph with hubs and triadic closure.
    graph = barabasi_albert(2000, 4, seed=12)
    print(
        f"social-style graph: {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges, max degree {graph.max_degree()}"
    )

    # ------------------------------------------------------------------
    # Triad census (3-motifs) with the reference engine.
    # ------------------------------------------------------------------
    triads = motif_census(graph, 3)
    print("\ntriad census:")
    for name, value in sorted(triads.items()):
        print(f"  {name:8s} {value:>10,}")

    closed = triads["tc"]
    open_ = triads["wedge"]
    clustering = 3 * closed / (3 * closed + open_) if closed + open_ else 0.0
    print(f"global clustering coefficient: {clustering:.4f}")

    # ------------------------------------------------------------------
    # Tetrad census (4-motifs): six connected shapes.
    # ------------------------------------------------------------------
    tetrads = motif_census(graph, 4)
    print("\ntetrad census:")
    for name, value in sorted(tetrads.items(), key=lambda kv: -kv[1]):
        print(f"  {name:16s} {value:>10,}")

    # ------------------------------------------------------------------
    # The same triad census as one multi-pattern accelerator job.
    # ------------------------------------------------------------------
    patterns, names = motif_patterns(3)
    multi = compile_multi_plan(patterns, names=names)
    print(
        f"\nmulti-pattern plan: {multi.num_patterns} patterns, "
        f"{multi.shared_prefix} shared tree level(s)"
    )
    result = simulate(graph, "3mc", FingersConfig(num_pes=4))
    by_name = result.counts_by_name
    print(f"accelerator counts: {by_name}")
    print(f"chip cycles (4 PEs): {result.cycles:,.0f}")
    assert by_name["tc"] == triads["tc"]
    assert by_name["wedge"] == triads["wedge"]
    print("accelerator counts match the reference engine")


if __name__ == "__main__":
    main()
