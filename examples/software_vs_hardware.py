#!/usr/bin/env python
"""Software vs hardware: how far does multicore + work stealing get you?

The paper's section 3.5 notes that branch/set/segment parallelism "could
also be used in software frameworks", but overheads diminish the
returns, and specialized hardware is the answer.  This example measures
that argument end to end:

1. scale a software miner from 1 to 16 cores, with and without
   branch-granularity work stealing (the aDFS idea);
2. put the best software configuration against the FlexMiner and
   FINGERS chips in wall-clock time.

Run:  python examples/software_vs_hardware.py
"""

from repro import FingersConfig, FlexMinerConfig, simulate
from repro.graph import load_dataset
from repro.sw import SoftwareConfig, simulate_software


def main() -> None:
    graph = load_dataset("Lj")
    roots = list(range(0, graph.num_vertices, 16))
    pattern = "tc"
    print(
        f"workload: {pattern} on the LiveJournal analog "
        f"({graph.num_vertices:,} vertices, hubs up to degree "
        f"{graph.max_degree()})"
    )

    # ------------------------------------------------------------------
    # 1. Software scaling: tree vs branch granularity.
    # ------------------------------------------------------------------
    print("\ncores  tree-granularity      branch-granularity (work stealing)")
    base = None
    for cores in (1, 2, 4, 8, 16):
        row = [f"{cores:3d}  "]
        for granularity in ("tree", "branch"):
            cfg = SoftwareConfig(num_cores=cores, granularity=granularity)
            res = simulate_software(graph, pattern, cfg, roots=roots)
            if base is None:
                base = res.cycles
            row.append(
                f"x{base / res.cycles:5.2f} (imb {res.load_imbalance:4.2f})  "
            )
        print("  ".join(row))
    print(
        "tree granularity saturates on the hub-rooted tree (paper "
        "section 2.3);\nbranch-level tasks in software fix the imbalance "
        "— the aDFS result."
    )

    # ------------------------------------------------------------------
    # 2. Best software vs the accelerators, in nanoseconds.
    # ------------------------------------------------------------------
    sw_cfg = SoftwareConfig(num_cores=16, granularity="branch")
    sw = simulate_software(graph, pattern, sw_cfg, roots=roots)
    flex = simulate(graph, pattern, FlexMinerConfig(num_pes=40), roots=roots)
    fing = simulate(graph, pattern, FingersConfig(num_pes=20), roots=roots)
    assert sw.counts == flex.counts == fing.counts

    sw_ns = sw.cycles / sw_cfg.frequency_ghz
    flex_ns = flex.cycles / 1.0
    fing_ns = fing.cycles / 1.0
    print(f"\n{'design':34s} {'time':>12s}  vs CPU")
    print(f"{'16-core CPU (2.5 GHz, stealing)':34s} {sw_ns:10,.0f}ns   1.0x")
    print(f"{'FlexMiner, 40 PEs (1 GHz)':34s} {flex_ns:10,.0f}ns "
          f"{sw_ns / flex_ns:5.1f}x")
    print(f"{'FINGERS, 20 PEs (1 GHz, iso-area)':34s} {fing_ns:10,.0f}ns "
          f"{sw_ns / fing_ns:5.1f}x")


if __name__ == "__main__":
    main()
