#!/usr/bin/env python
"""Quickstart: mine patterns in a graph and simulate the accelerator.

Walks through the full public API in five minutes:

1. build a graph (from edges, a generator, or a dataset analog);
2. compile a pattern into an execution plan and inspect it;
3. count / list embeddings with the reference engine;
4. simulate the same job on the FINGERS accelerator and the FlexMiner
   baseline, and compare cycles.

Run:  python examples/quickstart.py
"""

from repro import (
    FingersConfig,
    FlexMinerConfig,
    compile_plan,
    count,
    embeddings,
    load_dataset,
    named_pattern,
    simulate,
)
from repro.graph import from_edges


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Graphs.  The paper's Figure 1 example graph (renumbered 0-4):
    # ------------------------------------------------------------------
    graph = from_edges([(1, 0), (1, 2), (1, 3), (1, 4), (0, 2), (2, 4)])
    print(f"example graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # ------------------------------------------------------------------
    # 2. Patterns and execution plans (paper section 2.1).
    # ------------------------------------------------------------------
    tailed_triangle = named_pattern("tt")
    plan = compile_plan(tailed_triangle)
    print("\ncompiled plan for the tailed triangle (paper Figure 2):")
    print(plan.describe())

    # ------------------------------------------------------------------
    # 3. Mining with the reference engine.
    # ------------------------------------------------------------------
    print(f"\ntailed triangles: {count(graph, 'tt')}")
    print(f"embeddings: {embeddings(graph, 'tt')}")
    print(f"triangles: {count(graph, 'tc')}")

    # ------------------------------------------------------------------
    # 4. Accelerator simulation on a dataset analog.
    # ------------------------------------------------------------------
    mico = load_dataset("Mi")
    print(f"\nMico analog: {mico.num_vertices} vertices, {mico.num_edges} edges")
    fingers = simulate(mico, "tc", FingersConfig(num_pes=1))
    baseline = simulate(mico, "tc", FlexMinerConfig(num_pes=1))
    print(f"triangle count (both designs agree): {fingers.count}")
    print(f"FINGERS PE cycles:   {fingers.cycles:,.0f}")
    print(f"FlexMiner PE cycles: {baseline.cycles:,.0f}")
    print(f"single-PE speedup:   {fingers.speedup_over(baseline):.2f}x")


if __name__ == "__main__":
    main()
