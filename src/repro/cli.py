"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``stats``      Table-1-style statistics for a dataset analog or edge-list file.
``plan``       Print a pattern's compiled execution plan.
``count``      Count (or list) embeddings with the reference engine.
``motifs``     k-motif census.
``simulate``   Run one job on any registered backend (``--design``).
``backends``   List registered execution backends and their config types.
``validate``   Cross-check every backend's count on one job.
``compare``    Both accelerator designs on one job, with the speedup.
``bench``      Run one named experiment (table1 ... fig13, table3,
               ablation-*) and print the paper-shaped output.
``cache``      Inspect or clear the persistent result cache.
``exp``        Experiment platform: run declarative sweeps into the
               result store, generate reports, diff runs against
               baselines (docs/BENCHMARKS.md).
``lint``       Static determinism/parallel-safety linter (docs/ANALYSIS.md).
``lint-plan``  Statically verify compiled execution plans.
``tune``       Measure and persist the tuned plan/policy choice for one
               (pattern, graph) cell (docs/TUNING.md).

``count``, ``simulate``, ``compare``, and ``bench`` accept ``--jobs N``
(shard search-tree roots over N worker processes; results are identical
for every N — see docs/PARALLELISM.md) and ``--no-cache`` (bypass the
persistent result cache in ``REPRO_CACHE_DIR``/``~/.cache/repro``).

Examples::

    python -m repro stats --dataset Mi
    python -m repro count tc --dataset Mi --jobs 8
    python -m repro plan tt
    python -m repro compare cyc --dataset As --pes 1 --jobs 4
    python -m repro bench table2
    python -m repro tune tt --dataset Mi
    python -m repro exp run examples/sweeps/smoke.toml
    python -m repro exp report smoke
    python -m repro exp diff kernels-baseline kernels-current
    python -m repro cache info
    python -m repro lint --json
    python -m repro lint-plan --all
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.graph.datasets import (
    bench_graph_names,
    dataset_names,
    load_dataset,
)
from repro.graph.io import load_edge_list
from repro.graph.stats import graph_stats

__all__ = ["main", "build_parser"]


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--dataset", choices=dataset_names() + bench_graph_names(),
        help="built-in dataset analog or benchmark graph",
    )
    group.add_argument("--file", help="SNAP-style edge-list file")


def _load_graph(args: argparse.Namespace):
    if args.dataset:
        return load_dataset(args.dataset)
    return load_edge_list(args.file)


def _graph_label(args: argparse.Namespace) -> str:
    return args.dataset if args.dataset else args.file


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="shard roots over N worker processes (results identical "
             "for every N; see docs/PARALLELISM.md)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FINGERS (ASPLOS 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="graph statistics (Table 1 columns)")
    _add_graph_args(p)

    p = sub.add_parser("plan", help="print a compiled execution plan")
    p.add_argument("pattern", help="benchmark pattern name (tc, 4cl, tt, ...)")
    p.add_argument(
        "--edge-induced", action="store_true", help="edge-induced semantics"
    )

    p = sub.add_parser("count", help="count embeddings (reference engine)")
    p.add_argument("pattern")
    _add_graph_args(p)
    p.add_argument(
        "--edge-induced", action="store_true", help="edge-induced semantics"
    )
    p.add_argument(
        "--list", type=int, metavar="N", default=None,
        help="also print the first N embeddings",
    )
    _add_parallel_args(p)

    p = sub.add_parser("motifs", help="k-motif census")
    p.add_argument("k", type=int, choices=[2, 3, 4, 5])
    _add_graph_args(p)

    from repro.core.backend import backend_names

    p = sub.add_parser("simulate", help="simulate one design")
    p.add_argument("pattern")
    _add_graph_args(p)
    p.add_argument(
        "--design", choices=backend_names(), default="fingers",
    )
    p.add_argument("--pes", type=int, default=None, help="PE / core count")
    p.add_argument("--ius", type=int, default=24)
    p.add_argument("--group-size", type=int, default=None)
    p.add_argument("--root-stride", type=int, default=1)
    p.add_argument(
        "--schedule", choices=["dynamic", "static_interleave", "static_block"],
        default="dynamic",
    )
    p.add_argument("--trace", action="store_true", help="print a text Gantt")
    _add_parallel_args(p)

    p = sub.add_parser("validate", help="cross-check all executors")
    p.add_argument("pattern")
    _add_graph_args(p)
    p.add_argument("--software", action="store_true",
                   help="include the multi-core software model")

    p = sub.add_parser("compare", help="FINGERS vs FlexMiner on one job")
    p.add_argument("pattern")
    _add_graph_args(p)
    p.add_argument("--pes", type=int, default=1, help="FINGERS PEs (baseline x2)")
    p.add_argument("--root-stride", type=int, default=1)
    _add_parallel_args(p)

    p = sub.add_parser("bench", help="run one named experiment")
    p.add_argument(
        "experiment",
        choices=[
            "table1", "table2", "fig9", "fig10", "fig11", "fig12", "fig13",
            "table3", "ablation-scheduling", "ablation-max-load",
            "ablation-dividers", "ablation-group-size", "ablation-imbalance",
            "software-scaling", "software-comparison",
            "sensitivity-dram", "sensitivity-hit", "sensitivity-noc",
        ],
    )
    _add_parallel_args(p)

    sub.add_parser(
        "backends",
        help="list registered execution backends (repro.core registry)",
    )

    p = sub.add_parser(
        "tune",
        help="measure & persist the tuned plan/policy for one "
             "(pattern, graph) cell (docs/TUNING.md)",
    )
    p.add_argument("pattern", help="benchmark pattern name (tc, 4cl, tt, ...)")
    _add_graph_args(p)
    p.add_argument(
        "--edge-induced", action="store_true", help="edge-induced semantics"
    )
    p.add_argument(
        "--force", action="store_true",
        help="re-run measured trials even when the store already holds "
             "a choice for this cell",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    p = sub.add_parser(
        "cache", help="inspect, clear, or health-check the result cache"
    )
    p.add_argument(
        "action", choices=["info", "clear", "path", "doctor"],
        help="info: entries, size, counters; clear: delete entries; "
             "path: print dir; doctor: validate every entry, quarantine "
             "unreadable ones (docs/RESILIENCE.md)",
    )
    p.add_argument(
        "--purge-quarantine", action="store_true",
        help="with doctor: delete previously quarantined files after "
             "the scan",
    )

    p = sub.add_parser(
        "exp",
        help="experiment sweeps, result store, reports, regression diffs "
             "(docs/BENCHMARKS.md)",
    )
    exp_sub = p.add_subparsers(dest="exp_command", required=True)

    def _add_lint_args(p, default_baseline: str) -> None:
        p.add_argument(
            "paths", nargs="*",
            help="files or directories to lint (default: the repro package)",
        )
        p.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )
        p.add_argument(
            "--baseline", metavar="FILE", default=None,
            help=f"baseline suppression file "
                 f"(default: ./{default_baseline} if present)",
        )
        p.add_argument(
            "--no-baseline", action="store_true",
            help="report every finding, ignoring the baseline file",
        )
        p.add_argument(
            "--write-baseline", action="store_true",
            help="snapshot current findings into the baseline file and "
                 "exit 0 (requires --reason)",
        )
        p.add_argument(
            "--reason", metavar="TEXT", default=None,
            help="with --write-baseline: the documented justification "
                 "applied to every written entry (required; edit the "
                 "file for per-entry reasons)",
        )
        p.add_argument(
            "--show-suppressed", action="store_true",
            help="also list baselined findings individually",
        )
        p.add_argument(
            "--check-unused-baseline", action="store_true",
            help="fail when the baseline carries entries no current "
                 "finding matches (stale suppressions)",
        )

    q = exp_sub.add_parser(
        "run", help="execute a sweep spec into the result store"
    )
    q.add_argument("spec", help="sweep spec file (.toml or .json)")
    q.add_argument(
        "--run", default=None, metavar="NAME",
        help="store run name (default: the spec's sweep.name)",
    )
    q.add_argument(
        "--store", default=None, metavar="DIR",
        help="store directory (default: benchmarks/results/store)",
    )
    q.add_argument(
        "--no-resume", action="store_true",
        help="re-execute cells even when already present in the run",
    )
    q.add_argument(
        "--sanitize", action="store_true",
        help="runtime determinism sanitizer: run every executed cell "
             "twice, uncached, and require bit-identical probe traces "
             "(also enabled by REPRO_SANITIZE=1)",
    )
    q.add_argument(
        "--retry-failed", action="store_true",
        help="re-execute only cells whose latest row is a failure; "
             "successful cells stay resumed (docs/RESILIENCE.md)",
    )
    q.add_argument(
        "--no-isolate", action="store_true",
        help="abort the sweep at the first failing cell instead of "
             "recording a structured failure row",
    )
    _add_parallel_args(q)

    q = exp_sub.add_parser(
        "report", help="render a stored run as markdown + HTML"
    )
    q.add_argument("run", help="run name in the store")
    q.add_argument("--store", default=None, metavar="DIR")
    q.add_argument(
        "--out", default=None, metavar="DIR",
        help="output directory (default: benchmarks/results/reports)",
    )
    q.add_argument(
        "--format", choices=["md", "html", "txt"], action="append",
        default=None,
        help="emit only this format (repeatable; default: md + html; "
             "txt is the terminal-facing view that replaced the "
             "retired 'repro.bench --out' text artifacts)",
    )

    q = exp_sub.add_parser(
        "diff", help="compare a run against a baseline run (exit 1 on "
                     "regression)"
    )
    q.add_argument("baseline", help="baseline run name")
    q.add_argument("current", help="run name to check")
    q.add_argument("--store", default=None, metavar="DIR")
    q.add_argument(
        "--threshold", type=float, default=1.25, metavar="R",
        help="cycles/metrics regression ratio (default: 1.25)",
    )
    q.add_argument(
        "--wall-threshold", type=float, default=1.5, metavar="R",
        help="wall-time regression ratio (default: 1.5; wall time is "
             "host-noise-prone)",
    )

    q = exp_sub.add_parser("list", help="list runs in the result store")
    q.add_argument("--store", default=None, metavar="DIR")

    q = exp_sub.add_parser(
        "migrate",
        help="import legacy BENCH_kernels.json / fig10 / ablation files "
             "as baseline runs",
    )
    q.add_argument(
        "--results", default=None, metavar="DIR",
        help="legacy results directory (default: benchmarks/results)",
    )
    q.add_argument("--store", default=None, metavar="DIR")
    q.add_argument(
        "--force", action="store_true",
        help="replace baseline runs that already exist in the store",
    )

    p = sub.add_parser(
        "lint",
        help="determinism/parallel-safety linter (rule catalog: "
             "docs/ANALYSIS.md)",
    )
    _add_lint_args(p, ".repro-lint-baseline.json")

    p = sub.add_parser(
        "lint-flow",
        help="whole-program dataflow analyzer: races on worker paths, "
             "kernel-policy taint, cache-key escapes (docs/ANALYSIS.md "
             "Tier C)",
    )
    _add_lint_args(p, ".repro-flow-baseline.json")

    p = sub.add_parser(
        "lint-plan", help="statically verify compiled execution plans"
    )
    p.add_argument(
        "pattern", nargs="?",
        help="benchmark pattern name (tc, 4cl, tt, ...); omit with --all",
    )
    p.add_argument(
        "--all", action="store_true",
        help="verify every built-in pattern, both semantics",
    )
    p.add_argument(
        "--edge-induced", action="store_true", help="edge-induced semantics"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    return parser


def _cmd_stats(args) -> int:
    s = graph_stats(_load_graph(args))
    print(f"vertices:      {s.num_vertices:,}")
    print(f"edges:         {s.num_edges:,}")
    print(f"avg degree:    {s.avg_degree}")
    print(f"max degree:    {s.max_degree}")
    print(f"median degree: {s.median_degree}")
    print(f"CSR bytes:     {s.csr_bytes:,}")
    return 0


def _cmd_plan(args) -> int:
    from repro.mining.api import plan_for

    plan = plan_for(args.pattern, vertex_induced=not args.edge_induced)
    print(plan.describe())
    return 0


def _cmd_count(args) -> int:
    from repro.cache import disk_memoize, graph_fingerprint, make_key
    from repro.mining.api import count, embeddings

    graph = _load_graph(args)
    vi = not args.edge_induced
    key = make_key(
        kind="count",
        graph=graph_fingerprint(graph),
        pattern=args.pattern,
        vertex_induced=vi,
    )
    total = disk_memoize(
        key,
        lambda: count(graph, args.pattern, vertex_induced=vi, jobs=args.jobs),
        enabled=not args.no_cache,
    )
    print(f"{args.pattern}: {total:,}")
    if args.list:
        for emb in embeddings(graph, args.pattern, vertex_induced=vi,
                              limit=args.list, jobs=args.jobs):
            print("  " + "-".join(str(v) for v in emb))
    return 0


def _cmd_motifs(args) -> int:
    from repro.mining.api import motif_census

    census = motif_census(_load_graph(args), args.k)
    for name, value in sorted(census.items(), key=lambda kv: -kv[1]):
        print(f"{name:20s} {value:>12,}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.bench.runner import run_backend_cached
    from repro.core.backend import get_backend

    backend = get_backend(args.design)
    graph = _load_graph(args)
    roots = list(range(0, graph.num_vertices, args.root_stride))
    config = backend.config_from_args(args)
    if args.trace:
        # Tracing records the actual event interleaving: unsharded,
        # uncached by design.
        if args.jobs is not None:
            print("error: --trace and --jobs are mutually exclusive",
                  file=sys.stderr)
            return 2
        if not backend.supports_trace:
            print(f"error: the {backend.name} backend does not support "
                  "--trace", file=sys.stderr)
            return 2
        from repro.hw.trace import Tracer, render_gantt

        tracer = Tracer()
        res = backend.run(
            graph, args.pattern, config,
            roots=roots, schedule=args.schedule, tracer=tracer,
        )
        for line in backend.summary(res):
            print(line)
        print(render_gantt(tracer))
        return 0
    res = run_backend_cached(
        backend, graph, _graph_label(args), args.pattern, config,
        roots=roots, schedule=args.schedule, jobs=args.jobs,
        disk=not args.no_cache,
    )
    for line in backend.summary(res):
        print(line)
    return 0


def _cmd_backends(args) -> int:
    from repro.core.backend import backend_names, get_backend

    for name in backend_names():
        backend = get_backend(name)
        print(f"{name:12s} config={backend.config_type.__name__:16s} "
              f"key=v{backend.cache_key_version}  {backend.description}")
    return 0


def _cmd_tune(args) -> int:
    import json as _json

    from repro.core.backend import config_signature
    from repro.mining.api import plan_for
    from repro.tuning import reset_tuning_stats, tune_plan, tuning_stats

    graph = _load_graph(args)
    plan = plan_for(args.pattern, vertex_induced=not args.edge_induced)
    reset_tuning_stats()
    choice = tune_plan(graph, plan, force=args.force)
    stats = tuning_stats()
    if stats.tuned_cells:
        source = "trial"
    elif stats.store_hits:
        source = "store"
    elif stats.memo_hits:
        source = "memo"
    else:
        source = "trivial"
    if args.json:
        print(_json.dumps({
            "pattern": args.pattern,
            "graph": _graph_label(args),
            "source": source,
            "candidate": choice.candidate_label,
            "order": list(choice.order),
            "policy": config_signature(choice.policy),
            "trials": choice.trials,
            "sample_size": choice.sample_size,
            "reference_seconds": choice.reference_seconds,
            "chosen_seconds": choice.chosen_seconds,
            "speedup": choice.speedup,
            "stats": stats.as_dict(),
        }, indent=2))
        return 0
    print(f"pattern:   {args.pattern} "
          f"({'edge' if args.edge_induced else 'vertex'}-induced)")
    print(f"graph:     {_graph_label(args)}")
    print(f"source:    {source}")
    print(f"candidate: {choice.candidate_label}")
    print(f"order:     {'-'.join(str(v) for v in choice.order)}")
    print(f"policy:    {config_signature(choice.policy)}")
    if source == "trial":
        print(f"trials:    {choice.trials} "
              f"(final sample: {choice.sample_size} roots)")
    else:
        print(f"trials:    0 this run (choice decided by {choice.trials} "
              f"stored trials; --force re-measures)")
    if choice.trials:
        print(f"speedup:   {choice.speedup:.2f}x over the reference "
              f"({choice.reference_seconds * 1e3:.1f} ms -> "
              f"{choice.chosen_seconds * 1e3:.1f} ms)")
    if stats.rejected_candidates:
        print(f"rejected:  {stats.rejected_candidates} candidate(s) with "
              f"diverging per-root sequences")
    return 0


def _cmd_validate(args) -> int:
    from repro.mining.validate import cross_validate

    report = cross_validate(
        _load_graph(args), args.pattern, include_software=args.software
    )
    print(report)
    return 0 if report.consistent else 1


def _cmd_compare(args) -> int:
    from repro.bench.runner import run_cached
    from repro.hw.api import FingersConfig, FlexMinerConfig

    graph = _load_graph(args)
    label = _graph_label(args)
    roots = list(range(0, graph.num_vertices, args.root_stride))
    fingers = run_cached(
        graph, label, args.pattern, FingersConfig(num_pes=args.pes),
        None, roots, jobs=args.jobs, disk=not args.no_cache,
    )
    flex = run_cached(
        graph, label, args.pattern, FlexMinerConfig(num_pes=2 * args.pes),
        None, roots, jobs=args.jobs, disk=not args.no_cache,
    )
    print(f"count: {fingers.count:,}")
    print(f"FINGERS   ({args.pes:3d} PEs): {fingers.cycles:14,.0f} cycles")
    print(f"FlexMiner ({2 * args.pes:3d} PEs): {flex.cycles:14,.0f} cycles")
    print(f"iso-area speedup: {fingers.speedup_over(flex):.2f}x")
    return 0


def _cmd_cache(args) -> int:
    from repro.cache import SCHEMA_VERSION, default_cache

    cache = default_cache()
    if args.action == "path":
        print(cache.directory)
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.directory}")
        return 0
    if args.action == "doctor":
        report = cache.doctor()
        print(f"directory:   {cache.directory}")
        print(f"checked:     {report['checked']}")
        print(f"ok:          {report['ok']}")
        print(f"stale:       {report['stale']} (deleted)")
        print(f"corrupt:     {report['corrupt']} "
              f"({report['quarantined']} quarantined)")
        if args.purge_quarantine:
            purged = cache.purge_quarantine()
            print(f"quarantine:  purged {purged} file(s)")
        else:
            print(f"quarantine:  {report['quarantine_backlog']} file(s) "
                  f"in {cache.quarantine_dir()}")
        return 0
    entries = cache.entries()
    print(f"directory: {cache.directory}")
    print(f"schema:    v{SCHEMA_VERSION}")
    print(f"entries:   {len(entries)}")
    print(f"bytes:     {cache.size_bytes():,}")
    counters = cache.counters.as_dict()
    print("counters:  " + "  ".join(f"{k}={v}" for k, v in counters.items()))
    quarantined = cache.quarantined_entries()
    if quarantined:
        print(f"quarantine: {len(quarantined)} file(s) awaiting review "
              f"(repro cache doctor --purge-quarantine)")
    return 0


def _finish_lint(args, findings, default_baseline_name: str) -> int:
    """Baseline handling + reporting shared by ``lint`` and ``lint-flow``."""
    from pathlib import Path

    from repro.analysis import (
        load_baseline,
        render_json,
        render_text,
        write_baseline,
    )
    from repro.analysis.baseline import (
        Baseline,
        partition,
        undocumented_entries,
        unused_entries,
    )

    baseline_path = Path(args.baseline) if args.baseline else Path(
        default_baseline_name
    )
    if args.write_baseline:
        if args.reason is None:
            print(
                "error: --write-baseline requires --reason TEXT (the "
                "documented justification for the suppressed findings)",
                file=sys.stderr,
            )
            return 2
        try:
            written = write_baseline(baseline_path, findings,
                                     reason=args.reason)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"wrote {len(written)} finding{'' if len(written) == 1 else 's'} "
            f"to {baseline_path}; refine per-entry reasons in the file"
        )
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    fresh, suppressed = partition(findings, baseline)
    if args.json:
        print(render_json(fresh, suppressed))
    else:
        print(render_text(fresh, suppressed,
                          verbose_suppressed=args.show_suppressed))
    status = 1 if fresh else 0
    if args.check_unused_baseline:
        stale = unused_entries(findings, baseline)
        for fp in sorted(stale):
            entry = stale[fp]
            print(
                "stale baseline entry {}: {} {} ({!r})".format(
                    fp, entry.get("rule", "?"), entry.get("path", "?"),
                    entry.get("snippet", ""),
                ),
                file=sys.stderr,
            )
        if stale:
            print(
                f"error: {len(stale)} baseline entr"
                f"{'y is' if len(stale) == 1 else 'ies are'} no longer "
                f"matched by any finding; prune {baseline_path}",
                file=sys.stderr,
            )
            status = max(status, 1)
        undocumented = undocumented_entries(baseline)
        for fp in sorted(undocumented):
            entry = undocumented[fp]
            print(
                "undocumented baseline entry {}: {} {} (reason: {!r})".format(
                    fp, entry.get("rule", "?"), entry.get("path", "?"),
                    entry.get("reason", ""),
                ),
                file=sys.stderr,
            )
        if undocumented:
            print(
                f"error: {len(undocumented)} baseline entr"
                f"{'y carries' if len(undocumented) == 1 else 'ies carry'} "
                f"an empty or TODO reason; document them in "
                f"{baseline_path}",
                file=sys.stderr,
            )
            status = max(status, 1)
    return status


def _cmd_lint(args) -> int:
    from repro.analysis import lint_paths
    from repro.analysis.codelint import default_lint_root

    targets = args.paths or [default_lint_root()]
    findings = lint_paths(targets)
    return _finish_lint(args, findings, ".repro-lint-baseline.json")


def _cmd_lint_flow(args) -> int:
    from repro.analysis.baseline import DEFAULT_FLOW_BASELINE_NAME
    from repro.analysis.dataflow import default_flow_root, lint_flow_paths

    targets = args.paths or [default_flow_root()]
    findings = lint_flow_paths(targets)
    return _finish_lint(args, findings, DEFAULT_FLOW_BASELINE_NAME)


def _cmd_lint_plan(args) -> int:
    import json as _json

    from repro.analysis import render_text, verify_all_builtin, verify_plan
    from repro.mining.api import plan_for

    if args.all == bool(args.pattern):
        print("error: give exactly one of a pattern name or --all",
              file=sys.stderr)
        return 2
    if args.all:
        results = verify_all_builtin()
    else:
        plan = plan_for(args.pattern, vertex_induced=not args.edge_induced)
        label = (
            f"{args.pattern}/"
            f"{'edge' if args.edge_induced else 'vertex'}-induced"
        )
        results = {label: verify_plan(plan, name=label)}

    bad = {label: f for label, f in results.items() if f}
    if args.json:
        print(_json.dumps({
            label: [
                {"rule": f.rule, "level": f.line, "message": f.message}
                for f in fs
            ]
            for label, fs in results.items()
        }, indent=2))
    else:
        for label in sorted(results):
            status = "FAIL" if results[label] else "ok"
            print(f"{label:24s} {status}")
            if results[label]:
                print(render_text(results[label]))
    if not args.json:
        print(f"{len(results) - len(bad)}/{len(results)} plans statically valid")
    return 1 if bad else 0


def _cmd_bench(args) -> int:
    from repro.bench import ablations, experiments
    from repro.bench import runner as _runner

    _runner.configure(jobs=args.jobs, disk_cache=not args.no_cache)
    _runner.reset_stats()

    runners = {
        "table1": experiments.table1,
        "table2": experiments.table2,
        "fig9": experiments.fig9,
        "fig10": experiments.fig10,
        "fig11": experiments.fig11,
        "fig12": experiments.fig12,
        "fig13": experiments.fig13,
        "table3": experiments.table3,
        "ablation-scheduling": ablations.ablation_scheduling,
        "ablation-max-load": ablations.ablation_max_load,
        "ablation-dividers": ablations.ablation_dividers,
        "ablation-group-size": ablations.ablation_group_size,
        "ablation-imbalance": ablations.ablation_imbalance,
    }
    from repro.bench.sensitivity import (
        sensitivity_dram_latency,
        sensitivity_hit_latency,
        sensitivity_noc_bandwidth,
    )
    from repro.bench.software import software_comparison, software_scaling

    runners.update({
        "software-scaling": software_scaling,
        "software-comparison": software_comparison,
        "sensitivity-dram": sensitivity_dram_latency,
        "sensitivity-hit": sensitivity_hit_latency,
        "sensitivity-noc": sensitivity_noc_bandwidth,
    })
    print(runners[args.experiment]().render())
    stats = _runner.runner_stats()
    print(
        f"run cache: {stats.memo_hits} memo hits, {stats.disk_hits} disk "
        f"hits, {stats.simulate_calls} simulator calls"
    )
    return 0


def _cmd_exp(args) -> int:
    from repro.experiments import (
        ResultStore,
        SpecError,
        diff_runs,
        load_spec_file,
        migrate_legacy_results,
        run_sweep,
        write_report,
    )

    store = ResultStore(args.store) if args.store else ResultStore()

    if args.exp_command == "run":
        from repro.bench import runner as _runner

        try:
            spec = load_spec_file(args.spec)
        except (SpecError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _runner.configure(jobs=args.jobs, disk_cache=not args.no_cache)

        def progress(cell, action):
            print(f"  [{action:6s}] {cell.label}")

        print(f"sweep {spec.name!r}: {len(spec.expand())} cells")
        from repro.sanitize import SanitizerError

        from repro.errors import CellFailed

        try:
            outcome = run_sweep(
                spec, store=store, run=args.run,
                resume=not args.no_resume, progress=progress,
                sanitize=True if args.sanitize else None,
                isolate=not args.no_isolate,
                retry_failed=args.retry_failed,
            )
        except SanitizerError as exc:
            print(f"sanitizer: {exc}", file=sys.stderr)
            return 1
        except CellFailed as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        summary = (
            f"run {outcome.run!r}: {outcome.executed} executed, "
            f"{outcome.resumed} resumed from the store"
        )
        if outcome.failed:
            summary += (
                f", {outcome.failed} failed (recorded; re-run with "
                f"--retry-failed)"
            )
        print(summary)
        return 1 if outcome.failed else 0

    if args.exp_command == "report":
        try:
            paths = write_report(
                store, args.run, out_dir=args.out,
                formats=tuple(args.format) if args.format else ("md", "html"),
            )
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for path in paths:
            print(path)
        return 0

    if args.exp_command == "diff":
        try:
            baseline_rows = store.load(args.baseline)
            current_rows = store.load(args.current)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = diff_runs(
            baseline_rows, current_rows,
            baseline=args.baseline, current=args.current,
            cycle_threshold=args.threshold,
            wall_threshold=args.wall_threshold,
        )
        print(report.render())
        return report.exit_code

    if args.exp_command == "list":
        runs = store.runs()
        if not runs:
            print(f"no runs in {store.root}")
            return 0
        for run in runs:
            rows = store.load(run)
            print(f"{run:24s} {len(rows):5d} rows")
        return 0

    # migrate
    written = migrate_legacy_results(
        args.results, store, force=args.force
    )
    if not written:
        print("no legacy result files found")
        return 0
    for run, count in sorted(written.items()):
        note = f"{count} rows" if count else "already present (use --force)"
        print(f"{run:24s} {note}")
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "plan": _cmd_plan,
    "count": _cmd_count,
    "motifs": _cmd_motifs,
    "simulate": _cmd_simulate,
    "validate": _cmd_validate,
    "compare": _cmd_compare,
    "bench": _cmd_bench,
    "backends": _cmd_backends,
    "tune": _cmd_tune,
    "cache": _cmd_cache,
    "exp": _cmd_exp,
    "lint": _cmd_lint,
    "lint-flow": _cmd_lint_flow,
    "lint-plan": _cmd_lint_plan,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
