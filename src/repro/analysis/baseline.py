"""Reviewed baseline file: per-finding suppressions with reasons.

The baseline is the *audited* list of findings the project accepts —
each entry carries the rule, location metadata, and a human reason, so
`repro lint` stays a zero-findings gate without hiding why an exception
exists.  Entries are keyed by the line-number-independent fingerprint of
:func:`repro.analysis.findings.fingerprint`, so the file survives edits
elsewhere in the same module.

Workflow::

    repro lint                          # fails on non-baselined findings
    repro lint --write-baseline         # snapshot current findings
    $EDITOR .repro-lint-baseline.json   # add a "reason" to every entry

The file is committed and reviewed like code; CI fails on any finding
outside it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding, fingerprint_all

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_FLOW_BASELINE_NAME",
    "Baseline",
    "load_baseline",
    "partition",
    "undocumented_entries",
    "unused_entries",
    "write_baseline",
]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"
#: Tier C keeps its own baseline: flow findings fingerprint the same way
#: but come from a different rule universe, and pruning one tier must
#: not invalidate the other's review history.
DEFAULT_FLOW_BASELINE_NAME = ".repro-flow-baseline.json"

_VERSION = 1


@dataclass
class Baseline:
    """A set of fingerprinted suppressions loaded from (or bound for) disk."""

    #: fingerprint -> entry metadata ({"rule", "path", "snippet", "reason"}).
    entries: dict[str, dict[str, str]] = field(default_factory=dict)

    def __contains__(self, fp: str) -> bool:
        return fp in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: Path | str) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline.

    A malformed file raises ``ValueError`` — a suppression list that
    cannot be parsed must never silently suppress nothing (CI would
    fail) or everything (bugs would pass).
    """
    path = Path(path)
    if not path.exists():
        return Baseline()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(
            f"baseline file {path} has unsupported structure/version "
            f"(expected version {_VERSION})"
        )
    entries = data.get("entries")
    if not isinstance(entries, dict):
        raise ValueError(f"baseline file {path} lacks an 'entries' object")
    return Baseline(entries={str(k): dict(v) for k, v in entries.items()})


def write_baseline(
    path: Path | str, findings: Sequence[Finding], *, reason: str
) -> Baseline:
    """Snapshot ``findings`` as a fresh baseline file (sorted, stable).

    ``reason`` is required and must be a real justification — not empty,
    not a ``TODO`` placeholder: a suppression without a documented why
    is review debt the gate exists to prevent.  It is applied to every
    written entry; edit the file afterwards when individual entries
    deserve individual reasons.  Reasons of surviving entries are *not*
    preserved across rewrites on purpose: regenerating the baseline is a
    review event, and every entry's reason should be (re-)stated
    deliberately.
    """
    cleaned = reason.strip()
    if not cleaned or cleaned.upper().startswith("TODO"):
        raise ValueError(
            "baseline entries need a real reason (non-empty, not a TODO "
            "placeholder); pass one with --reason"
        )
    baseline = Baseline(
        entries={
            fp: {
                "rule": f.rule,
                "path": f.path,
                "snippet": f.snippet,
                "message": f.message,
                "reason": cleaned,
            }
            for f, fp in fingerprint_all(findings)
        }
    )
    payload = {
        "version": _VERSION,
        "entries": {
            fp: baseline.entries[fp] for fp in sorted(baseline.entries)
        },
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return baseline


def partition(
    findings: Sequence[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(fresh, suppressed)`` against a baseline."""
    fresh: list[Finding] = []
    suppressed: list[Finding] = []
    for f, fp in fingerprint_all(findings):
        (suppressed if fp in baseline else fresh).append(f)
    return fresh, suppressed


def unused_entries(
    findings: Sequence[Finding], baseline: Baseline
) -> dict[str, dict[str, str]]:
    """Baseline entries no current finding matches (stale suppressions).

    A stale entry means the underlying issue was fixed (or the code
    deleted) but the suppression lives on — dead review weight that
    would silently swallow a *future* finding landing on the same
    fingerprint.  ``repro lint --check-unused-baseline`` fails on these
    so the file shrinks in the same PR that fixes the finding.
    """
    live = {fp for _, fp in fingerprint_all(findings)}
    return {
        fp: entry
        for fp, entry in baseline.entries.items()
        if fp not in live
    }


def undocumented_entries(baseline: Baseline) -> dict[str, dict[str, str]]:
    """Baseline entries whose reason is missing, empty, or a TODO stub.

    These are suppressions that never received their review:
    ``repro lint --check-unused-baseline`` treats them like stale
    entries and fails, so a placeholder cannot quietly become permanent.
    """
    flagged: dict[str, dict[str, str]] = {}
    for fp, entry in baseline.entries.items():
        reason = str(entry.get("reason", "")).strip()
        if not reason or reason.upper().startswith("TODO"):
            flagged[fp] = entry
    return flagged
