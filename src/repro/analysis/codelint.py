"""Tier-A orchestration: lint files/trees and apply the baseline.

The CLI and CI entry points live here; rule logic lives in
:mod:`repro.analysis.rules`, file mechanics in
:mod:`repro.analysis.engine`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.engine import (
    Rule,
    iter_python_files,
    module_name_for,
    rule_catalog,
    run_rules,
)
from repro.analysis.findings import Finding, sort_findings

__all__ = ["default_lint_root", "lint_paths", "lint_source"]


def default_lint_root() -> Path:
    """The installed ``repro`` package tree (what ``repro lint`` checks
    when no path is given)."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str = "repro._snippet",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string (the test-fixture entry point).

    ``module`` controls rule scoping — pass e.g. ``"repro.mining.x"`` to
    exercise hot-path rules on a snippet.
    """
    return run_rules(source, path, module, rules or rule_catalog())


def lint_paths(
    paths: Iterable[Path | str],
    *,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Paths are reported relative to the current working directory when
    possible, so baselines are machine-independent.
    """
    rules = list(rules or rule_catalog())
    cwd = Path.cwd()
    findings: list[Finding] = []
    for file in iter_python_files(Path(p) for p in paths):
        resolved = file.resolve()
        try:
            display = resolved.relative_to(cwd).as_posix()
        except ValueError:
            display = resolved.as_posix()
        source = resolved.read_text(encoding="utf-8")
        findings.extend(
            run_rules(source, display, module_name_for(resolved), rules)
        )
    return sort_findings(findings)
