"""Rule engine for the AST code linter (Tier A).

A :class:`Rule` owns an identifier, a severity, a one-line description,
and a *scope* — the dotted-module prefixes it applies to (empty scope =
every module).  The engine parses each file once, builds a
:class:`ModuleContext` (module name, source lines, ``noqa`` pragmas,
parent links), and hands the same tree to every in-scope rule.

Suppression happens at two layers:

* inline — a ``# noqa: RULEID`` comment on the offending line;
* reviewed baseline — :mod:`repro.analysis.baseline`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Protocol, Sequence

from repro.analysis.findings import Finding, Severity, sort_findings

__all__ = [
    "ALL_RULES",
    "ModuleContext",
    "Rule",
    "RuleLike",
    "register",
    "rule_catalog",
    "run_rules",
]


class RuleLike(Protocol):
    """The metadata any rule needs to mint findings.

    Satisfied by Tier-A :class:`Rule` and Tier-C
    :class:`repro.analysis.dataflow.FlowRule` alike, so
    :meth:`ModuleContext.finding` serves both engines.
    """

    id: str
    severity: Severity

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class Rule:
    """One lint rule: metadata plus a checker callable.

    ``check(tree, ctx)`` yields findings; it runs only when ``ctx.module``
    matches ``scope`` (any dotted prefix; empty tuple = everywhere).
    """

    id: str
    severity: Severity
    summary: str
    scope: tuple[str, ...]
    check: Callable[[ast.Module, "ModuleContext"], Iterable[Finding]]

    def applies_to(self, module: str) -> bool:
        if not self.scope:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )


#: Registry of every known rule, in registration (catalog) order.
ALL_RULES: list[Rule] = []


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the global registry (duplicate ids rejected)."""
    if any(r.id == rule.id for r in ALL_RULES):
        raise ValueError(f"duplicate rule id {rule.id!r}")
    ALL_RULES.append(rule)
    return rule


def rule_catalog() -> list[Rule]:
    """All registered rules (importing the rules module on demand)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return list(ALL_RULES)


class ModuleContext:
    """Per-file state shared by every rule checking that file."""

    def __init__(self, path: str, module: str, source: str) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.lines: list[str] = source.splitlines()

    # ------------------------------------------------------------------

    def snippet(self, line: int) -> str:
        """Stripped text of 1-based source line (empty if out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Whether the line carries a ``# noqa`` pragma covering the rule."""
        text = self.lines[line - 1] if 1 <= line <= len(self.lines) else ""
        m = _NOQA_RE.search(text)
        if not m:
            return False
        codes = m.group("codes")
        if codes is None:
            return True  # blanket noqa
        return rule_id.upper() in {c.strip().upper() for c in codes.split(",")}

    def finding(
        self,
        rule: RuleLike,
        node: ast.AST,
        message: str,
    ) -> Finding | None:
        """Build a finding at ``node``, honoring inline suppression."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressed(line, rule.id):
            return None
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
        )


def module_name_for(path: Path) -> str:
    """Dotted module name, anchored at the ``repro`` package when present.

    Files outside a ``repro`` package tree lint under their stem (all
    unscoped rules still apply; scoped rules skip them unless the caller
    supplies an explicit module name).
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.stem]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def run_rules(
    source: str,
    path: str,
    module: str,
    rules: Sequence[Rule],
) -> list[Finding]:
    """Lint one unit of source text with every in-scope rule."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="SYNTAX",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                snippet="",
            )
        ]
    ctx = ModuleContext(path=path, module=module, source=source)
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies_to(module):
            findings.extend(rule.check(tree, ctx))
    return sort_findings(findings)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` file paths."""
    for path in paths:
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path
