"""Reporters: human-readable text and machine-readable JSON.

Both render the same partitioned result — fresh findings, suppressed
(baselined) findings, and counts — so CI log output and tooling
consumers agree on what a run saw.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.findings import Finding, Severity, sort_findings

__all__ = ["render_json", "render_text"]


def render_text(
    fresh: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    *,
    verbose_suppressed: bool = False,
) -> str:
    """GCC-style ``path:line:col: SEVERITY RULE message`` lines."""
    lines: list[str] = []
    for f in sort_findings(fresh):
        lines.append(
            f"{f.location()}: {f.severity.value} {f.rule}: {f.message}"
        )
        if f.snippet:
            lines.append(f"    {f.snippet}")
    if suppressed:
        if verbose_suppressed:
            for f in sort_findings(suppressed):
                lines.append(
                    f"{f.location()}: baselined {f.rule}: {f.message}"
                )
        lines.append(f"({len(suppressed)} baselined finding"
                     f"{'' if len(suppressed) == 1 else 's'} suppressed)")
    errors = sum(1 for f in fresh if f.severity is Severity.ERROR)
    warnings = len(fresh) - errors
    if fresh:
        lines.append(f"{errors} error{'' if errors == 1 else 's'}, "
                     f"{warnings} warning{'' if warnings == 1 else 's'}")
    else:
        lines.append("clean: no findings outside the baseline")
    return "\n".join(lines)


def render_json(
    fresh: Sequence[Finding], suppressed: Sequence[Finding] = ()
) -> str:
    """Stable JSON document (findings sorted, keys ordered)."""

    def encode(f: Finding) -> dict[str, object]:
        return {
            "rule": f.rule,
            "severity": f.severity.value,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "message": f.message,
            "snippet": f.snippet,
        }

    doc = {
        "findings": [encode(f) for f in sort_findings(fresh)],
        "suppressed": [encode(f) for f in sort_findings(suppressed)],
        "counts": {
            "errors": sum(
                1 for f in fresh if f.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for f in fresh if f.severity is Severity.WARNING
            ),
            "suppressed": len(suppressed),
        },
    }
    return json.dumps(doc, indent=2)
