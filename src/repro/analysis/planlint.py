"""Tier-B static verifier for compiled :class:`ExecutionPlan` IR.

Every plan the compiler emits is executed by four independent backends
(reference engine, FINGERS model, FlexMiner model, software miner), so a
malformed plan corrupts *all* results at once.  This module checks plan
legality **without running the plan**, the same plan/codegen concern
IntersectX's stream-instruction verifier and G2Miner's pattern-aware
code generation handle with dedicated checks:

=========  ===========================================================
PLAN001    state/operand def-before-use at each level (SSA discipline)
PLAN002    schedule covers all ``k`` levels; finality bookkeeping
PLAN003    restrictions form a strict partial order consistent with
           the pattern's automorphism group
PLAN004    set-op datapath legality (Equation-1 kinds match pattern
           edges; anti-subtraction only in the postponed-init chain,
           the ``A − B = A − (A ∩ B)`` single-datapath rewrite)
PLAN005    vertex ordering is a connectivity-preserving permutation
PLAN006    serves/final bookkeeping and state-count consistency
=========  ===========================================================

Findings reuse the Tier-A model with ``path="<plan:NAME>"`` and
``line = level``.  ``verify_plan`` returns findings; ``check_plan``
raises on the first error (handy as an assertion in tests/tools).
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity, sort_findings
from repro.pattern.automorphism import automorphisms
from repro.pattern.plan import ExecutionPlan, OpKind

__all__ = [
    "PLAN_RULE_IDS",
    "PlanVerificationError",
    "check_plan",
    "verify_all_builtin",
    "verify_plan",
]

PLAN_RULE_IDS = (
    "PLAN001", "PLAN002", "PLAN003", "PLAN004", "PLAN005", "PLAN006",
)


class PlanVerificationError(ValueError):
    """Raised by :func:`check_plan` when a plan fails verification."""

    def __init__(self, findings: list[Finding]) -> None:
        self.findings = findings
        lines = [f"{f.rule} (level {f.line}): {f.message}" for f in findings]
        super().__init__(
            "execution plan failed static verification:\n  " + "\n  ".join(lines)
        )


def _finding(name: str, rule: str, level: int, message: str) -> Finding:
    return Finding(
        rule=rule,
        severity=Severity.ERROR,
        path=f"<plan:{name}>",
        line=level,
        col=0,
        message=message,
        snippet="",
    )


def verify_plan(plan: ExecutionPlan, name: str = "plan") -> list[Finding]:
    """All static legality violations of ``plan`` (empty list = valid)."""
    out: list[Finding] = []
    k = plan.num_levels

    out.extend(_check_ordering(plan, name))        # PLAN005
    out.extend(_check_level_coverage(plan, name))  # PLAN002
    out.extend(_check_states(plan, name))          # PLAN001 + PLAN006
    out.extend(_check_datapath(plan, name))        # PLAN004
    out.extend(_check_restrictions(plan, name, k))  # PLAN003
    return sort_findings(out)


def check_plan(plan: ExecutionPlan, name: str = "plan") -> ExecutionPlan:
    """Return ``plan`` unchanged or raise :class:`PlanVerificationError`."""
    findings = verify_plan(plan, name)
    if findings:
        raise PlanVerificationError(findings)
    return plan


# ----------------------------------------------------------------------
# PLAN005 — vertex ordering
# ----------------------------------------------------------------------


def _check_ordering(plan: ExecutionPlan, name: str) -> list[Finding]:
    out: list[Finding] = []
    k = plan.num_levels
    order = plan.vertex_order
    if sorted(order) != list(range(k)):
        out.append(_finding(
            name, "PLAN005", 0,
            f"vertex_order {list(order)} is not a permutation of 0..{k - 1}",
        ))
        return out  # connectivity checks are meaningless past this
    if not plan.pattern.is_connected():
        out.append(_finding(
            name, "PLAN005", 0, "plan pattern is not connected"
        ))
    for j in range(1, k):
        if not any(plan.pattern.has_edge(i, j) for i in range(j)):
            out.append(_finding(
                name, "PLAN005", j,
                f"level {j} has no earlier pattern neighbor: the mining "
                "order is not connectivity-preserving",
            ))
    return out


# ----------------------------------------------------------------------
# PLAN002 — level coverage
# ----------------------------------------------------------------------


def _check_level_coverage(plan: ExecutionPlan, name: str) -> list[Finding]:
    out: list[Finding] = []
    k = plan.num_levels
    if len(plan.levels) != max(0, k - 1):
        out.append(_finding(
            name, "PLAN002", 0,
            f"plan has {len(plan.levels)} level schedules for a k={k} "
            f"pattern; expected {max(0, k - 1)} (levels 0..{k - 2})",
        ))
    for idx, sched in enumerate(plan.levels):
        if sched.level != idx:
            out.append(_finding(
                name, "PLAN002", idx,
                f"schedule at position {idx} is labelled level "
                f"{sched.level}; levels must be 0..k-2 in order",
            ))
        if sched.extend_state is None:
            out.append(_finding(
                name, "PLAN002", idx,
                f"level {idx} has no extend_state: level {idx + 1} "
                "candidates are never materialized",
            ))
    return out


# ----------------------------------------------------------------------
# PLAN001 — def-before-use; PLAN006 — serves/final bookkeeping
# ----------------------------------------------------------------------


def _check_states(plan: ExecutionPlan, name: str) -> list[Finding]:
    out: list[Finding] = []
    k = plan.num_levels
    defined: set[int] = set()
    finals_seen: dict[int, int] = {}  # final_for level -> defining level
    for sched in plan.levels:
        level = sched.level
        for op in sched.ops:
            # operand must already be bound to an embedding position
            if not 0 <= op.operand_level <= level:
                out.append(_finding(
                    name, "PLAN001", level,
                    f"op producing S#{op.result_state} reads "
                    f"N(u{op.operand_level}) at level {level}: the operand "
                    "vertex is not yet bound (operand_level must be <= "
                    "the executing level)",
                ))
            if op.kind is OpKind.INIT_COPY:
                if op.source_state is not None:
                    out.append(_finding(
                        name, "PLAN001", level,
                        f"INIT_COPY producing S#{op.result_state} has a "
                        "source state; the first materialization reads "
                        "only N(u_i)",
                    ))
            else:
                if op.source_state is None:
                    out.append(_finding(
                        name, "PLAN001", level,
                        f"{op.kind.name} producing S#{op.result_state} "
                        "has no source state",
                    ))
                elif op.source_state not in defined:
                    out.append(_finding(
                        name, "PLAN001", level,
                        f"{op.kind.name} producing S#{op.result_state} "
                        f"consumes undefined state S#{op.source_state}",
                    ))
            if op.result_state in defined:
                out.append(_finding(
                    name, "PLAN001", level,
                    f"state S#{op.result_state} is defined twice; states "
                    "are single-assignment",
                ))
            defined.add(op.result_state)

            # ---- PLAN006 bookkeeping ----
            if not op.serves:
                out.append(_finding(
                    name, "PLAN006", level,
                    f"op producing S#{op.result_state} serves no future "
                    "level (dead op)",
                ))
            bad = [j for j in op.serves if not level < j < k]
            if bad:
                out.append(_finding(
                    name, "PLAN006", level,
                    f"op producing S#{op.result_state} serves levels "
                    f"{bad}; served levels must lie strictly between the "
                    f"executing level and k={k}",
                ))
            if op.final_for is not None:
                if op.final_for != level + 1:
                    out.append(_finding(
                        name, "PLAN006", level,
                        f"op producing S#{op.result_state} claims finality "
                        f"for level {op.final_for} at level {level}; a set "
                        "is final exactly when its level is extended next "
                        f"(expected {level + 1})",
                    ))
                if op.final_for in finals_seen:
                    out.append(_finding(
                        name, "PLAN006", level,
                        f"level {op.final_for} has two final ops (first at "
                        f"level {finals_seen[op.final_for]})",
                    ))
                finals_seen.setdefault(op.final_for, level)
        if sched.extend_state is not None and sched.extend_state not in defined:
            out.append(_finding(
                name, "PLAN001", level,
                f"extend_state S#{sched.extend_state} of level {level} is "
                "never produced by any op",
            ))
    if plan.num_states != len(defined):
        out.append(_finding(
            name, "PLAN006", 0,
            f"plan declares num_states={plan.num_states} but its levels "
            f"define {len(defined)} states",
        ))
    return out


# ----------------------------------------------------------------------
# PLAN004 — datapath legality of each op kind
# ----------------------------------------------------------------------


def _check_datapath(plan: ExecutionPlan, name: str) -> list[Finding]:
    out: list[Finding] = []
    pattern = plan.pattern
    producer: dict[int, OpKind] = {}
    for sched in plan.levels:
        level = sched.level
        for op in sched.ops:
            producer[op.result_state] = op.kind
            if not plan.vertex_induced and op.kind in (
                OpKind.SUBTRACT, OpKind.ANTI_SUBTRACT
            ):
                out.append(_finding(
                    name, "PLAN004", level,
                    f"{op.kind.name} compiled into an edge-induced plan; "
                    "subtraction ops exist only under vertex-induced "
                    "semantics",
                ))
            if op.kind in (OpKind.INIT_COPY, OpKind.INTERSECT, OpKind.SUBTRACT):
                if op.operand_level != level:
                    out.append(_finding(
                        name, "PLAN004", level,
                        f"{op.kind.name} at level {level} reads "
                        f"N(u{op.operand_level}); only ANTI_SUBTRACT may "
                        "reach back to an earlier ancestor",
                    ))
            edges_required = op.kind in (OpKind.INIT_COPY, OpKind.INTERSECT)
            for j in op.serves:
                if not 0 <= op.operand_level < pattern.num_vertices:
                    continue  # reported by PLAN001 already
                if j >= pattern.num_vertices or j < 0:
                    continue  # reported by PLAN006 already
                has_edge = pattern.has_edge(op.operand_level, j)
                if edges_required and not has_edge:
                    out.append(_finding(
                        name, "PLAN004", level,
                        f"{op.kind.name} with operand N(u{op.operand_level}) "
                        f"serves level {j}, but the pattern has no edge "
                        f"({op.operand_level}, {j}): candidates for "
                        f"u{j} must not be constrained to that "
                        "neighborhood",
                    ))
                if not edges_required and has_edge:
                    out.append(_finding(
                        name, "PLAN004", level,
                        f"{op.kind.name} with operand N(u{op.operand_level}) "
                        f"serves level {j}, but pattern edge "
                        f"({op.operand_level}, {j}) exists: subtracting a "
                        "required neighborhood empties the candidate set",
                    ))
            if op.kind is OpKind.ANTI_SUBTRACT:
                if op.operand_level >= level:
                    out.append(_finding(
                        name, "PLAN004", level,
                        "ANTI_SUBTRACT operand must be an *earlier* "
                        f"disconnected ancestor; got u{op.operand_level} "
                        f"at level {level}",
                    ))
                src_kind = (
                    producer.get(op.source_state)
                    if op.source_state is not None
                    else None
                )
                if src_kind not in (OpKind.INIT_COPY, OpKind.ANTI_SUBTRACT):
                    out.append(_finding(
                        name, "PLAN004", level,
                        "ANTI_SUBTRACT must directly extend the postponed "
                        "init chain (source produced by INIT_COPY or "
                        "ANTI_SUBTRACT) — the A − B = A − (A ∩ B) rewrite "
                        "applies only before regular ops refine the set; "
                        f"source was produced by "
                        f"{src_kind.name if src_kind else 'nothing'}",
                    ))
    return out


# ----------------------------------------------------------------------
# PLAN003 — restriction partial order + automorphism consistency
# ----------------------------------------------------------------------


def _check_restrictions(
    plan: ExecutionPlan, name: str, k: int
) -> list[Finding]:
    out: list[Finding] = []
    succ: dict[int, set[int]] = {}
    for r in plan.restrictions:
        if not (0 <= r.smaller < k and 0 <= r.larger < k):
            out.append(_finding(
                name, "PLAN003", 0,
                f"restriction {r} references a level outside 0..{k - 1}",
            ))
            continue
        if r.smaller == r.larger:
            out.append(_finding(
                name, "PLAN003", r.applies_at(),
                f"restriction {r} is irreflexive-violating (v < v)",
            ))
            continue
        succ.setdefault(r.smaller, set()).add(r.larger)

    # Strict partial order = the < relation's digraph must be acyclic
    # (v0 < v1 plus v1 < v0 is unsatisfiable and silently yields zero
    # counts).
    state: dict[int, int] = {}  # 0 visiting, 1 done

    def has_cycle(v: int) -> bool:
        state[v] = 0
        for w in sorted(succ.get(v, ())):
            if state.get(w) == 0:
                return True
            if w not in state and has_cycle(w):
                return True
        state[v] = 1
        return False

    if any(v not in state and has_cycle(v) for v in sorted(succ)):
        out.append(_finding(
            name, "PLAN003", 0,
            "restrictions contain a cycle: the induced < relation is not "
            "a strict partial order, so no embedding can satisfy them",
        ))

    autos = automorphisms(plan.pattern)
    for r in plan.restrictions:
        if not (0 <= r.smaller < k and 0 <= r.larger < k):
            continue
        if not any(perm[r.smaller] == r.larger for perm in autos):
            out.append(_finding(
                name, "PLAN003", r.applies_at(),
                f"restriction {r} relates levels in different automorphism "
                "orbits: it prunes genuinely distinct embeddings instead "
                "of deduplicating symmetric ones",
            ))
    if len(autos) > 1 and not plan.restrictions:
        out.append(_finding(
            name, "PLAN003", 0,
            f"pattern has |Aut| = {len(autos)} > 1 but the plan carries no "
            "symmetry-breaking restrictions: every embedding would be "
            f"counted {len(autos)} times",
        ))
    return out


# ----------------------------------------------------------------------
# Built-in sweep (CLI --all and CI)
# ----------------------------------------------------------------------


def verify_all_builtin() -> dict[str, list[Finding]]:
    """Verify every built-in named pattern, both semantics.

    Returns ``{job_label: findings}`` for each ``(pattern, semantics)``
    combination, in sorted label order; all-empty values mean the whole
    compiler output is statically valid.
    """
    from repro.pattern.compiler import compile_plan
    from repro.pattern.pattern import all_named_patterns

    results: dict[str, list[Finding]] = {}
    for pname, pattern in sorted(all_named_patterns().items()):
        for vertex_induced in (True, False):
            label = f"{pname}/{'vertex' if vertex_induced else 'edge'}-induced"
            plan = compile_plan(pattern, vertex_induced=vertex_induced)
            results[label] = verify_plan(plan, name=label)
    return results
