"""Tier-A lint rules: the contracts of docs/PARALLELISM.md, mechanized.

Rule catalog (docs/ANALYSIS.md has the long-form rationale):

=========  ========  ==========================================================
DET001     error     unseeded randomness in ``repro.*``
DET002     error     wall-clock reads inside simulation/mining/bench paths
DET003     error     order-sensitive iteration over unordered sets in hot paths
PAR001     error     lambda / nested-function handed to the worker pool
CACHE001   error     config dataclass field escaping the cache schema hash
ARCH001    error     simulator entry point imported around the backend registry
PERF001    error     ``np.delete``/``np.append`` inside a loop in a hot path
STORE001   error     result file written around the experiment store
ERR001     error     broad exception swallow on a worker/hot path
HYG001     warning   mutable default argument
HYG002     warning   bare ``except:``
=========  ========  ==========================================================

Each rule is registered with the engine at import time; the module is
imported lazily by :func:`repro.analysis.engine.rule_catalog`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutils import (
    attr_chain,
    collect_imports,
    is_set_expr,
    iter_scopes,
    set_names_in,
    walk_scope,
)
from repro.analysis.engine import ModuleContext, Rule, register
from repro.analysis.findings import Finding, Severity

__all__ = ["HOT_PATH_PACKAGES", "PERF_HOT_PACKAGES", "SIMULATION_PACKAGES"]

#: Packages whose iteration order reaches merged results (DET003).
HOT_PATH_PACKAGES = (
    "repro.mining",
    "repro.hw",
    "repro.parallel",
    "repro.sw",
    "repro.setops",
    "repro.core",
)

#: Packages where wall-clock reads would leak into modelled results
#: (DET002).  ``repro.bench`` is included: its one intentional
#: harness-timing read is carried in the reviewed baseline.
SIMULATION_PACKAGES = HOT_PATH_PACKAGES + ("repro.pattern", "repro.bench")


# ----------------------------------------------------------------------
# DET001 — unseeded randomness
# ----------------------------------------------------------------------

_RANDOM_MODULE_FNS = {
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes",
}
_NUMPY_GLOBAL_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "standard_normal",
    "bytes",
}


def _call_has_seed(call: ast.Call) -> bool:
    """Whether a RNG-constructor call pins a seed explicitly."""
    if any(
        not isinstance(a, ast.Constant) or a.value is not None
        for a in call.args
    ):
        return True
    for kw in call.keywords:
        if kw.arg in (None, "seed") and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            return True
    return False


def _check_det001(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    imports = collect_imports(tree)
    random_aliases = imports.aliases_of("random")
    numpy_aliases = imports.aliases_of("numpy")
    numpy_random_aliases = imports.aliases_of("numpy.random")
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = attr_chain(node.func)
        if not chain:
            continue
        message = None
        # random.shuffle(...), random.Random() without a seed
        if len(chain) == 2 and chain[0] in random_aliases:
            if chain[1] in _RANDOM_MODULE_FNS:
                message = (
                    f"call to the process-global RNG `random.{chain[1]}`; "
                    "pass an explicitly seeded `random.Random(seed)` instead"
                )
            elif chain[1] in ("Random", "SystemRandom") and not _call_has_seed(
                node
            ):
                message = (
                    f"`random.{chain[1]}()` constructed without a seed"
                )
        # bare `shuffle(...)` via `from random import shuffle`
        elif len(chain) == 1:
            origin = imports.from_import(chain[0])
            if origin is not None and origin[0] == "random":
                if origin[1] in _RANDOM_MODULE_FNS:
                    message = (
                        f"call to `random.{origin[1]}` (imported as "
                        f"`{chain[0]}`) uses the process-global RNG"
                    )
                elif origin[1] == "Random" and not _call_has_seed(node):
                    message = "`random.Random()` constructed without a seed"
        # np.random.<fn> legacy global API / unseeded default_rng()
        elif len(chain) == 3 and chain[0] in numpy_aliases and chain[1] == "random":
            if chain[2] in _NUMPY_GLOBAL_FNS:
                message = (
                    f"call to the global `numpy.random.{chain[2]}`; use an "
                    "explicitly seeded `numpy.random.default_rng(seed)`"
                )
            elif chain[2] in ("default_rng", "RandomState") and not _call_has_seed(
                node
            ):
                message = f"`numpy.random.{chain[2]}()` without a seed"
        elif len(chain) == 2 and chain[0] in numpy_random_aliases:
            if chain[1] in _NUMPY_GLOBAL_FNS:
                message = (
                    f"call to the global `numpy.random.{chain[1]}`; use an "
                    "explicitly seeded `numpy.random.default_rng(seed)`"
                )
            elif chain[1] in ("default_rng", "RandomState") and not _call_has_seed(
                node
            ):
                message = f"`numpy.random.{chain[1]}()` without a seed"
        if message is not None:
            found = ctx.finding(DET001, node, message)
            if found is not None:
                yield found


DET001 = register(
    Rule(
        id="DET001",
        severity=Severity.ERROR,
        summary="unseeded randomness (process-global RNG or seedless generator)",
        scope=("repro",),
        check=_check_det001,
    )
)


# ----------------------------------------------------------------------
# DET002 — wall-clock reads in simulation / mining paths
# ----------------------------------------------------------------------

_TIME_FNS = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "process_time", "process_time_ns"}
_DATETIME_FNS = {"now", "utcnow", "today"}


def _check_det002(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    imports = collect_imports(tree)
    time_aliases = imports.aliases_of("time")
    datetime_aliases = imports.aliases_of("datetime")
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = attr_chain(node.func)
        message = None
        if len(chain) == 2 and chain[0] in time_aliases and chain[1] in _TIME_FNS:
            message = f"wall-clock read `time.{chain[1]}()`"
        elif len(chain) == 1:
            origin = imports.from_import(chain[0])
            if origin is not None and origin[0] == "time" and origin[1] in _TIME_FNS:
                message = f"wall-clock read `time.{origin[1]}()`"
        elif (
            len(chain) >= 2
            and chain[-1] in _DATETIME_FNS
            and (
                chain[0] in datetime_aliases
                or imports.from_import(chain[0]) == ("datetime", "datetime")
                or imports.from_import(chain[0]) == ("datetime", "date")
            )
        ):
            message = f"wall-clock read `{'.'.join(chain)}()`"
        if message is not None:
            found = ctx.finding(
                DET002,
                node,
                message
                + " inside a simulation/mining path; modelled time must come "
                "from the event loop, not the host clock",
            )
            if found is not None:
                yield found


DET002 = register(
    Rule(
        id="DET002",
        severity=Severity.ERROR,
        summary="wall-clock read inside a simulation/mining path",
        scope=SIMULATION_PACKAGES,
        check=_check_det002,
    )
)


# ----------------------------------------------------------------------
# DET003 — order-sensitive iteration over unordered sets
# ----------------------------------------------------------------------

_ORDER_SAFE_WRAPPERS = {
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
}


def _check_det003(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for scope_node, body in iter_scopes(tree):
        sets = set_names_in(body, scope_node)

        def emit(node: ast.AST, what: str) -> Finding | None:
            return ctx.finding(
                DET003,
                node,
                f"{what} over an unordered set — iteration order is not part "
                "of the language contract and can break bit-identical shard "
                "merges; iterate `sorted(...)` or an ordered container",
            )

        # walk_scope keeps nested functions out: they are re-visited as
        # their own scope with their own set-name table.
        for stmt in walk_scope(scope_node):
            if isinstance(stmt, ast.For) and is_set_expr(stmt.iter, sets):
                found = emit(stmt.iter, "`for` loop")
                if found is not None:
                    yield found
            elif isinstance(stmt, ast.Call):
                chain = attr_chain(stmt.func)
                if (
                    len(chain) == 2
                    and chain[1] == "pop"
                    and chain[0] in sets
                    and not stmt.args
                ):
                    found = emit(
                        stmt, "`set.pop()` (removes an *arbitrary* element)"
                    )
                    if found is not None:
                        yield found
                elif (
                    chain in (("list",), ("tuple",))
                    and len(stmt.args) == 1
                    and is_set_expr(stmt.args[0], sets)
                ):
                    found = emit(stmt, f"`{chain[0]}(...)` materialization")
                    if found is not None:
                        yield found


DET003 = register(
    Rule(
        id="DET003",
        severity=Severity.ERROR,
        summary="order-sensitive iteration over an unordered set in a hot path",
        scope=HOT_PATH_PACKAGES,
        check=_check_det003,
    )
)


# ----------------------------------------------------------------------
# PAR001 — unpicklable / state-capturing worker dispatch
# ----------------------------------------------------------------------

_POOL_DISPATCH_FNS = {"run_shards"}
_POOL_METHOD_FNS = {"submit", "map", "apply_async", "imap", "imap_unordered",
                    "starmap"}


def _nested_function_names(tree: ast.Module) -> set[str]:
    nested: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                if child is not node and isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(child.name)
    return nested


def _check_par001(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    nested = _nested_function_names(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = attr_chain(node.func)
        if not chain:
            continue
        is_pool_call = chain[-1] in _POOL_DISPATCH_FNS
        is_pool_method = len(chain) >= 2 and chain[-1] in _POOL_METHOD_FNS
        if not (is_pool_call or is_pool_method):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Lambda):
                found = ctx.finding(
                    PAR001,
                    arg,
                    f"lambda passed to `{chain[-1]}(...)`: lambdas are "
                    "unpicklable and capture enclosing state; dispatch a "
                    "module-level function (docs/PARALLELISM.md §3)",
                )
                if found is not None:
                    yield found
            elif (
                is_pool_call
                and isinstance(arg, ast.Name)
                and arg.id in nested
            ):
                found = ctx.finding(
                    PAR001,
                    arg,
                    f"nested function `{arg.id}` passed to "
                    f"`{chain[-1]}(...)`: closures are unpicklable and "
                    "capture enclosing state; use a module-level worker",
                )
                if found is not None:
                    yield found


PAR001 = register(
    Rule(
        id="PAR001",
        severity=Severity.ERROR,
        summary="lambda/closure handed to the process pool",
        scope=("repro",),
        check=_check_par001,
    )
)


# ----------------------------------------------------------------------
# CACHE001 — config fields escaping the cache schema hash
# ----------------------------------------------------------------------


def _is_dataclass_decorated(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        chain = attr_chain(dec.func if isinstance(dec, ast.Call) else dec)
        if chain and chain[-1] == "dataclass":
            return True
    return False


def _check_cache001(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Config") or not _is_dataclass_decorated(node):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.value, ast.Call
            ):
                chain = attr_chain(stmt.value.func)
                if chain and chain[-1] == "field":
                    for kw in stmt.value.keywords:
                        if (
                            kw.arg == "repr"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False
                        ):
                            found = ctx.finding(
                                CACHE001,
                                stmt,
                                f"`{node.name}` field declared with "
                                "`repr=False`: cache keys hash the config's "
                                "repr (repro.cache.make_key), so this field "
                                "silently escapes the schema hash",
                            )
                            if found is not None:
                                yield found
            elif (
                isinstance(stmt, ast.FunctionDef) and stmt.name == "__repr__"
            ):
                found = ctx.finding(
                    CACHE001,
                    stmt,
                    f"`{node.name}` overrides `__repr__`: cache keys hash "
                    "the dataclass-generated repr; a custom repr can omit "
                    "simulate-relevant fields from the schema hash",
                )
                if found is not None:
                    yield found


CACHE001 = register(
    Rule(
        id="CACHE001",
        severity=Severity.ERROR,
        summary="config dataclass field escapes the cache schema hash",
        scope=("repro.hw", "repro.sw"),
        check=_check_cache001,
    )
)


# ----------------------------------------------------------------------
# ARCH001 — simulator entry points imported around the backend registry
# ----------------------------------------------------------------------

#: Raw executor entry points that must only be reached through
#: ``repro.core.get_backend(...)`` — direct use bypasses the unified
#: result contract, summary formatting, and cache-key derivation.
_GUARDED_ENTRY_POINTS = {"run_chip", "simulate_software", "SoftwareMiner"}

#: Modules allowed to touch the raw entry points: the backend layer
#: itself, and the modules that define them.
_ARCH001_ALLOWED = ("repro.hw.chip", "repro.sw.miner")


def _check_arch001(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    module = ctx.module or ""
    if module.startswith("repro.core") or module in _ARCH001_ALLOWED:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        # Only repro-internal sources: absolute `repro.*` or any
        # relative import (which always resolves inside the package).
        if node.level == 0 and not (node.module or "").startswith("repro"):
            continue
        for alias in node.names:
            if alias.name not in _GUARDED_ENTRY_POINTS:
                continue
            found = ctx.finding(
                ARCH001,
                node,
                f"direct import of `{alias.name}`: execution must go "
                "through the backend registry "
                "(`repro.core.get_backend(...)`) so results, cache keys, "
                "and merges follow one contract (docs/API.md)",
            )
            if found is not None:
                yield found


ARCH001 = register(
    Rule(
        id="ARCH001",
        severity=Severity.ERROR,
        summary="simulator entry point imported around the backend registry",
        scope=("repro",),
        check=_check_arch001,
    )
)


# ----------------------------------------------------------------------
# PERF001 — array-copy churn inside loops on the hot path
# ----------------------------------------------------------------------

#: numpy routines that reallocate and copy the whole array per call;
#: inside a loop that is O(k·n) where one vectorized mask pass is O(n).
_COPY_CHURN_FNS = {"delete", "append", "insert"}

#: Packages whose set-op / traversal loops dominate runtime.
PERF_HOT_PACKAGES = ("repro.setops", "repro.mining", "repro.hw")


def _check_perf001(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    imports = collect_imports(tree)
    numpy_aliases = imports.aliases_of("numpy")

    def churn_name(call: ast.Call) -> str | None:
        chain = attr_chain(call.func)
        if (
            len(chain) == 2
            and chain[0] in numpy_aliases
            and chain[1] in _COPY_CHURN_FNS
        ):
            return chain[1]
        if len(chain) == 1:
            origin = imports.from_import(chain[0])
            if (
                origin is not None
                and origin[0] == "numpy"
                and origin[1] in _COPY_CHURN_FNS
            ):
                return origin[1]
        return None

    seen: set[ast.Call] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call) or inner in seen:
                continue
            name = churn_name(inner)
            if name is None:
                continue
            seen.add(inner)
            found = ctx.finding(
                PERF001,
                inner,
                f"`np.{name}` inside a loop reallocates and copies the "
                "whole array per iteration (O(k·n)); accumulate a boolean "
                "mask or indices and apply one vectorized pass instead "
                "(docs/ANALYSIS.md)",
            )
            if found is not None:
                yield found


PERF001 = register(
    Rule(
        id="PERF001",
        severity=Severity.ERROR,
        summary="np.delete/np.append inside a loop on the hot path",
        scope=PERF_HOT_PACKAGES,
        check=_check_perf001,
    )
)


# ----------------------------------------------------------------------
# STORE001 — result files written around the experiment store
# ----------------------------------------------------------------------

#: Packages whose file writes are benchmark results by construction.
RESULT_WRITER_PACKAGES = ("repro.bench", "repro.experiments")

#: The two modules that own result persistence: the schema'd store and
#: its report writer (docs/BENCHMARKS.md).
_STORE001_ALLOWED = ("repro.experiments.store", "repro.experiments.report")

_WRITE_METHODS = {"write_text", "write_bytes"}


def _open_write_mode(call: ast.Call, *, mode_pos: int) -> str | None:
    """The write-ish mode string of an ``open``-style call, if any."""
    mode = None
    if len(call.args) > mode_pos and isinstance(
        call.args[mode_pos], ast.Constant
    ):
        mode = call.args[mode_pos].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            mode = kw.value.value
    if isinstance(mode, str) and any(ch in mode for ch in "wax+"):
        return mode
    return None


def _check_store001(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    if (ctx.module or "") in _STORE001_ALLOWED:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        message = None
        # Method calls are matched on the attribute name alone: the
        # receiver is often a computed expression (`(dir / name)
        # .write_text(...)`) that no name chain can describe.
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _WRITE_METHODS:
                message = f"`.{node.func.attr}(...)`"
            elif node.func.attr == "open":
                mode = _open_write_mode(node, mode_pos=0)
                if mode is not None:
                    message = f"`.open({mode!r})`"
        elif attr_chain(node.func) == ("open",):
            mode = _open_write_mode(node, mode_pos=1)
            if mode is not None:
                message = f"`open(..., {mode!r})`"
        if message is None:
            continue
        found = ctx.finding(
            STORE001,
            node,
            f"file write {message} in a benchmark/experiment module "
            "bypasses the schema'd result store; append ResultRow records "
            "via repro.experiments.store (or emit through its report "
            "writer) so every number carries provenance "
            "(docs/BENCHMARKS.md)",
        )
        if found is not None:
            yield found


STORE001 = register(
    Rule(
        id="STORE001",
        severity=Severity.ERROR,
        summary="benchmark result written around the experiment store",
        scope=RESULT_WRITER_PACKAGES,
        check=_check_store001,
    )
)


# ----------------------------------------------------------------------
# ERR001 — broad exception swallows on worker/hot paths
# ----------------------------------------------------------------------

#: Packages where a silent `except Exception: pass` can absorb a real
#: defect (a crashed worker, a torn cache entry, a failed cell) and
#: turn it into silently-wrong or silently-missing results.
ERR_SWALLOW_PACKAGES = HOT_PATH_PACKAGES + (
    "repro.cache",
    "repro.experiments",
    "repro.resilience",
)

_BROAD_EXCEPTION_NAMES = {"Exception", "BaseException"}


def _broad_exception_name(type_expr: ast.expr | None) -> str | None:
    """The over-broad class caught by a handler, or None if narrow.

    Bare ``except:`` returns ``""``; tuple handlers are broad when any
    element is.
    """
    if type_expr is None:
        return ""
    candidates = (
        type_expr.elts if isinstance(type_expr, ast.Tuple) else [type_expr]
    )
    for candidate in candidates:
        chain = attr_chain(candidate)
        if chain and chain[-1] in _BROAD_EXCEPTION_NAMES:
            return chain[-1]
    return None


def _is_swallow_body(body: list[ast.stmt]) -> bool:
    """Whether a handler body discards the exception without acting:
    only ``pass``/``continue``/``...`` (docstrings tolerated)."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            # Ellipsis placeholder or a string used as a comment.
            continue
        return False
    return True


def _check_err001(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught = _broad_exception_name(node.type)
        if caught is None or not _is_swallow_body(node.body):
            continue
        what = (
            "bare `except:`" if caught == "" else f"`except {caught}:`"
        )
        found = ctx.finding(
            ERR001,
            node,
            f"{what} with a pass/continue body silently swallows every "
            "failure on a worker/hot path — a crashed shard or torn "
            "cache entry becomes silently-missing results; catch the "
            "narrowest exceptions the operation can raise, or route "
            "retryables through repro.errors and count the event "
            "(docs/RESILIENCE.md)",
        )
        if found is not None:
            yield found


ERR001 = register(
    Rule(
        id="ERR001",
        severity=Severity.ERROR,
        summary="broad exception swallow on a worker/hot path",
        scope=ERR_SWALLOW_PACKAGES,
        check=_check_err001,
    )
)


# ----------------------------------------------------------------------
# HYG001 / HYG002 — generic engine hygiene
# ----------------------------------------------------------------------


def _check_hyg001(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call):
                chain = attr_chain(default.func)
                mutable = chain in (("list",), ("dict",), ("set",))
            if mutable:
                found = ctx.finding(
                    HYG001,
                    default,
                    f"mutable default argument in `{node.name}(...)`; "
                    "default to None and construct inside the function",
                )
                if found is not None:
                    yield found


HYG001 = register(
    Rule(
        id="HYG001",
        severity=Severity.WARNING,
        summary="mutable default argument",
        scope=("repro",),
        check=_check_hyg001,
    )
)


def _check_hyg002(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            found = ctx.finding(
                HYG002,
                node,
                "bare `except:` swallows SystemExit/KeyboardInterrupt; "
                "catch the narrowest exception the operation can raise",
            )
            if found is not None:
                yield found


HYG002 = register(
    Rule(
        id="HYG002",
        severity=Severity.WARNING,
        summary="bare except",
        scope=("repro",),
        check=_check_hyg002,
    )
)
