"""Static analysis for the reproduction's correctness contracts.

Two tiers, one finding model (see docs/ANALYSIS.md for the rule
catalog):

* **Tier A — code linter** (:mod:`repro.analysis.codelint`): AST rules
  that mechanically enforce the determinism/parallel-safety contract of
  docs/PARALLELISM.md — unseeded randomness (DET001), wall-clock reads
  in simulation paths (DET002), iteration over unordered sets in hot
  paths (DET003), unpicklable worker dispatch (PAR001), config fields
  escaping the cache schema hash (CACHE001), plus generic hygiene
  (HYG001/HYG002).
* **Tier B — plan verifier** (:mod:`repro.analysis.planlint`): static
  legality checks over compiled :class:`~repro.pattern.plan.ExecutionPlan`
  IR — state def-before-use, level coverage, restriction partial order
  and automorphism consistency, set-op datapath legality, ordering
  connectivity (PLAN001-PLAN006).

Both are exposed through ``python -m repro lint`` and
``python -m repro lint-plan`` and run in CI; intentional findings live
in a reviewed baseline file (:mod:`repro.analysis.baseline`).
"""

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.codelint import lint_paths, lint_source
from repro.analysis.engine import ALL_RULES, Rule, rule_catalog
from repro.analysis.findings import Finding, Severity, fingerprint
from repro.analysis.planlint import verify_all_builtin, verify_plan
from repro.analysis.report import render_json, render_text

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "Rule",
    "Severity",
    "fingerprint",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_text",
    "rule_catalog",
    "verify_all_builtin",
    "verify_plan",
    "write_baseline",
]
