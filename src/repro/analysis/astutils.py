"""Small AST helpers shared by the lint rules (Tier A *and* Tier C).

Nothing here is a full type inferencer — the rules only need a few
cheap, conservative facts about a module:

* which local names alias which *modules* (``import numpy as np`` makes
  ``np`` alias ``numpy``), and which names were from-imported from
  which module;
* which names are *set-typed* inside a scope (annotated ``set[...]``,
  or assigned a set literal / comprehension / ``set()`` call), with a
  flow-insensitive "ever a set" approximation;
* attribute-chain rendering (``np.random.default_rng`` ->
  ``("np", "random", "default_rng")``);
* receiver matching: which attribute chain a statement *mutates*
  (``G.append(x)``, ``G[k] = v``, ``del G[k]``, ``G += [x]``) — the
  shared vocabulary for PAR/RACE-style rules, so rule authors stop
  re-implementing it per rule.

The helpers are deliberately value-object shaped (pure functions over
AST nodes plus one :class:`ImportMap`) so both the per-file Tier-A
engine and the whole-program Tier-C analyzer
(:mod:`repro.analysis.dataflow`) consume them unchanged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "ImportMap",
    "MUTATING_METHODS",
    "SetNames",
    "attr_chain",
    "collect_imports",
    "is_mutable_literal",
    "is_set_expr",
    "iter_scopes",
    "mutated_chain",
    "set_names_in",
    "walk_scope",
]


def walk_scope(scope_node: ast.AST) -> Iterator[ast.AST]:
    """Walk one scope without descending into nested function bodies.

    Nested functions are their own scopes (with their own set-name
    tables); lambdas and comprehensions stay in the enclosing scope.
    """
    stack: list[ast.AST] = [scope_node]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def attr_chain(node: ast.AST) -> tuple[str, ...]:
    """Dotted name parts of a Name/Attribute chain, or ``()`` if other.

    ``a.b.c`` -> ``("a", "b", "c")``; anything rooted at a call or
    subscript yields ``()`` (the rules treat it as unknown).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


@dataclass
class ImportMap:
    """Name bindings introduced by a module's import statements."""

    #: local alias -> imported module ("np" -> "numpy").
    modules: dict[str, str] = field(default_factory=dict)
    #: from-imported local name -> (module, original name).
    names: dict[str, tuple[str, str]] = field(default_factory=dict)

    def module_of(self, alias: str) -> str | None:
        return self.modules.get(alias)

    def from_import(self, name: str) -> tuple[str, str] | None:
        return self.names.get(name)

    def aliases_of(self, module: str) -> set[str]:
        """All local aliases bound to ``module`` (``import m as a``)."""
        return {a for a, m in self.modules.items() if m == module}

    def from_names(self, module: str) -> dict[str, str]:
        """Local name -> original name for from-imports of ``module``."""
        return {
            local: orig
            for local, (mod, orig) in self.names.items()
            if mod == module
        }


def collect_imports(tree: ast.Module) -> ImportMap:
    """Imports anywhere in the module (including function bodies)."""
    imports = ImportMap()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                imports.modules[a.asname or a.name.split(".")[0]] = a.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name != "*":
                    imports.names[a.asname or a.name] = (node.module, a.name)
    return imports


def iter_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "MutableSet"}


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    chain = attr_chain(target)
    return bool(chain) and chain[-1] in _SET_ANNOTATIONS


class SetNames:
    """Names known (flow-insensitively) to hold sets within one scope."""

    def __init__(self, names: set[str]) -> None:
        self.names = names

    def __contains__(self, name: str) -> bool:
        return name in self.names


def set_names_in(scope_body: list[ast.stmt], scope_node: ast.AST) -> SetNames:
    """Conservatively collect set-typed names in one scope.

    A name counts as a set if it is ever annotated as one, assigned a
    set literal / set comprehension / ``set()`` / ``frozenset()`` call,
    or is a parameter annotated as a set.  Only statements *directly in*
    this scope are inspected (nested functions are separate scopes).
    """
    names: set[str] = set()
    if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope_node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_set(arg.annotation):
                names.add(arg.arg)

    def visit(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # separate scope
            if isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and _annotation_is_set(
                    stmt.annotation
                ):
                    names.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                if _value_is_set(stmt.value, names):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            # recurse into compound statements of the same scope
            for child_body in _sub_bodies(stmt):
                visit(child_body)

    visit(scope_body)
    return SetNames(names)


def _sub_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


def _value_is_set(value: ast.expr, known: set[str]) -> bool:
    return is_set_expr(value, SetNames(known))


def is_set_expr(node: ast.expr, sets: SetNames) -> bool:
    """Whether an expression statically evaluates to a ``set``.

    Recognizes set literals, set comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls, names known to be sets, set-producing
    binary operators (``|``, ``&``, ``-``, ``^``) over set expressions,
    and ``.union/.intersection/.difference/...`` method calls on sets.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in sets
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        if chain in (("set",), ("frozenset",)):
            return True
        if (
            len(chain) >= 2
            and chain[-1]
            in {
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
                "copy",
            }
            and isinstance(node.func, ast.Attribute)
            and is_set_expr(node.func.value, sets)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # The left operand decides: ``set - x`` / ``set | x`` are sets,
        # while ``int - int`` never is.
        return is_set_expr(node.left, sets)
    return False


# ----------------------------------------------------------------------
# Receiver matching: mutation detection shared by PAR/RACE-style rules
# ----------------------------------------------------------------------

#: Method names that mutate their receiver in place (list/dict/set/deque
#: vocabulary).  ``pop`` is included: even though it also returns a
#: value, calling it mutates the container.
MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "difference_update",
    "discard", "extend", "extendleft", "insert", "intersection_update",
    "pop", "popitem", "popleft", "remove", "reverse", "setdefault",
    "sort", "symmetric_difference_update", "update",
})

#: Constructor calls and literal node types that build mutable containers.
_MUTABLE_CONSTRUCTORS = frozenset({
    "bytearray", "defaultdict", "deque", "dict", "list", "set",
    "Counter", "OrderedDict",
})


def is_mutable_literal(value: ast.expr) -> bool:
    """Whether an expression statically builds a *mutable* container."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        chain = attr_chain(value.func)
        return bool(chain) and chain[-1] in _MUTABLE_CONSTRUCTORS
    return False


def _subscript_root(node: ast.expr) -> tuple[str, ...]:
    """Attr chain under any stack of subscripts (``a.b[i][j]`` -> a.b)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return attr_chain(node)


def mutated_chain(node: ast.AST) -> tuple[str, ...]:
    """The attribute chain a statement/expression mutates, or ``()``.

    Recognizes, returning the chain of the mutated *receiver*:

    * ``recv.append(x)`` and friends (:data:`MUTATING_METHODS`);
    * subscript stores ``recv[...] = v`` / ``recv[...] += v``;
    * attribute stores ``recv.attr = v`` (returns ``recv``'s chain, not
      the attribute's — the object named by ``recv`` is what changed);
    * ``del recv[...]``.

    Plain name rebinding (``x = v``) is *not* a mutation of an object
    and yields ``()`` — callers interested in rebinding handle
    ``ast.Assign``/``global`` explicitly.
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATING_METHODS:
            return attr_chain(node.func.value)
        return ()
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Subscript):
                chain = _subscript_root(target)
                if chain:
                    return chain
            elif isinstance(target, ast.Attribute):
                chain = attr_chain(target.value)
                if chain:
                    return chain
        return ()
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                chain = _subscript_root(target)
                if chain:
                    return chain
            elif isinstance(target, ast.Attribute):
                chain = attr_chain(target.value)
                if chain:
                    return chain
    return ()
