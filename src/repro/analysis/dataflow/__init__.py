"""Tier C — whole-program dataflow analysis (``repro lint-flow``).

Tier A (:mod:`repro.analysis.rules`) is per-file and syntactic; it
cannot see facts that flow *across* module boundaries — a mutable
global written by a function that only *transitively* runs inside a
pool worker, a ``KernelPolicy`` threshold leaking into the timing
model two calls deep, or a config field read under ``Backend.run``
that a hand-rolled ``cache_key`` forgot.  Tier C closes that gap:

1. :mod:`~repro.analysis.dataflow.callgraph` parses every module into
   one :class:`ProjectModel` and builds a conservative project-wide
   call graph (name/alias resolution, ``self`` dispatch through the
   class hierarchy, duck-typed method-name matching for unknown
   receivers);
2. :mod:`~repro.analysis.dataflow.facts` propagates context facts over
   that graph — *runs-in-worker*, *hot-path*, *timing-model*,
   *cache-key-input*;
3. :mod:`~repro.analysis.dataflow.flowrules` reports the four
   interprocedural rule families — RACE001/RACE002 (shared mutable
   state on worker paths), TAINT001 (kernel-policy dataflow into
   timing computation), KEY001 (config reads escaping a backend's
   cache key), DTYPE001 (dtype churn feeding the set-op kernels).

Findings reuse the Tier-A value model (:mod:`repro.analysis.findings`)
and baseline machinery, so ``repro lint-flow`` supports ``# noqa``,
fingerprint baselines, and the same text/JSON reporters.  The runtime
counterpart — the determinism sanitizer that validates these static
verdicts dynamically — lives in :mod:`repro.sanitize`.

docs/ANALYSIS.md documents the rule catalog, the call-graph
construction, and the known soundness limits.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.analysis.dataflow.callgraph import (
    FunctionInfo,
    ProjectModel,
    build_project,
)
from repro.analysis.dataflow.facts import ProjectFacts, compute_facts
from repro.analysis.dataflow.flowrules import (
    FLOW_RULES,
    FlowRule,
    flow_rule_catalog,
)
from repro.analysis.engine import iter_python_files, module_name_for
from repro.analysis.findings import Finding, sort_findings

__all__ = [
    "FLOW_RULES",
    "FlowRule",
    "FunctionInfo",
    "ProjectFacts",
    "ProjectModel",
    "analyze_project",
    "analyze_sources",
    "build_project",
    "compute_facts",
    "default_flow_root",
    "flow_rule_catalog",
    "lint_flow_paths",
]


def default_flow_root() -> Path:
    """The installed ``repro`` package tree (the default analysis
    target of ``repro lint-flow``)."""
    import repro

    return Path(repro.__file__).resolve().parent


def analyze_project(
    model: ProjectModel,
    *,
    rules: Sequence[FlowRule] | None = None,
) -> list[Finding]:
    """Run every flow rule over an already-built project model."""
    facts = compute_facts(model)
    findings: list[Finding] = []
    for rule in rules if rules is not None else flow_rule_catalog():
        findings.extend(rule.check(model, facts))
    return sort_findings(findings)


def analyze_sources(
    sources: Mapping[str, str],
    *,
    rules: Sequence[FlowRule] | None = None,
) -> list[Finding]:
    """Analyze in-memory sources (the test-fixture entry point).

    ``sources`` maps dotted module names (``"repro.hw.fake"``) to source
    text; finding paths render as ``<module>`` pseudo-paths.
    """
    model = build_project(
        {name: (f"<{name}>", text) for name, text in sources.items()}
    )
    return analyze_project(model, rules=rules)


def lint_flow_paths(
    paths: Iterable[Path | str],
    *,
    rules: Sequence[FlowRule] | None = None,
) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths`` as one program.

    Unlike Tier A's per-file :func:`repro.analysis.codelint.lint_paths`,
    all files are loaded into a single :class:`ProjectModel` first —
    the rules need the whole call graph.  Paths are reported relative
    to the current working directory when possible, so baselines stay
    machine-independent.
    """
    cwd = Path.cwd()
    modules: dict[str, tuple[str, str]] = {}
    for file in iter_python_files(Path(p) for p in paths):
        resolved = file.resolve()
        try:
            display = resolved.relative_to(cwd).as_posix()
        except ValueError:
            display = resolved.as_posix()
        module = module_name_for(resolved)
        modules[module] = (display, resolved.read_text(encoding="utf-8"))
    return analyze_project(build_project(modules), rules=rules)
