"""The Tier-C rule families (RACE, TAINT, KEY, DTYPE).

Every rule sees the whole :class:`~repro.analysis.dataflow.callgraph.
ProjectModel` plus the propagated :class:`~repro.analysis.dataflow.
facts.ProjectFacts`, and mints findings through the per-module
:class:`~repro.analysis.engine.ModuleContext` so ``# noqa: RULE``
pragmas and baseline fingerprints work exactly as in Tier A.

RACE001 (error)
    A function reachable from a pool worker entry rebinds a module
    global (``global X`` + assignment) or mutates a module-level
    mutable container.  Worker processes each get their own copy, so
    such writes silently diverge between the pool path and the serial
    fallback — or corrupt state outright under threads.
RACE002 (error)
    A worker entry function mutates its *payload* parameter.  The
    payload is shared by reference on the serial path and copied on
    the pool path, so mutation makes the two execution models disagree.
TAINT001 (error)
    A :class:`~repro.setops.kernels.KernelPolicy` fact (policy
    attribute, ``DEFAULT_POLICY``, kernel counters, kernel choice)
    flows into a timing quantity inside ``repro.hw``/``repro.sw``.
    Kernel policy may change *how fast the host computes* results, but
    never the modeled cycle count — docs/KERNELS.md ("timing
    neutrality").  Note the *results* of kernel dispatch are not
    tainted: every policy produces bit-identical sets, and those sets
    legitimately drive the search tree that timing models.
KEY001 (error)
    A backend overrides ``cache_key`` without routing the config
    through :func:`~repro.core.backend.config_signature` (or
    ``super().cache_key``), and some config field read under its run
    path never appears in the override — a stale-cache hazard.
DTYPE001 (warning)
    A copy-inducing NumPy conversion (``.astype``, ``np.array``,
    non-int32 ``np.asarray``) feeds a set-op kernel call on the hot
    path.  The kernels contract expects int32 CSR slices prepared once
    at build time; converting per call burns the memory bandwidth the
    kernels exist to save.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.analysis.astutils import (
    attr_chain,
    is_mutable_literal,
    mutated_chain,
)
from repro.analysis.dataflow.callgraph import (
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)
from repro.analysis.dataflow.facts import ProjectFacts, is_timing_name
from repro.analysis.findings import Finding, Severity

__all__ = [
    "FLOW_RULES",
    "FlowRule",
    "flow_rule_catalog",
    "register_flow_rule",
]


@dataclass(frozen=True)
class FlowRule:
    """One whole-program rule: metadata plus a project-level checker."""

    id: str
    severity: Severity
    summary: str
    check: Callable[[ProjectModel, ProjectFacts], Iterable[Finding]]


FLOW_RULES: list[FlowRule] = []


def register_flow_rule(rule: FlowRule) -> FlowRule:
    if any(r.id == rule.id for r in FLOW_RULES):
        raise ValueError(f"duplicate flow rule id {rule.id!r}")
    FLOW_RULES.append(rule)
    return rule


def flow_rule_catalog() -> list[FlowRule]:
    return list(FLOW_RULES)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _iter_worker_functions(
    model: ProjectModel, facts: ProjectFacts
) -> Iterator[FunctionInfo]:
    for qualname in sorted(facts.worker_paths):
        fn = model.functions.get(qualname)
        if fn is not None:
            yield fn


def _module_level_names(mod: ModuleInfo) -> tuple[set[str], set[str]]:
    """(all module-level assigned names, the mutable-container subset)."""
    all_names: set[str] = set()
    mutable: set[str] = set()
    for stmt in mod.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name):
                all_names.add(target.id)
                if value is not None and is_mutable_literal(value):
                    mutable.add(target.id)
    return all_names, mutable


def _local_bindings(fn: FunctionInfo) -> set[str]:
    """Names bound locally in ``fn`` (params + assignments − globals)."""
    args = fn.node.args
    local: set[str] = {
        a.arg
        for a in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
    }
    declared_global: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                local.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                local.add(node.target.id)
    return local - declared_global


def _param_names(fn: FunctionInfo) -> set[str]:
    args = fn.node.args
    names = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
    names.discard("self")
    names.discard("cls")
    return names


# ----------------------------------------------------------------------
# RACE001 — shared module state written on worker paths
# ----------------------------------------------------------------------


def _check_race001(
    model: ProjectModel, facts: ProjectFacts
) -> Iterable[Finding]:
    per_module_names: dict[str, tuple[set[str], set[str]]] = {}
    for fn in _iter_worker_functions(model, facts):
        mod = model.modules[fn.module]
        if fn.module not in per_module_names:
            per_module_names[fn.module] = _module_level_names(mod)
        all_names, mutable = per_module_names[fn.module]
        local = _local_bindings(fn)
        witness = facts.worker_witness(fn.qualname)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                shared = sorted(set(node.names) & all_names)
                if shared:
                    finding = mod.ctx.finding(
                        _RACE001,
                        node,
                        "`{}` rebinds module global(s) {} but runs in pool "
                        "workers (reachable from {}); each worker process "
                        "sees its own copy, so the write diverges from the "
                        "serial fallback".format(
                            fn.name,
                            ", ".join(f"`{n}`" for n in shared),
                            witness,
                        ),
                    )
                    if finding is not None:
                        yield finding
                continue
            chain = mutated_chain(node)
            if (
                chain
                and chain[0] in mutable
                and chain[0] not in local
            ):
                finding = mod.ctx.finding(
                    _RACE001,
                    node,
                    "`{}` mutates module-level container `{}` but runs in "
                    "pool workers (reachable from {}); per-process copies "
                    "make the mutation invisible to the parent and "
                    "non-deterministic under the serial fallback".format(
                        fn.name, chain[0], witness
                    ),
                )
                if finding is not None:
                    yield finding


_RACE001 = register_flow_rule(
    FlowRule(
        id="RACE001",
        severity=Severity.ERROR,
        summary="module-level mutable state written on a pool-worker path",
        check=_check_race001,
    )
)


# ----------------------------------------------------------------------
# RACE002 — worker entry mutates its shared payload
# ----------------------------------------------------------------------


def _check_race002(
    model: ProjectModel, facts: ProjectFacts
) -> Iterable[Finding]:
    for qualname in sorted(facts.worker_entries):
        fn = model.functions.get(qualname)
        if fn is None:
            continue
        mod = model.modules[fn.module]
        params = _param_names(fn)
        for node in ast.walk(fn.node):
            chain = mutated_chain(node)
            if chain and chain[0] in params:
                finding = mod.ctx.finding(
                    _RACE002,
                    node,
                    "worker entry `{}` mutates its parameter `{}`; the "
                    "payload is shared by reference on the serial path but "
                    "copied per process on the pool path, so the two "
                    "execution models disagree".format(fn.name, chain[0]),
                )
                if finding is not None:
                    yield finding


_RACE002 = register_flow_rule(
    FlowRule(
        id="RACE002",
        severity=Severity.ERROR,
        summary="worker entry function mutates its shared payload",
        check=_check_race002,
    )
)


# ----------------------------------------------------------------------
# TAINT001 — kernel policy leaking into the timing model
# ----------------------------------------------------------------------

_TAINT_SOURCE_NAMES = frozenset({"DEFAULT_POLICY"})
_TAINT_SOURCE_CALLS = frozenset({"kernel_counters", "_pick"})
_TAINT_SINK_PACKAGES = ("repro.hw", "repro.sw")


def _policy_annotated_params(fn: FunctionInfo) -> set[str]:
    args = fn.node.args
    out: set[str] = set()
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        ann = arg.annotation
        if isinstance(ann, ast.Subscript):
            ann = ann.value
        chain = attr_chain(ann) if ann is not None else ()
        if chain and chain[-1] == "KernelPolicy":
            out.add(arg.arg)
    return out


class _TaintScanner:
    """Flow-insensitive per-function taint propagation.

    Sources: ``policy`` attribute chains, :data:`_TAINT_SOURCE_NAMES`,
    :data:`_TAINT_SOURCE_CALLS`, ``KernelPolicy``-annotated parameters,
    names assigned from ``KernelPolicy(...)``, and calls to functions
    already known to return tainted values (the interprocedural
    dimension, resolved to a fixed point by the rule driver).
    """

    def __init__(
        self,
        model: ProjectModel,
        fn: FunctionInfo,
        returns_tainted: set[str],
    ) -> None:
        self.model = model
        self.fn = fn
        self.returns_tainted = returns_tainted
        self.tainted: set[str] = _policy_annotated_params(fn)
        self._propagate()

    def _call_returns_taint(self, call: ast.Call) -> bool:
        chain = attr_chain(call.func)
        if chain and chain[-1] in _TAINT_SOURCE_CALLS:
            return True
        if chain and chain[-1] == "KernelPolicy":
            return True
        targets = self.model.resolve_call(self.fn, call)
        return bool(targets & self.returns_tainted)

    def expr_tainted(self, expr: ast.expr | None) -> bool:
        if expr is None:
            return False
        for node in ast.walk(expr):
            chain: tuple[str, ...] = ()
            if isinstance(node, (ast.Name, ast.Attribute)):
                chain = attr_chain(node)
            if chain:
                if "policy" in chain or chain[-1] in _TAINT_SOURCE_NAMES:
                    return True
                if chain[0] in self.tainted:
                    return True
            if isinstance(node, ast.Call) and self._call_returns_taint(node):
                return True
        return False

    def _propagate(self) -> None:
        for _ in range(len(self.tainted) + 32):
            before = len(self.tainted)
            for node in ast.walk(self.fn.node):
                value: ast.expr | None = None
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    value, targets = node.value, [node.target]
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    value, targets = node.iter, [node.target]
                if value is None or not self.expr_tainted(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.tainted.add(target.id)
            if len(self.tainted) == before:
                break

    def returns_taint(self) -> bool:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Return) and self.expr_tainted(node.value):
                return True
        return False


def _in_sink_packages(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".")
        for pkg in _TAINT_SINK_PACKAGES
    )


def _check_taint001(
    model: ProjectModel, facts: ProjectFacts
) -> Iterable[Finding]:
    # Interprocedural fixed point: which functions return tainted values.
    returns_tainted: set[str] = set()
    for _ in range(len(model.functions) + 1):
        changed = False
        for qualname in sorted(model.functions):
            if qualname in returns_tainted:
                continue
            fn = model.functions[qualname]
            if _TaintScanner(model, fn, returns_tainted).returns_taint():
                returns_tainted.add(qualname)
                changed = True
        if not changed:
            break

    for qualname in sorted(model.functions):
        fn = model.functions[qualname]
        if not _in_sink_packages(fn.module):
            continue
        mod = model.modules[fn.module]
        scan = _TaintScanner(model, fn, returns_tainted)
        for node in ast.walk(fn.node):
            sink: str | None = None
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                named = [
                    chain[-1]
                    for t in targets
                    if (chain := attr_chain(t)) and is_timing_name(chain[-1])
                ]
                if named and scan.expr_tainted(node.value):
                    sink = f"timing assignment to `{named[0]}`"
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                callee_is_timing = bool(chain) and (
                    is_timing_name(chain[-1])
                    or bool(
                        model.resolve_call(fn, node)
                        & facts.timing_functions
                    )
                )
                if callee_is_timing and any(
                    scan.expr_tainted(a) for a in node.args
                ) or (
                    callee_is_timing
                    and any(
                        scan.expr_tainted(kw.value) for kw in node.keywords
                    )
                ):
                    sink = f"argument of timing function `{chain[-1]}`"
            elif isinstance(node, ast.Return) and is_timing_name(fn.name):
                if scan.expr_tainted(node.value):
                    sink = f"return value of timing function `{fn.name}`"
            if sink is not None:
                finding = mod.ctx.finding(
                    _TAINT001,
                    node,
                    "kernel-policy value reaches the {} in `{}`; kernel "
                    "selection must be timing-neutral (docs/KERNELS.md) — "
                    "derive modeled cycles from set sizes, never from how "
                    "the host computed them".format(sink, fn.name),
                )
                if finding is not None:
                    yield finding


_TAINT001 = register_flow_rule(
    FlowRule(
        id="TAINT001",
        severity=Severity.ERROR,
        summary="kernel-policy dataflow into the timing model",
        check=_check_taint001,
    )
)


# ----------------------------------------------------------------------
# KEY001 — config reads escaping a hand-rolled cache key
# ----------------------------------------------------------------------


def _cache_key_is_delegating(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether a ``cache_key`` override routes through the safe helpers."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        chain = attr_chain(sub.func)
        if chain and chain[-1] == "config_signature":
            return True
        func = sub.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "cache_key"
            and isinstance(func.value, ast.Call)
            and attr_chain(func.value.func) == ("super",)
        ):
            return True
    return False


def _mentioned_names(node: ast.AST) -> set[str]:
    """Every identifier a cache-key body could cover a field with."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            out.add(sub.attr)
        elif isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.keyword) and sub.arg:
            out.add(sub.arg)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            out.add(sub.value)
    return out


def _config_class_of(
    model: ProjectModel, cls_qualname: str
) -> str | None:
    """Resolve a backend class's ``config_type`` binding, if any."""
    info = model.classes[cls_qualname]
    mod = model.modules[info.module]
    for stmt in info.node.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if (
            not isinstance(target, ast.Name)
            or target.id != "config_type"
            or value is None
        ):
            continue
        chain = attr_chain(value)
        if not chain:
            return None
        local = model.module_class(info.module, chain[-1])
        if local is not None:
            return local
        origin = mod.imports.from_import(chain[0])
        if origin is not None:
            candidate = f"{origin[0]}.{origin[1]}"
            if candidate in model.classes:
                return candidate
    return None


def _check_key001(
    model: ProjectModel, facts: ProjectFacts
) -> Iterable[Finding]:
    for cls_qualname in sorted(facts.backend_run_reachable):
        info = model.classes[cls_qualname]
        key_qual = info.methods.get("cache_key")
        if key_qual is None:
            continue  # inherits the signature-complete base key
        key_fn = model.functions[key_qual]
        if _cache_key_is_delegating(key_fn.node):
            continue
        config_cls = _config_class_of(model, cls_qualname)
        if config_cls is None:
            continue
        config = model.classes[config_cls]
        if not config.is_dataclass or not config.fields:
            continue
        covered = _mentioned_names(key_fn.node)
        field_set = set(config.fields)
        reads: dict[str, tuple[str, ast.Attribute]] = {}
        for qualname in sorted(facts.backend_run_reachable[cls_qualname]):
            fn = model.functions.get(qualname)
            if fn is None or qualname == key_qual:
                continue
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and node.attr in field_set
                    and node.attr not in reads
                ):
                    reads[node.attr] = (qualname, node)
        mod = model.modules[key_fn.module]
        for field_name in sorted(reads):
            if field_name in covered:
                continue
            read_at, _node = reads[field_name]
            finding = mod.ctx.finding(
                _KEY001,
                key_fn.node,
                "`{}.cache_key` omits config field `{}` of `{}`, which is "
                "read under the backend's run path (in `{}`); cached "
                "results will be reused across configs that differ in "
                "that field — route through config_signature() "
                "instead".format(
                    info.name, field_name, config.name, read_at
                ),
            )
            if finding is not None:
                yield finding


_KEY001 = register_flow_rule(
    FlowRule(
        id="KEY001",
        severity=Severity.ERROR,
        summary="config field read under run() but missing from cache_key",
        check=_check_key001,
    )
)


# ----------------------------------------------------------------------
# DTYPE001 — dtype churn feeding the set-op kernels
# ----------------------------------------------------------------------

_KERNEL_PACKAGES = ("repro.setops",)
_CLEAN_DTYPES = frozenset({"int32", "intp"})


def _is_kernel_call(
    model: ProjectModel, fn: FunctionInfo, call: ast.Call
) -> bool:
    return any(
        _in_kernel_packages(model.functions[t].module)
        for t in model.resolve_call(fn, call)
        if t in model.functions
    )


def _in_kernel_packages(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".")
        for pkg in _KERNEL_PACKAGES
    )


def _conversion_label(
    expr: ast.expr, numpy_aliases: set[str]
) -> str | None:
    """Describe a copy-inducing conversion, or ``None`` if clean."""
    if not isinstance(expr, ast.Call):
        return None
    chain = attr_chain(expr.func)
    if not chain:
        return None
    if chain[-1] == "astype":
        return ".astype(...)"
    if len(chain) == 2 and chain[0] in numpy_aliases:
        if chain[1] == "array":
            return "np.array(...)"
        if chain[1] == "asarray":
            for kw in expr.keywords:
                if kw.arg == "dtype":
                    dtype = attr_chain(kw.value)
                    if dtype and dtype[-1] not in _CLEAN_DTYPES:
                        return f"np.asarray(dtype={dtype[-1]})"
    return None


def _check_dtype001(
    model: ProjectModel, facts: ProjectFacts
) -> Iterable[Finding]:
    for qualname in sorted(facts.hot_functions):
        fn = model.functions[qualname]
        if _in_kernel_packages(fn.module):
            continue  # the kernels may convert internally
        mod = model.modules[fn.module]
        numpy_aliases = mod.imports.aliases_of("numpy")
        converted: dict[str, str] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                label = _conversion_label(node.value, numpy_aliases)
                if label is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            converted[target.id] = label
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call) or not _is_kernel_call(
                model, fn, node
            ):
                continue
            for arg in node.args:
                label = _conversion_label(arg, numpy_aliases)
                if label is None and isinstance(arg, ast.Name):
                    label = converted.get(arg.id)
                if label is None:
                    continue
                finding = mod.ctx.finding(
                    _DTYPE001,
                    node,
                    "`{}` feeds a {} conversion into a set-op kernel call; "
                    "the kernels expect int32 CSR slices prepared once at "
                    "graph build time — per-call copies burn the bandwidth "
                    "the kernels save (docs/KERNELS.md)".format(
                        fn.name, label
                    ),
                )
                if finding is not None:
                    yield finding
                break
    return


_DTYPE001 = register_flow_rule(
    FlowRule(
        id="DTYPE001",
        severity=Severity.WARNING,
        summary="copy-inducing dtype conversion feeding a set-op kernel",
        check=_check_dtype001,
    )
)
