"""Project model and conservative call-graph construction for Tier C.

One :class:`ProjectModel` holds every analyzed module's AST, import
map, and :class:`~repro.analysis.engine.ModuleContext` (source lines,
``noqa`` pragmas), plus three derived tables:

* ``functions`` — every module-level function and class method, keyed
  by dotted qualname (``repro.hw.pe.BasePE._execute_ops``);
* ``classes`` — every class with its raw base names, method table,
  and (for dataclasses) declared field names;
* ``calls`` — the call graph: caller qualname -> callee qualnames.

Resolution is *name-based and conservative* (docs/ANALYSIS.md, "known
soundness limits"):

* bare names resolve through the module's locals and from-imports;
* ``alias.f(...)`` resolves through module aliases;
* ``self.m(...)`` resolves through the class, its project ancestors,
  and — virtual dispatch — every project subclass override of ``m``;
* ``<unknown>.m(...)`` falls back to *method-name matching*: an edge
  to every project class method named ``m`` (never module functions,
  and never the builtin container vocabulary), which over-approximates
  duck-typed dispatch like ``backend.simulate(...)``.

Over-approximation is the right failure mode here: the facts layer
computes *reachability* (runs-in-worker, under-Backend.run), where a
spurious edge can only add a finding a human then reviews — a missing
edge would silently hide a race.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.analysis.astutils import ImportMap, attr_chain, collect_imports
from repro.analysis.engine import ModuleContext

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_project",
    "reachable",
]

#: Builtin container/str methods never treated as project dispatch in
#: the unknown-receiver fallback (they would wire ``results.append`` to
#: any project method that happens to be called ``append``).
_BUILTIN_METHODS = frozenset({
    "add", "append", "capitalize", "clear", "copy", "count", "decode",
    "difference", "discard", "encode", "endswith", "extend", "format",
    "get", "index", "insert", "intersection", "isdigit", "items", "join",
    "keys", "lower", "lstrip", "pop", "popitem", "read", "readlines",
    "remove", "replace", "reverse", "rstrip", "setdefault", "sort",
    "split", "splitlines", "startswith", "strip", "title", "union",
    "update", "upper", "values", "write",
})


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    qualname: str
    module: str
    name: str
    #: Qualname of the owning class, or ``None`` for module functions.
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One analyzed class definition."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: Raw base-name chains as written (``("Backend",)``,
    #: ``("abc", "ABC")``); resolved lazily against the project.
    base_chains: tuple[tuple[str, ...], ...]
    #: method name -> function qualname.
    methods: dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False
    #: Annotated field names, in declaration order (dataclasses).
    fields: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One analyzed module: AST plus per-file lint context."""

    name: str
    ctx: ModuleContext
    tree: ast.Module
    imports: ImportMap


class ProjectModel:
    """All modules of one analysis run, with derived indices."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: (module, bare name) -> function qualname, module level only.
        self._module_functions: dict[tuple[str, str], str] = {}
        #: (module, bare name) -> class qualname.
        self._module_classes: dict[tuple[str, str], str] = {}
        #: method name -> qualnames of every class method with the name.
        self._methods_named: dict[str, set[str]] = {}
        #: class qualname -> direct project subclasses.
        self._subclasses: dict[str, set[str]] = {}
        self.calls: dict[str, set[str]] = {}
        self._index()
        self._resolve_hierarchy()
        self._build_calls()

    # -- indexing --------------------------------------------------------

    def _index(self) -> None:
        for mod in self.modules.values():
            for stmt in mod.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{mod.name}.{stmt.name}"
                    self.functions[qual] = FunctionInfo(
                        qualname=qual, module=mod.name, name=stmt.name,
                        cls=None, node=stmt,
                    )
                    self._module_functions[(mod.name, stmt.name)] = qual
                elif isinstance(stmt, ast.ClassDef):
                    self._index_class(mod, stmt)

    def _index_class(self, mod: ModuleInfo, cls: ast.ClassDef) -> None:
        cls_qual = f"{mod.name}.{cls.name}"
        chains = tuple(
            chain
            for base in cls.bases
            if (chain := attr_chain(base))
        )
        info = ClassInfo(
            qualname=cls_qual, module=mod.name, name=cls.name, node=cls,
            base_chains=chains,
            is_dataclass=_is_dataclass_def(cls),
        )
        fields: list[str] = []
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_qual = f"{cls_qual}.{stmt.name}"
                self.functions[fn_qual] = FunctionInfo(
                    qualname=fn_qual, module=mod.name, name=stmt.name,
                    cls=cls_qual, node=stmt,
                )
                info.methods[stmt.name] = fn_qual
                if stmt.name not in _BUILTIN_METHODS:
                    self._methods_named.setdefault(stmt.name, set()).add(
                        fn_qual
                    )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields.append(stmt.target.id)
        info.fields = tuple(fields)
        self.classes[cls_qual] = info
        self._module_classes[(mod.name, cls.name)] = cls_qual

    def _resolve_hierarchy(self) -> None:
        for info in self.classes.values():
            for chain in info.base_chains:
                base = self._resolve_class_chain(info.module, chain)
                if base is not None:
                    self._subclasses.setdefault(base, set()).add(
                        info.qualname
                    )

    def _resolve_class_chain(
        self, module: str, chain: tuple[str, ...]
    ) -> str | None:
        """A base-class chain -> project class qualname, if resolvable."""
        mod = self.modules[module]
        if len(chain) == 1:
            name = chain[0]
            local = self._module_classes.get((module, name))
            if local is not None:
                return local
            origin = mod.imports.from_import(name)
            if origin is not None:
                qual = f"{origin[0]}.{origin[1]}"
                return qual if qual in self.classes else None
            return None
        root_module = mod.imports.module_of(chain[0])
        if root_module is not None:
            qual = f"{root_module}.{chain[-1]}"
            return qual if qual in self.classes else None
        origin = mod.imports.from_import(chain[0])
        if origin is not None and len(chain) == 2:
            qual = f"{origin[0]}.{origin[1]}.{chain[1]}"
            return qual if qual in self.classes else None
        return None

    # -- public lookups --------------------------------------------------

    def module_function(self, module: str, name: str) -> str | None:
        return self._module_functions.get((module, name))

    def module_class(self, module: str, name: str) -> str | None:
        return self._module_classes.get((module, name))

    def methods_named(self, name: str) -> set[str]:
        return set(self._methods_named.get(name, ()))

    def subclasses_of(self, cls_qual: str) -> set[str]:
        """All transitive project subclasses of ``cls_qual``."""
        out: set[str] = set()
        frontier = [cls_qual]
        while frontier:
            current = frontier.pop()
            for sub in self._subclasses.get(current, ()):
                if sub not in out:
                    out.add(sub)
                    frontier.append(sub)
        return out

    def ancestors_of(self, cls_qual: str) -> list[str]:
        """Project ancestor classes of ``cls_qual``, nearest first."""
        out: list[str] = []
        frontier = [cls_qual]
        while frontier:
            current = frontier.pop(0)
            info = self.classes.get(current)
            if info is None:
                continue
            for chain in info.base_chains:
                base = self._resolve_class_chain(info.module, chain)
                if base is not None and base not in out:
                    out.append(base)
                    frontier.append(base)
        return out

    def resolve_method(self, cls_qual: str, name: str) -> set[str]:
        """``self.name`` targets: own/ancestor def + subclass overrides."""
        targets: set[str] = set()
        for candidate in [cls_qual, *self.ancestors_of(cls_qual)]:
            info = self.classes.get(candidate)
            if info is not None and name in info.methods:
                targets.add(info.methods[name])
                break
        for sub in self.subclasses_of(cls_qual):
            info = self.classes.get(sub)
            if info is not None and name in info.methods:
                targets.add(info.methods[name])
        return targets

    def resolve_function_ref(self, module: str, name: str) -> str | None:
        """A bare name used as a *function value* -> qualname, if known.

        Resolves module locals first, then from-imports.  Used for
        worker-entry detection (``run_shards(worker_fn, ...)``).
        """
        local = self._module_functions.get((module, name))
        if local is not None:
            return local
        mod = self.modules.get(module)
        if mod is None:
            return None
        origin = mod.imports.from_import(name)
        if origin is not None:
            qual = f"{origin[0]}.{origin[1]}"
            if qual in self.functions:
                return qual
        return None

    def iter_calls(
        self, fn: FunctionInfo
    ) -> Iterator[ast.Call]:
        """Every call expression in ``fn`` (including nested defs).

        Nested functions and lambdas are not first-class nodes in the
        project model; their bodies execute on behalf of the enclosing
        function, so their calls count as the encloser's.
        """
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield node

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> set[str]:
        """Project functions one call expression may dispatch to."""
        return self._resolve_call(fn, call)

    # -- call-graph construction ----------------------------------------

    def _build_calls(self) -> None:
        for fn in self.functions.values():
            edges: set[str] = set()
            for call in self.iter_calls(fn):
                edges.update(self._resolve_call(fn, call))
            edges.discard(fn.qualname)
            self.calls[fn.qualname] = edges

    def _resolve_call(self, fn: FunctionInfo, call: ast.Call) -> set[str]:
        chain = attr_chain(call.func)
        if not chain:
            return set()
        module = fn.module
        if len(chain) == 1:
            name = chain[0]
            local = self._module_functions.get((module, name))
            if local is not None:
                return {local}
            cls = self._module_classes.get((module, name))
            if cls is None:
                origin = self.modules[module].imports.from_import(name)
                if origin is not None:
                    qual = f"{origin[0]}.{origin[1]}"
                    if qual in self.functions:
                        return {qual}
                    if qual in self.classes:
                        cls = qual
            if cls is not None:
                init = self.classes[cls].methods.get("__init__")
                return {init} if init else set()
            return set()
        root = chain[0]
        if root == "self" and fn.cls is not None and len(chain) == 2:
            targets = self.resolve_method(fn.cls, chain[1])
            if targets:
                return targets
        mod_alias = self.modules[module].imports.module_of(root)
        origin = self.modules[module].imports.from_import(root)
        target_module: str | None = None
        if mod_alias is not None and mod_alias in self.modules:
            target_module = mod_alias
        elif origin is not None:
            candidate = f"{origin[0]}.{origin[1]}"
            if candidate in self.modules:
                target_module = candidate
        if target_module is not None:
            if len(chain) == 2:
                local = self._module_functions.get((target_module, chain[1]))
                if local is not None:
                    return {local}
                cls = self._module_classes.get((target_module, chain[1]))
                if cls is not None:
                    init = self.classes[cls].methods.get("__init__")
                    return {init} if init else set()
                return set()
            if len(chain) == 3:
                cls = self._module_classes.get((target_module, chain[1]))
                if cls is not None:
                    method = self.classes[cls].methods.get(chain[2])
                    return {method} if method else set()
            return set()
        # Unknown receiver: duck-typed method-name matching.
        return self.methods_named(chain[-1])


def _is_dataclass_def(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        chain = attr_chain(dec.func if isinstance(dec, ast.Call) else dec)
        if chain and chain[-1] == "dataclass":
            return True
    return False


def build_project(modules: Mapping[str, tuple[str, str]]) -> ProjectModel:
    """Parse ``{module_name: (display_path, source)}`` into one model.

    Files that do not parse are skipped here — Tier A already reports
    SYNTAX findings per file, and a Tier-C run over a broken tree
    should degrade to analyzing the modules it *can* see.
    """
    infos: dict[str, ModuleInfo] = {}
    for name, (path, source) in modules.items():
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        infos[name] = ModuleInfo(
            name=name,
            ctx=ModuleContext(path=path, module=name, source=source),
            tree=tree,
            imports=collect_imports(tree),
        )
    return ProjectModel(infos)


def reachable(
    calls: Mapping[str, set[str]], roots: set[str]
) -> dict[str, tuple[str, ...]]:
    """BFS over the call graph: reached qualname -> witness call chain.

    The witness chain starts at the entry root and ends at the reached
    function (inclusive); roots witness themselves.  BFS order makes
    the witness a *shortest* chain, and processing roots in sorted
    order makes the choice deterministic.
    """
    paths: dict[str, tuple[str, ...]] = {}
    frontier: list[str] = []
    for root in sorted(roots):
        if root not in paths:
            paths[root] = (root,)
            frontier.append(root)
    while frontier:
        nxt: list[str] = []
        for current in frontier:
            for callee in sorted(calls.get(current, ())):
                if callee not in paths:
                    paths[callee] = paths[current] + (callee,)
                    nxt.append(callee)
        frontier = nxt
    return paths
