"""Context-fact propagation over the Tier-C call graph.

Facts are *where code runs*, not *what it does* — the rule layer
(:mod:`repro.analysis.dataflow.flowrules`) combines these with local
syntax to decide what to report:

``runs-in-worker``
    reachable from a pool worker entry point.  Entries are collected
    from call sites, not annotations: the first positional argument of
    ``run_shards(...)``, the ``initializer=`` of a
    ``ProcessPoolExecutor(...)``, and the function argument of pool
    methods (``executor.map(f, ...)``, ``.submit(f, ...)``).
``timing-model``
    functions inside the simulator packages whose *name* says they
    produce time (``…cycles…``, ``…latency…``, ``…stall…``) — the
    TAINT001 sink vocabulary.
``hot-path``
    functions living in :data:`repro.analysis.rules.HOT_PATH_PACKAGES`
    modules (the DTYPE001 scope).
``under-Backend.run``
    per backend class, the functions reachable from its effective
    ``run``/``simulate`` — the KEY001 read scope.  Context-insensitive:
    ``Backend.run`` dispatches ``self.simulate`` virtually, so each
    backend's reachable set over-approximates into its siblings'
    methods.  KEY001 tolerates this (see flowrules).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.astutils import attr_chain
from repro.analysis.dataflow.callgraph import (
    FunctionInfo,
    ProjectModel,
    reachable,
)
from repro.analysis.rules import HOT_PATH_PACKAGES, SIMULATION_PACKAGES

__all__ = [
    "POOL_FANOUT_METHODS",
    "ProjectFacts",
    "TIMING_NAME_RE",
    "compute_facts",
    "is_timing_name",
]

#: Executor/pool methods whose first argument is a function shipped to
#: worker processes.
POOL_FANOUT_METHODS = frozenset({
    "apply", "apply_async", "imap", "imap_unordered", "map", "map_async",
    "starmap", "starmap_async", "submit",
})

#: Names that denote time/cycle quantities in the simulator packages.
TIMING_NAME_RE = re.compile(r"cycl|latenc|stall|timing|busy|duration")


def is_timing_name(name: str) -> bool:
    """Whether a bare name denotes a timing quantity (TAINT001 sinks)."""
    return name == "now" or bool(TIMING_NAME_RE.search(name))


def _in_packages(module: str, packages: tuple[str, ...]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


@dataclass
class ProjectFacts:
    """Propagated context facts for one :class:`ProjectModel`."""

    #: Functions handed to a pool (the roots of worker execution).
    worker_entries: set[str] = field(default_factory=set)
    #: Reached qualname -> witness call chain from a worker entry.
    worker_paths: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Functions in hot-path packages (DTYPE001 scope).
    hot_functions: set[str] = field(default_factory=set)
    #: Timing-named functions in the simulator packages (TAINT001 sinks).
    timing_functions: set[str] = field(default_factory=set)
    #: Backend class qualname -> functions reachable from its run path.
    backend_run_reachable: dict[str, dict[str, tuple[str, ...]]] = field(
        default_factory=dict
    )

    def runs_in_worker(self, qualname: str) -> bool:
        return qualname in self.worker_paths

    def worker_witness(self, qualname: str) -> str:
        """Human-readable witness chain for a runs-in-worker fact."""
        chain = self.worker_paths.get(qualname, ())
        if len(chain) <= 1:
            return f"worker entry `{_short(qualname)}`"
        return "worker entry `{}` via {}".format(
            _short(chain[0]), " -> ".join(_short(q) for q in chain[1:])
        )


def _short(qualname: str) -> str:
    """Drop the package prefix for message readability."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


# ----------------------------------------------------------------------
# Worker-entry detection
# ----------------------------------------------------------------------


def _resolve_arg_ref(
    model: ProjectModel, fn: FunctionInfo, arg: ast.expr
) -> str | None:
    """A function-valued argument expression -> project qualname."""
    chain = attr_chain(arg)
    if not chain:
        return None
    if len(chain) == 1:
        return model.resolve_function_ref(fn.module, chain[0])
    if chain[0] == "self" and fn.cls is not None and len(chain) == 2:
        targets = model.resolve_method(fn.cls, chain[1])
        # A bound-method reference fans out to every override.
        return None if not targets else sorted(targets)[0]
    mod = model.modules[fn.module].imports.module_of(chain[0])
    if mod is not None and len(chain) == 2:
        return model.module_function(mod, chain[1])
    origin = model.modules[fn.module].imports.from_import(chain[0])
    if origin is not None and len(chain) == 2:
        candidate = f"{origin[0]}.{origin[1]}"
        if candidate in model.modules:
            return model.module_function(candidate, chain[1])
    return None


def _worker_refs(
    model: ProjectModel, fn: FunctionInfo, call: ast.Call
) -> list[str]:
    """Worker entry points referenced by one call expression."""
    chain = attr_chain(call.func)
    if not chain:
        return []
    refs: list[str] = []

    def first_arg() -> ast.expr | None:
        return call.args[0] if call.args else None

    if chain[-1] == "run_shards":
        arg = first_arg()
        if arg is not None:
            ref = _resolve_arg_ref(model, fn, arg)
            if ref is not None:
                refs.append(ref)
    elif chain[-1] == "ProcessPoolExecutor":
        for kw in call.keywords:
            if kw.arg == "initializer":
                ref = _resolve_arg_ref(model, fn, kw.value)
                if ref is not None:
                    refs.append(ref)
    elif len(chain) >= 2 and chain[-1] in POOL_FANOUT_METHODS:
        arg = first_arg()
        if arg is not None:
            ref = _resolve_arg_ref(model, fn, arg)
            if ref is not None:
                refs.append(ref)
    return refs


def compute_facts(model: ProjectModel) -> ProjectFacts:
    """Propagate every context fact over the project call graph."""
    facts = ProjectFacts()

    for fn in model.functions.values():
        if _in_packages(fn.module, HOT_PATH_PACKAGES):
            facts.hot_functions.add(fn.qualname)
        if _in_packages(fn.module, SIMULATION_PACKAGES) and is_timing_name(
            fn.name
        ):
            facts.timing_functions.add(fn.qualname)
        for call in model.iter_calls(fn):
            facts.worker_entries.update(_worker_refs(model, fn, call))

    facts.worker_paths = reachable(model.calls, set(facts.worker_entries))

    for cls in model.classes.values():
        # Backend-shaped: named Backend, directly based on something
        # *called* Backend (even when the base lives outside the
        # analyzed tree), or a project descendant of such a class.
        is_backend = (
            cls.name == "Backend"
            or any(
                chain[-1] == "Backend" for chain in cls.base_chains if chain
            )
            or any(
                model.classes[a].name == "Backend"
                for a in model.ancestors_of(cls.qualname)
                if a in model.classes
            )
        )
        if not is_backend:
            continue
        roots: set[str] = set()
        for method in ("run", "simulate"):
            roots.update(model.resolve_method(cls.qualname, method))
        roots.update(cls.methods.values())
        if roots:
            facts.backend_run_reachable[cls.qualname] = reachable(
                model.calls, roots
            )
    return facts
