"""The finding/severity model shared by both analysis tiers.

A :class:`Finding` is one rule violation at one location.  Findings are
value objects: sortable (report order), hashable, and fingerprintable
for the baseline file.  Fingerprints deliberately hash the *stripped
source line text* instead of the line number, so unrelated edits above a
baselined finding do not invalidate the baseline (the same scheme ruff
and ESLint use for their suppression files).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break a documented contract (determinism, cache
    validity, plan legality) and fail the lint run; ``WARNING`` findings
    are hygiene issues that still fail CI but signal style-adjacent
    hazards rather than observable misbehavior.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source (or plan) location.

    Attributes
    ----------
    rule:
        Rule identifier (``DET001``, ``PLAN003``, ...).
    severity:
        :class:`Severity` of the rule.
    path:
        File path for code findings; ``<plan:NAME>`` for plan findings.
    line:
        1-based source line, or the plan level for plan findings.
    col:
        0-based column (0 for plan findings).
    message:
        Human-readable description of the violation.
    snippet:
        Stripped text of the offending source line (empty for plan
        findings); feeds the baseline fingerprint.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    snippet: str = field(default="", compare=False)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Findings in stable report order (path, line, col, rule)."""
    return sorted(findings, key=Finding.sort_key)


def fingerprint(finding: Finding, occurrence: int = 0) -> str:
    """Stable identity of a finding for the baseline file.

    Hashes ``(rule, path, snippet, occurrence)`` — line numbers are
    excluded on purpose (see module docstring).  ``occurrence``
    disambiguates identical findings on identical source lines in the
    same file.
    """
    payload = "\x1f".join(
        [finding.rule, finding.path, finding.snippet, str(occurrence)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprint_all(findings: Sequence[Finding]) -> list[tuple[Finding, str]]:
    """Pair every finding with its occurrence-disambiguated fingerprint.

    Deterministic: findings are processed in sorted order, and the n-th
    finding with the same ``(rule, path, snippet)`` gets occurrence
    ``n`` — so the mapping is reproducible across runs and machines.
    """
    counts: dict[tuple[str, str, str], int] = {}
    out: list[tuple[Finding, str]] = []
    for f in sort_findings(findings):
        key = (f.rule, f.path, f.snippet)
        n = counts.get(key, 0)
        counts[key] = n + 1
        out.append((f, fingerprint(f, n)))
    return out
