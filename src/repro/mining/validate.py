"""Cross-validation utilities: every backend must agree.

The repository's strongest correctness claim is that independent code
paths — the brute-force matcher plus every backend in the
:mod:`repro.core` registry (the functional reference engine, the
FINGERS and FlexMiner timing models, and optionally the software
model) — all produce the same counts for the same job.  Validation is
literally "run two backends, compare counts": each leg goes through
``get_backend(name).run(...)``, so a new backend is covered the moment
it registers.  This module packages that check for tests, examples, and
ad-hoc debugging.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import CSRGraph
from repro.mining.api import plan_for
from repro.mining.bruteforce import count_instances_bruteforce
from repro.pattern.pattern import Pattern, named_pattern

__all__ = ["ValidationReport", "cross_validate"]

#: Graphs above this vertex count skip the (exponential) brute-force leg.
_BRUTEFORCE_LIMIT = 40

#: Timing-model PE/core count used for validation legs: small enough to
#: be fast, large enough to exercise the schedulers.
_VALIDATE_UNITS = 2


@dataclass(frozen=True)
class ValidationReport:
    """Counts per executor, plus the verdict."""

    pattern: str
    counts: dict
    consistent: bool

    def __str__(self) -> str:
        lines = [f"cross-validation for {self.pattern}:"]
        for name, value in self.counts.items():
            lines.append(f"  {name:12s} {value}")
        lines.append(f"  => {'CONSISTENT' if self.consistent else 'MISMATCH'}")
        return "\n".join(lines)


def cross_validate(
    graph: CSRGraph,
    pattern: str | Pattern,
    *,
    vertex_induced: bool = True,
    include_hardware: bool = True,
    include_software: bool = False,
    roots=None,
) -> ValidationReport:
    """Run every executor on one job and compare counts.

    The ``engine`` leg is the registry's ``functional`` backend (the
    pure reference engine); hardware and software legs are the same
    registry lookups with small timing-model configurations.  The
    brute-force oracle is included only for small graphs (its cost is
    exponential) and only when ``roots`` is not restricted.
    """
    from repro.core.backend import get_backend

    pattern_obj = named_pattern(pattern) if isinstance(pattern, str) else pattern
    name = pattern if isinstance(pattern, str) else repr(pattern)
    plan = plan_for(pattern_obj, vertex_induced=vertex_induced)

    counts: dict = {}
    counts["engine"] = get_backend("functional").run(
        graph, plan, roots=roots
    ).count
    if graph.num_vertices <= _BRUTEFORCE_LIMIT and roots is None:
        counts["bruteforce"] = count_instances_bruteforce(
            graph, pattern_obj, vertex_induced=vertex_induced
        )
    backends = []
    if include_hardware:
        backends += ["fingers", "flexminer"]
    if include_software:
        backends.append("software")
    for bname in backends:
        backend = get_backend(bname)
        counts[bname] = backend.run(
            graph, plan, backend.default_config(units=_VALIDATE_UNITS),
            roots=roots,
        ).count

    values = set(counts.values())
    return ValidationReport(
        pattern=name, counts=counts, consistent=len(values) == 1
    )
