"""Cross-validation utilities: every executor must agree.

The repository's strongest correctness claim is that four independent
code paths — the brute-force matcher, the plan-based reference engine,
the FINGERS timing model, and the FlexMiner timing model (plus the
software model) — all produce the same counts for the same job.  This
module packages that check for tests, examples, and ad-hoc debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.csr import CSRGraph
from repro.mining.api import plan_for
from repro.mining.bruteforce import count_instances_bruteforce
from repro.mining.engine import count_embeddings
from repro.pattern.pattern import Pattern, named_pattern

__all__ = ["ValidationReport", "cross_validate"]

#: Graphs above this vertex count skip the (exponential) brute-force leg.
_BRUTEFORCE_LIMIT = 40


@dataclass(frozen=True)
class ValidationReport:
    """Counts per executor, plus the verdict."""

    pattern: str
    counts: dict
    consistent: bool

    def __str__(self) -> str:
        lines = [f"cross-validation for {self.pattern}:"]
        for name, value in self.counts.items():
            lines.append(f"  {name:12s} {value}")
        lines.append(f"  => {'CONSISTENT' if self.consistent else 'MISMATCH'}")
        return "\n".join(lines)


def cross_validate(
    graph: CSRGraph,
    pattern: str | Pattern,
    *,
    vertex_induced: bool = True,
    include_hardware: bool = True,
    include_software: bool = False,
    roots=None,
) -> ValidationReport:
    """Run every executor on one job and compare counts.

    The brute-force oracle is included only for small graphs (its cost is
    exponential) and only when ``roots`` is not restricted.
    """
    pattern_obj = named_pattern(pattern) if isinstance(pattern, str) else pattern
    name = pattern if isinstance(pattern, str) else repr(pattern)
    plan = plan_for(pattern_obj, vertex_induced=vertex_induced)

    counts: dict = {}
    counts["engine"] = count_embeddings(graph, plan, roots=roots)
    if graph.num_vertices <= _BRUTEFORCE_LIMIT and roots is None:
        counts["bruteforce"] = count_instances_bruteforce(
            graph, pattern_obj, vertex_induced=vertex_induced
        )
    if include_hardware:
        from repro.hw.api import FingersConfig, FlexMinerConfig, simulate

        counts["fingers"] = simulate(
            graph, plan, FingersConfig(num_pes=2), roots=roots
        ).count
        counts["flexminer"] = simulate(
            graph, plan, FlexMinerConfig(num_pes=2), roots=roots
        ).count
    if include_software:
        from repro.sw import SoftwareConfig, simulate_software

        counts["software"] = simulate_software(
            graph, plan, SoftwareConfig(num_cores=2), roots=roots
        ).count

    values = set(counts.values())
    return ValidationReport(
        pattern=name, counts=counts, consistent=len(values) == 1
    )
