"""Brute-force subgraph-isomorphism oracle, independent of the plan IR.

A deliberately simple backtracking matcher used by the test suite to
validate the compiler + engine stack: it shares no code with the plan
executor, so agreement between the two is strong evidence of correctness.
Only suitable for small graphs.
"""

from __future__ import annotations

from repro.graph.csr import CSRGraph
from repro.pattern.automorphism import automorphism_count
from repro.pattern.pattern import Pattern

__all__ = ["count_maps_bruteforce", "count_instances_bruteforce"]


def count_maps_bruteforce(
    graph: CSRGraph, pattern: Pattern, *, vertex_induced: bool = True
) -> int:
    """Number of injective maps pattern -> graph preserving adjacency.

    With ``vertex_induced`` the maps must also preserve *non*-adjacency
    (exact induced match).  Every automorphic relabelling counts
    separately, so the result is ``instances x |Aut(pattern)|``.
    """
    k = pattern.num_vertices
    n = graph.num_vertices
    assignment: list[int] = []
    used: set[int] = set()

    def backtrack(pv: int) -> int:
        if pv == k:
            return 1
        total = 0
        for gv in range(n):
            if gv in used:
                continue
            ok = True
            for prev in range(pv):
                has = graph.has_edge(assignment[prev], gv)
                wants = pattern.has_edge(prev, pv)
                if wants and not has:
                    ok = False
                    break
                if vertex_induced and not wants and has:
                    ok = False
                    break
            if ok:
                assignment.append(gv)
                used.add(gv)
                total += backtrack(pv + 1)
                assignment.pop()
                used.remove(gv)
        return total

    return backtrack(0)


def count_instances_bruteforce(
    graph: CSRGraph, pattern: Pattern, *, vertex_induced: bool = True
) -> int:
    """Number of distinct pattern instances (each class counted once).

    This is what the plan executor reports thanks to its
    symmetry-breaking restrictions.
    """
    maps = count_maps_bruteforce(graph, pattern, vertex_induced=vertex_induced)
    aut = automorphism_count(pattern)
    assert maps % aut == 0, "map count must be a multiple of |Aut|"
    return maps // aut
