"""Pattern-oblivious (embedding-centric) mining — the paradigm FINGERS
rejects.

Paper sections 2.1-2.2: early systems (Arabesque, RStream, Pangolin) and
the Gramer accelerator are *pattern-oblivious*: they grow a tree whose
level ``k`` holds **all** connected size-``k + 1`` embeddings, prune what
cannot match, and run expensive isomorphism checks at the leaves.  The
paper's point — "the huge performance gap compared to pattern-aware
algorithms could not be closed by hardware acceleration" — is an
*algorithmic* claim, demonstrable in software: this module implements
the paradigm with work counters (embeddings materialized, isomorphism
tests) that the benchmarks compare against the pattern-aware engine's
tree size.

Enumeration is the exact ESU algorithm (Wernicke's FANMOD enumerator):
every connected k-vertex set is materialized exactly once, which is the
*best case* for the paradigm — so the measured work gap against
pattern-aware plans is a lower bound on the real systems' gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Callable

from repro.graph.csr import CSRGraph
from repro.pattern.pattern import Pattern

__all__ = ["ObliviousStats", "count_oblivious", "census_oblivious"]


@dataclass
class ObliviousStats:
    """Work counters of one pattern-oblivious run."""

    embeddings_materialized: int = 0
    isomorphism_checks: int = 0
    matches: int = 0


def _canonical_signature(pattern: Pattern) -> tuple[int, ...]:
    best: tuple[int, ...] | None = None
    k = pattern.num_vertices
    for perm in permutations(range(k)):
        relabelled = pattern.relabel(list(perm))
        masks = tuple(relabelled.adj_mask(v) for v in range(k))
        if best is None or masks < best:
            best = masks
    assert best is not None
    return best


def _induced_signature(graph: CSRGraph, vertices: tuple[int, ...]) -> tuple[int, ...]:
    k = len(vertices)
    return _canonical_signature(
        Pattern(
            k,
            [
                (i, j)
                for i in range(k)
                for j in range(i + 1, k)
                if graph.has_edge(vertices[i], vertices[j])
            ],
        )
    )


def _esu(
    graph: CSRGraph,
    k: int,
    visit: Callable[[tuple[int, ...]], None],
    stats: ObliviousStats,
) -> None:
    """Enumerate every connected k-vertex set exactly once (ESU)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.num_vertices
    if k == 1:
        for v in range(n):
            stats.embeddings_materialized += 1
            visit((v,))
        return

    neighbors = [set(int(u) for u in graph.neighbors(v)) for v in range(n)]

    def extend(sub: tuple[int, ...], ext: set[int], root: int) -> None:
        if len(sub) == k:
            stats.embeddings_materialized += 1
            visit(sub)
            return
        # Process candidates in sorted order: `set.pop()` removes an
        # *arbitrary* element, which made the visit sequence an accident
        # of hash-table layout (DET003).  The ESU guarantee (every
        # connected k-set exactly once) holds for any processing order,
        # so sorting pins the enumeration order without changing counts.
        pending = sorted(ext)
        for idx, w in enumerate(pending):
            # Exclusive neighbors: adjacent to w, greater than root, not
            # already adjacent to (or in) the current subgraph.
            excl = {
                u
                for u in neighbors[w]
                if u > root
                and u not in sub
                and all(u not in neighbors[s] and u != s for s in sub)
            }
            extend(sub + (w,), set(pending[idx + 1:]) | excl, root)

    for root in range(n):
        stats.embeddings_materialized += 1  # the size-1 embedding
        ext = {u for u in neighbors[root] if u > root}
        extend((root,), ext, root)


def count_oblivious(
    graph: CSRGraph, pattern: Pattern, *, stats: ObliviousStats | None = None
) -> int:
    """Count vertex-induced instances the pattern-oblivious way.

    Every connected set of the pattern's size is materialized and
    isomorphism-checked against the target — no pattern knowledge guides
    the search (that is the point).
    """
    if not pattern.is_connected():
        raise ValueError("pattern-oblivious mining needs a connected pattern")
    stats = stats if stats is not None else ObliviousStats()
    target = _canonical_signature(pattern)
    total = 0

    def visit(vertices: tuple[int, ...]) -> None:
        nonlocal total
        stats.isomorphism_checks += 1
        if _induced_signature(graph, vertices) == target:
            total += 1

    _esu(graph, pattern.num_vertices, visit, stats)
    stats.matches = total
    return total


def census_oblivious(
    graph: CSRGraph, k: int, *, stats: ObliviousStats | None = None
) -> dict[tuple[int, ...], int]:
    """Full k-census the pattern-oblivious way (one enumeration pass,
    classify every connected k-set by canonical signature)."""
    stats = stats if stats is not None else ObliviousStats()
    out: dict[tuple[int, ...], int] = {}

    def visit(vertices: tuple[int, ...]) -> None:
        stats.isomorphism_checks += 1
        sig = _induced_signature(graph, vertices)
        out[sig] = out.get(sig, 0) + 1

    _esu(graph, k, visit, stats)
    return out
