"""Plan executors — the functional reference for all simulators.

Counting runs on one of two execution models, selected by
``KernelPolicy(engine=...)`` (docs/KERNELS.md, "Frontier engine"):

``"frontier"`` (default)
    Breadth-batched: every level's partial embeddings are materialized
    as one struct-of-arrays frontier and the level's schedule runs as
    segmented batch set ops (:mod:`repro.mining.frontier`).  Memory is
    bounded by the policy's spill budget.
``"recursive"``
    The oracle path, following paper Figure 2 exactly: nested loops over
    candidate sets, with the set-operation schedules materialized
    incrementally and reused across the subtree.

Both engines count identically — the agreement suite drives all 11
patterns × both semantics × every policy against each other.  Listing
jobs always use the recursive enumerator (they materialize every
embedding regardless, so breadth batching buys nothing).

Two performance layers sit inside the recursive model, neither of which
changes any count (docs/KERNELS.md):

* every set op dispatches through the size-adaptive kernel layer
  (:class:`repro.setops.kernels.KernelContext`) — merge, gallop, or
  hub-bitmap kernels chosen per operand shape, all bit-identical;
* counting jobs take a **vectorized penultimate-level path**: instead of
  recursing once per child at level ``k - 2`` (the dominant loop for
  triangle/clique plans), all children's final candidate counts are
  computed in one pass over the CSR slices, with the symmetry-breaking
  lower bounds applied through a single vectorized ``searchsorted``
  (:class:`_PenultimateBatcher`).  ``KernelPolicy(batch_penultimate=
  False)`` restores the per-child recursion for oracle comparisons.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.mining.frontier import FrontierEngine
from repro.pattern.multipattern import MultiPlan
from repro.pattern.plan import ExecutionPlan, LevelChain, OpKind, SetOp
from repro.setops.kernels import (
    DEFAULT_POLICY,
    KernelContext,
    KernelPolicy,
    _tally,
)
from repro.setops.merge import exclude_values, lower_bound_filter

__all__ = [
    "count_embeddings",
    "list_embeddings",
    "count_multi",
    "per_root_counts",
    "filtered_candidates",
]


def filtered_candidates(
    plan: ExecutionPlan,
    level: int,
    candidates: np.ndarray,
    embedding: Sequence[int],
) -> np.ndarray:
    """Apply symmetry-breaking and injectivity filters for ``level``.

    All synthesized restrictions are lower bounds, so symmetry breaking is
    one binary search; injectivity only needs to drop ancestors that are
    non-adjacent to ``level`` in the pattern (adjacent ones can never
    appear in their own neighbor list).
    """
    bounds = plan.lower_bound_levels(level)
    if bounds:
        candidates = lower_bound_filter(
            candidates, max(embedding[b] for b in bounds)
        )
    excludes = [
        embedding[d] for d in plan.exclude_levels(level) if d < len(embedding)
    ]
    if excludes:
        candidates = exclude_values(candidates, excludes)
    return candidates


def _iter_roots(graph: CSRGraph, roots: Iterable[int] | None) -> Iterable[int]:
    if roots is None:
        return range(graph.num_vertices)
    return roots


def _member(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Boolean membership of ``values`` elements in sorted ``table``."""
    if table.size == 0:
        return np.zeros(values.size, dtype=bool)
    idx = np.searchsorted(table, values)
    idx[idx == table.size] = 0
    return table[idx] == values


class _PenultimateBatcher:
    """Vectorized counting of all level-``k-1`` candidates per subtree.

    At level ``k - 2`` the plain recursion appends each child ``v``,
    runs the level's schedule (whose only child-dependent operand is
    ``N(v)``), filters, and adds the final candidate count.  Because
    intersections and subtractions with *fixed* (ancestor) operands
    commute with the single ``N(v)`` op, the child-independent part of
    the schedule can be hoisted out of the loop and the per-child counts
    reduce to one pass over the children's CSR slices:

    * ``N(v)``-side predicates (membership in the hoisted source set,
      fixed-operand masks, the per-child lower bound, injectivity
      excludes) evaluate on the concatenated neighbor slices;
    * for subtraction-shaped schedules the surviving-count per child is
      ``|S'| - searchsorted(S', lb_v)`` — one vectorized
      ``searchsorted`` over all children — minus the matching slice
      probes.

    Eligibility is the plan compiler's chain analysis
    (:meth:`repro.pattern.plan.ExecutionPlan.chain_info`): ``build``
    returns ``None`` unless the penultimate schedule is a linear chain
    with exactly one child-dependent op, and the engine then falls back
    to recursion.  The batcher produces exactly the counts the recursion
    produces.
    """

    def __init__(
        self,
        graph: CSRGraph,
        plan: ExecutionPlan,
        ctx: KernelContext,
        chain: LevelChain,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.ctx = ctx
        k = plan.num_levels
        self.ops = plan.levels[k - 2].ops
        self.v_idx = chain.child_op_index
        self.mode = chain.mode
        bounds = plan.lower_bound_levels(k - 1)
        self.fixed_bounds = tuple(b for b in bounds if b < k - 2)
        self.self_bound = (k - 2) in bounds
        excludes = plan.exclude_levels(k - 1)
        self.fixed_excludes = tuple(d for d in excludes if d < k - 2)
        self.self_exclude = (k - 2) in excludes

    @staticmethod
    def build(
        graph: CSRGraph, plan: ExecutionPlan, ctx: KernelContext
    ) -> "_PenultimateBatcher | None":
        if not ctx.policy.batch_penultimate or plan.num_levels < 3:
            return None
        chain = plan.chain_info(plan.num_levels - 2)
        if not chain.batchable:
            return None
        return _PenultimateBatcher(graph, plan, ctx, chain)

    def count(
        self,
        cand: np.ndarray,
        embedding: Sequence[int],
        states: dict[int, np.ndarray],
    ) -> int:
        """Total level-``k-1`` candidates over all children in ``cand``."""
        if cand.size == 0:
            return 0
        _tally("batch/invocations")
        _tally("batch/children", int(cand.size))
        graph = self.graph

        # Hoist the child-independent ops: run the chain once with the
        # N(v) op replaced by a pass-through (legal because fixed-operand
        # intersections/subtractions commute with it).  ``mask_ops`` are
        # the fixed ops downstream of an INIT_COPY N(v), which become
        # per-element predicates instead.
        local: dict[int, np.ndarray] = {}
        mask_ops: list[tuple[OpKind, np.ndarray]] = []
        for i, op in enumerate(self.ops):
            operand_vertex = embedding[op.operand_level] if i != self.v_idx else None
            if i == self.v_idx:
                if op.source_state is not None:
                    src = local.get(op.source_state)
                    if src is None:
                        src = states[op.source_state]
                    local[op.result_state] = src
                continue
            operand = graph.neighbors(operand_vertex)
            if self.mode == "copy":
                mask_ops.append((op.kind, operand))
                continue
            src = None
            if op.source_state is not None:
                src = local.get(op.source_state)
                if src is None:
                    src = states[op.source_state]
            local[op.result_state] = self.ctx.apply_op(
                op.kind, src, operand, vertex=operand_vertex
            )

        # Per-child symmetry-breaking lower bound (exclusive).
        lb_fixed = (
            max(embedding[b] for b in self.fixed_bounds)
            if self.fixed_bounds
            else -1
        )
        lbs = np.maximum(cand, np.int32(lb_fixed)) if self.self_bound else None
        excl_ids = [embedding[d] for d in self.fixed_excludes]

        # Concatenate the children's neighbor slices (one gather).
        indptr, indices = graph.indptr, graph.indices
        starts = indptr[cand]
        lens = indptr[cand + 1] - starts
        total = int(lens.sum())
        if total:
            flat_ends = np.cumsum(lens)
            flat_starts = flat_ends - lens
            pos = (
                np.arange(total, dtype=np.int64)
                - np.repeat(flat_starts, lens)
                + np.repeat(starts, lens)
            )
            flat = indices[pos]
        else:
            flat = indices[:0]

        if self.mode in ("copy", "intersect"):
            if total == 0:
                return 0
            if self.mode == "intersect":
                s_prime = local[self.ops[-1].result_state]
                keep = _member(flat, s_prime)
            else:
                keep = np.ones(total, dtype=bool)
                for kind, operand in mask_ops:
                    hit = _member(flat, operand)
                    keep &= hit if kind is OpKind.INTERSECT else ~hit
            if lbs is not None:
                keep &= flat > np.repeat(lbs, lens)
            elif lb_fixed >= 0:
                keep &= flat > lb_fixed
            for e in excl_ids:
                keep &= flat != e
            # ``flat == v`` for the slice's own child cannot happen (no
            # self loops), so the k-2 injectivity exclude is free here.
            return int(np.count_nonzero(keep))

        # Subtraction-shaped schedule: extend = S' − N(v).  Count the
        # bound-surviving suffix of S' per child (single vectorized
        # searchsorted over all children), then remove the elements that
        # the slice probes show are in N(v), plus the injectivity hits.
        s_prime = local[self.ops[-1].result_state]
        if s_prime.size == 0:
            return 0
        if lbs is not None:
            le = np.searchsorted(s_prime, lbs, side="right")
            first = int(cand.size) * int(s_prime.size) - int(le.sum())
        elif lb_fixed >= 0:
            le_scalar = int(np.searchsorted(s_prime, lb_fixed, side="right"))
            first = int(cand.size) * (int(s_prime.size) - le_scalar)
        else:
            first = int(cand.size) * int(s_prime.size)
        removed = 0
        for e in excl_ids:
            i = int(np.searchsorted(s_prime, e))
            if i < s_prime.size and int(s_prime[i]) == e:
                if lbs is not None:
                    removed += int(np.count_nonzero(e > lbs))
                elif e > lb_fixed:
                    removed += int(cand.size)
        if self.self_exclude:
            hit_self = _member(cand, s_prime)
            if lbs is not None:
                hit_self &= cand > lbs  # never true; bounds dominate
            elif lb_fixed >= 0:
                hit_self &= cand > lb_fixed
            removed += int(np.count_nonzero(hit_self))
        if total:
            probe = _member(flat, s_prime)
            if lbs is not None:
                probe &= flat > np.repeat(lbs, lens)
            elif lb_fixed >= 0:
                probe &= flat > lb_fixed
            for e in excl_ids:
                probe &= flat != e
            removed += int(np.count_nonzero(probe))
        return first - removed


class _RecursiveRunner:
    """The per-embedding oracle executor, reusable across roots.

    One instance holds the kernel context, the penultimate batcher, and
    the mutable embedding/state scratch, so multi-pattern counting can
    drive many roots (and inject precomputed level-0 trunk states)
    without re-running eligibility analysis per root.
    """

    def __init__(
        self, graph: CSRGraph, plan: ExecutionPlan, ctx: KernelContext
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.ctx = ctx
        self.k = plan.num_levels
        self.batcher = _PenultimateBatcher.build(graph, plan, ctx)
        self.states: dict[int, np.ndarray] = {}
        self.embedding: list[int] = []
        self._preset: Mapping[int, np.ndarray] | None = None

    def count_root(
        self,
        root: int,
        preset: Mapping[int, np.ndarray] | None = None,
    ) -> int:
        """Embedding count of one search tree.

        ``preset`` maps level-0 result-state ids to already-computed
        values for this root (the multi-pattern shared trunk); matching
        level-0 ops are skipped instead of re-executed.
        """
        if self.k == 1:
            return 1
        self._preset = preset
        self.embedding.append(int(root))
        try:
            return self._explore(0)
        finally:
            self.embedding.pop()
            self._preset = None

    def _explore(self, level: int) -> int:
        # ``u_level`` was just appended to ``embedding``; run the level's
        # schedule and extend (or count) the next level.
        plan = self.plan
        states = self.states
        embedding = self.embedding
        sched = plan.levels[level]
        preset = self._preset if level == 0 else None
        for op in sched.ops:
            if preset is not None and op.result_state in preset:
                states[op.result_state] = preset[op.result_state]
                continue
            vertex = embedding[op.operand_level]
            operand = self.graph.neighbors(vertex)
            source = (
                states[op.source_state] if op.source_state is not None else None
            )
            states[op.result_state] = self.ctx.apply_op(
                op.kind, source, operand, vertex=vertex
            )
        nxt = level + 1
        cand = filtered_candidates(
            plan, nxt, states[sched.extend_state], embedding
        )
        if nxt == self.k - 1:
            return int(cand.size)
        if nxt == self.k - 2 and self.batcher is not None:
            return self.batcher.count(cand, embedding, states)
        subtotal = 0
        for v in cand:
            embedding.append(int(v))
            subtotal += self._explore(nxt)
            embedding.pop()
        return subtotal


def count_embeddings(
    graph: CSRGraph,
    plan: ExecutionPlan,
    *,
    roots: Iterable[int] | None = None,
    jobs: int | None = None,
    kernels: KernelPolicy | None = None,
) -> int:
    """Number of embeddings of the plan's pattern in ``graph``.

    With the plan's symmetry-breaking restrictions each automorphism class
    is counted exactly once, i.e. the result is the number of distinct
    pattern *instances* (for a triangle plan: the triangle count).

    ``roots`` limits the search to trees rooted at the given level-0
    vertices (used for sampled simulation); default is every vertex.

    ``jobs`` shards the roots across that many worker processes
    (``repro.parallel``); the total is identical for every value since
    per-root counts merge by addition.

    ``kernels`` selects the execution engine and tunes the set-operation
    dispatch layer for this run (docs/KERNELS.md); every policy returns
    the identical count.  The policy is forwarded to sharded workers.
    """
    total = 0
    for root, sub in per_root_counts(
        graph, plan, roots=roots, jobs=jobs, kernels=kernels
    ):
        total += sub
    return total


def per_root_counts(
    graph: CSRGraph,
    plan: ExecutionPlan,
    *,
    roots: Iterable[int] | None = None,
    jobs: int | None = None,
    kernels: KernelPolicy | None = None,
) -> Iterator[tuple[int, int]]:
    """Yield ``(root, count)`` per search tree — the unit of coarse-grained
    parallelism the accelerators schedule across PEs.

    The frontier engine (the default policy) batches the whole root list
    through one breadth-first frontier and yields the per-root vector;
    ``KernelPolicy(engine="recursive")`` walks one root at a time.  Both
    yield identical pairs in identical order.

    With ``jobs`` the pairs are computed on worker processes — each
    worker batches its whole contiguous root chunk through one frontier
    — and yielded in the same serial root order.

    ``KernelPolicy(tuned=True)`` resolves the plan and policy through
    the auto-tuner here, *before* the sharded fan-out — workers receive
    already-concrete arguments.  The resolved configuration is verified
    bit-identical (per-root sequences included) at trial time, so the
    yielded pairs match the untuned run exactly (docs/TUNING.md).
    """
    if kernels is not None and kernels.tuned:
        from repro.tuning import resolve_run

        plan, kernels = resolve_run(graph, plan, kernels)
    if jobs is not None and jobs > 1:
        from repro.core.sharded import per_root_counts_parallel

        yield from per_root_counts_parallel(
            graph, plan, roots, jobs, kernels=kernels
        )
        return
    k = plan.num_levels
    if k == 1:
        for root in _iter_roots(graph, roots):
            yield int(root), 1
        return
    policy = kernels if kernels is not None else DEFAULT_POLICY
    root_list = [int(r) for r in _iter_roots(graph, roots)]
    if policy.engine == "frontier":
        counts = FrontierEngine(graph, plan, policy).per_root_counts(root_list)
        for root, count in zip(root_list, counts):
            yield root, int(count)
        return
    runner = _RecursiveRunner(graph, plan, KernelContext(graph, kernels))
    for root in root_list:
        yield root, runner.count_root(root)


def list_embeddings(
    graph: CSRGraph,
    plan: ExecutionPlan,
    *,
    roots: Iterable[int] | None = None,
    limit: int | None = None,
    jobs: int | None = None,
    kernels: KernelPolicy | None = None,
) -> list[tuple[int, ...]]:
    """All embeddings as level-ordered vertex tuples (one per class).

    ``limit`` truncates the enumeration once that many embeddings were
    produced (useful on dense graphs).

    ``jobs`` shards the roots across worker processes; chunks are
    contiguous in root order, so the merged list (and ``limit``
    truncation applied after the merge) equals the serial list exactly.

    Listing materializes every embedding, so both the frontier engine
    and the penultimate batch counter stand aside — enumeration always
    recurses; the adaptive kernels still apply.  ``tuned=True`` policies
    fall back to their base fields here: embeddings are level-ordered
    tuples, so a tuned plan swap would reorder every tuple.
    """
    if kernels is not None and kernels.tuned:
        from dataclasses import replace as _replace

        kernels = _replace(kernels, tuned=False)
    if jobs is not None and jobs > 1:
        from repro.core.sharded import list_embeddings_parallel

        return list_embeddings_parallel(
            graph, plan, roots, limit, jobs, kernels=kernels
        )
    k = plan.num_levels
    out: list[tuple[int, ...]] = []
    if k == 1:
        for root in _iter_roots(graph, roots):
            out.append((int(root),))
            if limit is not None and len(out) >= limit:
                break
        return out
    ctx = KernelContext(graph, kernels)
    states: dict[int, np.ndarray] = {}
    embedding: list[int] = []

    def explore(level: int) -> bool:
        sched = plan.levels[level]
        for op in sched.ops:
            vertex = embedding[op.operand_level]
            operand = graph.neighbors(vertex)
            source = (
                states[op.source_state] if op.source_state is not None else None
            )
            states[op.result_state] = ctx.apply_op(
                op.kind, source, operand, vertex=vertex
            )
        nxt = level + 1
        cand = filtered_candidates(
            plan, nxt, states[sched.extend_state], embedding
        )
        if nxt == k - 1:
            for v in cand:
                out.append(tuple(embedding) + (int(v),))
                if limit is not None and len(out) >= limit:
                    return True
            return False
        for v in cand:
            embedding.append(int(v))
            stop = explore(nxt)
            embedding.pop()
            if stop:
                return True
        return False

    for root in _iter_roots(graph, roots):
        embedding.append(int(root))
        stop = explore(0)
        embedding.pop()
        if stop:
            break
    return out


def _shared_level0_ops(plans: Sequence[ExecutionPlan]) -> list[SetOp]:
    """The deduplicated level-0 trunk of a multi-plan, in dependency
    order: each unified result state's op appears once, the first time
    any plan schedules it (identical state ids have identical op
    histories, so first-wins is exact)."""
    seen: set[int] = set()
    trunk: list[SetOp] = []
    for plan in plans:
        if plan.num_levels < 2:
            continue
        for op in plan.levels[0].ops:
            if op.result_state not in seen:
                seen.add(op.result_state)
                trunk.append(op)
    return trunk


def count_multi(
    graph: CSRGraph,
    multi: MultiPlan,
    *,
    roots: Iterable[int] | None = None,
    jobs: int | None = None,
    kernels: KernelPolicy | None = None,
) -> dict[str, int]:
    """Counts for every pattern of a multi-pattern plan in one pass.

    Plans share the root's level-0 states via the unified state
    namespace (the merged trunk of paper section 4):
    :func:`repro.pattern.multipattern.compile_multi_plan` gives ops with
    identical histories identical state ids, so each distinct level-0
    result is computed **once per root** (recursive engine) or **once
    per root frontier** (frontier engine) and reused by every plan that
    schedules it.  ``jobs`` shards the roots — each worker runs this
    shared-trunk path on its chunk; ``kernels`` selects the engine and
    dispatch policy.  Totals are bit-identical to counting each plan
    independently.
    """
    if kernels is not None and kernels.tuned:
        # Multi-pattern trunks share level-0 states across plans; a
        # per-plan order swap would break the merge, so tuning does not
        # apply here — run with the concrete base policy instead.
        from dataclasses import replace as _replace

        kernels = _replace(kernels, tuned=False)
    if jobs is not None and jobs > 1:
        from repro.core.sharded import count_multi_parallel

        return count_multi_parallel(graph, multi, roots, jobs, kernels=kernels)
    root_list = [int(r) for r in _iter_roots(graph, roots)]
    policy = kernels if kernels is not None else DEFAULT_POLICY
    totals = {name: 0 for name in multi.names}
    if policy.engine == "frontier":
        shared: dict[int, object] = {}
        for name, plan in zip(multi.names, multi.plans):
            if plan.num_levels == 1:
                totals[name] += len(root_list)
                continue
            engine = FrontierEngine(graph, plan, policy)
            counts = engine.per_root_counts(root_list, shared_level0=shared)
            totals[name] += int(counts.sum())
        return totals
    ctx = KernelContext(graph, kernels)
    runners = {
        name: _RecursiveRunner(graph, plan, ctx)
        for name, plan in zip(multi.names, multi.plans)
        if plan.num_levels >= 2
    }
    for name, plan in zip(multi.names, multi.plans):
        if plan.num_levels == 1:
            totals[name] += len(root_list)
    trunk = _shared_level0_ops(multi.plans)
    for root in root_list:
        preset: dict[int, np.ndarray] = {}
        operand = graph.neighbors(root)
        for op in trunk:
            source = (
                preset[op.source_state]
                if op.source_state is not None
                else None
            )
            preset[op.result_state] = ctx.apply_op(
                op.kind, source, operand, vertex=root
            )
        for name, runner in runners.items():
            totals[name] += runner.count_root(root, preset)
    return totals
