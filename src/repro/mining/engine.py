"""Recursive plan executor — the functional reference for all simulators.

Follows paper Figure 2 exactly: nested loops over candidate sets, with the
set-operation schedules materialized incrementally and reused across the
subtree.  Counting jobs never enumerate the last level; the final
candidate-set length is added directly (the standard pattern-aware
optimization, also what the accelerators do).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.pattern.multipattern import MultiPlan
from repro.pattern.plan import ExecutionPlan
from repro.setops.merge import apply_op, exclude_values, lower_bound_filter

__all__ = [
    "count_embeddings",
    "list_embeddings",
    "count_multi",
    "per_root_counts",
    "filtered_candidates",
]


def filtered_candidates(
    plan: ExecutionPlan,
    level: int,
    candidates: np.ndarray,
    embedding: Sequence[int],
) -> np.ndarray:
    """Apply symmetry-breaking and injectivity filters for ``level``.

    All synthesized restrictions are lower bounds, so symmetry breaking is
    one binary search; injectivity only needs to drop ancestors that are
    non-adjacent to ``level`` in the pattern (adjacent ones can never
    appear in their own neighbor list).
    """
    bounds = plan.lower_bound_levels(level)
    if bounds:
        candidates = lower_bound_filter(
            candidates, max(embedding[b] for b in bounds)
        )
    excludes = [
        embedding[d] for d in plan.exclude_levels(level) if d < len(embedding)
    ]
    if excludes:
        candidates = exclude_values(candidates, excludes)
    return candidates


def _iter_roots(graph: CSRGraph, roots: Iterable[int] | None) -> Iterable[int]:
    if roots is None:
        return range(graph.num_vertices)
    return roots


def count_embeddings(
    graph: CSRGraph,
    plan: ExecutionPlan,
    *,
    roots: Iterable[int] | None = None,
    jobs: int | None = None,
) -> int:
    """Number of embeddings of the plan's pattern in ``graph``.

    With the plan's symmetry-breaking restrictions each automorphism class
    is counted exactly once, i.e. the result is the number of distinct
    pattern *instances* (for a triangle plan: the triangle count).

    ``roots`` limits the search to trees rooted at the given level-0
    vertices (used for sampled simulation); default is every vertex.

    ``jobs`` shards the roots across that many worker processes
    (``repro.parallel``); the total is identical for every value since
    per-root counts merge by addition.
    """
    total = 0
    for root, sub in per_root_counts(graph, plan, roots=roots, jobs=jobs):
        total += sub
    return total


def per_root_counts(
    graph: CSRGraph,
    plan: ExecutionPlan,
    *,
    roots: Iterable[int] | None = None,
    jobs: int | None = None,
) -> Iterator[tuple[int, int]]:
    """Yield ``(root, count)`` per search tree — the unit of coarse-grained
    parallelism the accelerators schedule across PEs.

    With ``jobs`` the pairs are computed on worker processes but yielded
    in the same serial root order (contiguous chunks, concatenated).
    """
    if jobs is not None and jobs > 1:
        from repro.core.sharded import per_root_counts_parallel

        yield from per_root_counts_parallel(graph, plan, roots, jobs)
        return
    k = plan.num_levels
    if k == 1:
        for root in _iter_roots(graph, roots):
            yield root, 1
        return
    states: dict[int, np.ndarray] = {}
    embedding: list[int] = []

    def explore(level: int) -> int:
        # ``u_level`` was just appended to ``embedding``; run the level's
        # schedule and extend (or count) the next level.
        sched = plan.levels[level]
        for op in sched.ops:
            operand = graph.neighbors(embedding[op.operand_level])
            source = (
                states[op.source_state] if op.source_state is not None else None
            )
            states[op.result_state] = apply_op(op.kind, source, operand)
        nxt = level + 1
        cand = filtered_candidates(
            plan, nxt, states[sched.extend_state], embedding
        )
        if nxt == k - 1:
            return int(cand.size)
        subtotal = 0
        for v in cand:
            embedding.append(int(v))
            subtotal += explore(nxt)
            embedding.pop()
        return subtotal

    for root in _iter_roots(graph, roots):
        embedding.append(int(root))
        yield int(root), explore(0)
        embedding.pop()


def list_embeddings(
    graph: CSRGraph,
    plan: ExecutionPlan,
    *,
    roots: Iterable[int] | None = None,
    limit: int | None = None,
    jobs: int | None = None,
) -> list[tuple[int, ...]]:
    """All embeddings as level-ordered vertex tuples (one per class).

    ``limit`` truncates the enumeration once that many embeddings were
    produced (useful on dense graphs).

    ``jobs`` shards the roots across worker processes; chunks are
    contiguous in root order, so the merged list (and ``limit``
    truncation applied after the merge) equals the serial list exactly.
    """
    if jobs is not None and jobs > 1:
        from repro.core.sharded import list_embeddings_parallel

        return list_embeddings_parallel(graph, plan, roots, limit, jobs)
    k = plan.num_levels
    out: list[tuple[int, ...]] = []
    if k == 1:
        for root in _iter_roots(graph, roots):
            out.append((int(root),))
            if limit is not None and len(out) >= limit:
                break
        return out
    states: dict[int, np.ndarray] = {}
    embedding: list[int] = []

    def explore(level: int) -> bool:
        sched = plan.levels[level]
        for op in sched.ops:
            operand = graph.neighbors(embedding[op.operand_level])
            source = (
                states[op.source_state] if op.source_state is not None else None
            )
            states[op.result_state] = apply_op(op.kind, source, operand)
        nxt = level + 1
        cand = filtered_candidates(
            plan, nxt, states[sched.extend_state], embedding
        )
        if nxt == k - 1:
            for v in cand:
                out.append(tuple(embedding) + (int(v),))
                if limit is not None and len(out) >= limit:
                    return True
            return False
        for v in cand:
            embedding.append(int(v))
            stop = explore(nxt)
            embedding.pop()
            if stop:
                return True
        return False

    for root in _iter_roots(graph, roots):
        embedding.append(int(root))
        stop = explore(0)
        embedding.pop()
        if stop:
            break
    return out


def count_multi(
    graph: CSRGraph,
    multi: MultiPlan,
    *,
    roots: Iterable[int] | None = None,
    jobs: int | None = None,
) -> dict[str, int]:
    """Counts for every pattern of a multi-pattern plan in one pass.

    Processes each root once; plans share the root's level-0 states via
    the unified state namespace (the merged trunk of paper section 4).
    ``jobs`` is forwarded to each per-plan count.
    """
    root_list = list(roots) if roots is not None else None
    totals = {name: 0 for name in multi.names}
    for name, plan in zip(multi.names, multi.plans):
        totals[name] += count_embeddings(graph, plan, roots=root_list, jobs=jobs)
    return totals
