"""Frontier-at-a-time plan executor (the breadth-batched engine).

The recursive reference engine (:mod:`repro.mining.engine`) walks the
search tree one embedding at a time; every Python-level recursion step
costs more than the NumPy set op it wraps.  This module executes the
same :class:`~repro.pattern.plan.ExecutionPlan` IR *breadth-first*: all
partial embeddings of one level live in a single struct-of-arrays
**frontier**, and each level's schedule runs as segmented batch set
operations over the whole frontier at once
(:mod:`repro.setops.segmented`) — the generalization of the penultimate
batcher to every interior level, following the GPU extension-strategy
playbook (DuMato, G2Miner) cited in PAPERS.md.

Frontier layout
---------------
A level-``L`` frontier holds one row per partial embedding
``(u_0 .. u_L)``:

* ``cols`` — ``L + 1`` int32 columns; ``cols[d][r]`` is row ``r``'s
  level-``d`` vertex;
* ``root_rows`` — int64 positions into the run's root list (for the
  per-root count vector; multiple rows share a root);
* ``states`` — plan state id → ``(SegmentedSet, sel)``.  ``sel`` is a
  lazy row map: a state produced on an ancestor frontier is *not*
  re-materialized when the frontier expands — consumers gather through
  ``sel`` on demand (and the gathered form is memoized).  This keeps an
  expansion from copying every carried candidate set ``fanout`` times.

Execution
---------
Per level: run the schedule's ops segmented, filter the extension set
with vectorized symmetry-breaking lower bounds and injectivity excludes,
then either count (last level: per-row lengths; penultimate level of a
chain-shaped schedule: the fused terminal probe, the batcher's
hoisted-op trick applied across the whole frontier) or expand to the
next level.  Expansion and the fused probe are **memory-bounded**: when
the materialized result would exceed ``KernelPolicy.
frontier_budget_bytes``, the frontier is processed in contiguous row
chunks — identical counts for every budget, only peak memory changes
(docs/KERNELS.md, "Frontier engine").

Everything here is functional-only: counts are bit-identical to the
recursive oracle for every policy, and dispatch decisions are pure
functions of sizes/policy so sanitized double runs trace identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, MutableMapping

import numpy as np

from repro.graph.csr import CSRGraph
from repro.pattern.plan import ExecutionPlan, OpKind
from repro.setops import segmented as sg
from repro.setops.kernels import DEFAULT_POLICY, KernelPolicy, _tally

__all__ = ["FrontierEngine", "frontier_per_root_counts"]

#: Working-set estimate per element of a fused terminal probe (value,
#: owner, row id, membership keys and mask, slack).
_FLAT_BYTES = 40


@dataclass
class _State:
    """One carried plan state: the segmented values plus the lazy row
    map from current frontier rows into ``seg`` rows (``None`` =
    identity, i.e. produced on this frontier)."""

    seg: sg.SegmentedSet
    sel: np.ndarray | None


def _chunk_ranges(weights: np.ndarray, budget: int) -> list[tuple[int, int]]:
    """Contiguous index ranges whose weight sums stay near ``budget``.

    Greedy left-to-right cut; every range gets at least one index, so a
    single over-budget row still executes (its own memory is
    irreducible).  Pure in (weights, budget) — chunking never reads
    runtime state, keeping spill decisions deterministic.
    """
    n = int(weights.size)
    if n == 0:
        return []
    cum = np.cumsum(weights, dtype=np.int64)
    if int(cum[-1]) <= budget:
        return [(0, n)]
    ranges = []
    pos = 0
    base = 0
    while pos < n:
        nxt = int(np.searchsorted(cum, base + budget, side="right"))
        nxt = min(max(nxt, pos + 1), n)
        ranges.append((pos, nxt))
        base = int(cum[nxt - 1])
        pos = nxt
    return ranges


class FrontierEngine:
    """Breadth-batched counting executor for one (graph, plan, policy).

    Build once, then :meth:`per_root_counts` any number of root lists.
    Counting only — listing materializes every embedding anyway, so the
    recursive enumerator keeps that job (docs/KERNELS.md).
    """

    def __init__(
        self,
        graph: CSRGraph,
        plan: ExecutionPlan,
        policy: KernelPolicy | None = None,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.policy = policy if policy is not None else DEFAULT_POLICY
        k = plan.num_levels
        self.k = k
        # States consumed strictly after each level — the only ones an
        # expansion must carry forward.
        consumed: list[set[int]] = []
        for sched in plan.levels:
            used = {
                op.source_state
                for op in sched.ops
                if op.source_state is not None
            }
            if sched.extend_state is not None:
                used.add(sched.extend_state)
            consumed.append(used)
        self.carry_after: list[tuple[int, ...]] = []
        for level in range(len(plan.levels)):
            later: set[int] = set()
            for upper in consumed[level + 1 :]:
                later |= upper
            self.carry_after.append(tuple(sorted(later)))
        # Fused terminal level: chain-shaped penultimate schedules count
        # all grandchildren in one probe pass, like the recursive
        # engine's batcher (same policy knob).
        self.terminal = None
        if k >= 3 and self.policy.batch_penultimate:
            info = plan.chain_info(k - 2)
            if info.batchable:
                self.terminal = info

    # ------------------------------------------------------------------

    def per_root_counts(
        self,
        roots: Iterable[int],
        *,
        shared_level0: MutableMapping[int, sg.SegmentedSet] | None = None,
    ) -> np.ndarray:
        """Embedding count per root, aligned with the given root order.

        ``shared_level0`` is the multi-pattern trunk (paper section 4's
        merged level-0 states): a mutable mapping of unified state id →
        level-0 result over *the same root list*.  Ops whose result id
        is present are reused instead of re-executed; newly computed
        level-0 results are published into it.
        """
        roots_arr = np.asarray(list(roots), dtype=np.int32)
        counts = np.zeros(roots_arr.size, dtype=np.int64)
        if roots_arr.size == 0:
            return counts
        if self.k == 1:
            counts[:] = 1
            return counts
        self._counts = counts
        self._shared = shared_level0
        _tally("frontier/runs")
        self._advance(
            [roots_arr],
            np.arange(roots_arr.size, dtype=np.int64),
            {},
            0,
        )
        self._shared = None
        return counts

    # ------------------------------------------------------------------

    def _materialize(
        self, states: MutableMapping[int, _State], sid: int
    ) -> sg.SegmentedSet:
        """A state's values at the current frontier's segmentation
        (gathered through the lazy row map once, then memoized)."""
        st = states[sid]
        if st.sel is None:
            return st.seg
        seg = st.seg.take_rows(st.sel)
        states[sid] = _State(seg, None)
        return seg

    def _filtered(
        self,
        cand: sg.SegmentedSet,
        nxt: int,
        cols: list[np.ndarray],
    ) -> sg.SegmentedSet:
        """Symmetry-breaking and injectivity filters for level ``nxt``,
        vectorized over the whole frontier (the segmented analog of
        :func:`repro.mining.engine.filtered_candidates`)."""
        lens = cand.lengths
        keep: np.ndarray | None = None
        bounds = self.plan.lower_bound_levels(nxt)
        if bounds:
            bound = cols[bounds[0]]
            for b in bounds[1:]:
                bound = np.maximum(bound, cols[b])
            keep = cand.values > np.repeat(bound, lens)
        for d in self.plan.exclude_levels(nxt):
            mask = cand.values != np.repeat(cols[d], lens)
            keep = mask if keep is None else keep & mask
        if keep is None:
            return cand
        return sg.compress(cand, keep)

    def _advance(
        self,
        cols: list[np.ndarray],
        root_rows: np.ndarray,
        states: MutableMapping[int, _State],
        level: int,
    ) -> None:
        graph, plan, policy = self.graph, self.plan, self.policy
        sched = plan.levels[level]
        shared = self._shared if level == 0 else None
        for op in sched.ops:
            if shared is not None and op.result_state in shared:
                states[op.result_state] = _State(shared[op.result_state], None)
                continue
            verts = cols[op.operand_level]
            if op.kind is OpKind.INIT_COPY:
                seg = sg.gather_neighbors(graph, verts)
            else:
                src = self._materialize(states, op.source_state)
                if op.kind is OpKind.INTERSECT:
                    seg = sg.intersect_neighbors(src, graph, verts, policy)
                else:
                    seg = sg.subtract_neighbors(src, graph, verts, policy)
            states[op.result_state] = _State(seg, None)
            if shared is not None:
                shared[op.result_state] = seg
        nxt = level + 1
        cand = self._filtered(
            self._materialize(states, sched.extend_state), nxt, cols
        )
        if nxt == self.k - 1:
            # Last level: candidates are counted, never enumerated.
            np.add.at(self._counts, root_rows, cand.lengths)
            return
        if nxt == self.k - 2 and self.terminal is not None:
            self._terminal_count(cols, root_rows, states, cand)
            return
        self._expand(cols, root_rows, states, cand, level)

    # ------------------------------------------------------------------

    def _expand(
        self,
        cols: list[np.ndarray],
        root_rows: np.ndarray,
        states: MutableMapping[int, _State],
        cand: sg.SegmentedSet,
        level: int,
    ) -> None:
        """Extend every row by its surviving candidates, chunked to the
        spill budget, and advance each chunk to the next level."""
        lens = cand.lengths
        if cand.total == 0:
            return
        carried = [
            sid for sid in self.carry_after[level] if sid in states
        ]
        bytes_per_row = 4 * (len(cols) + 1) + 8 + 8 * len(carried)
        chunks = _chunk_ranges(
            lens * bytes_per_row, self.policy.frontier_budget_bytes
        )
        if len(chunks) > 1:
            _tally("frontier/spill_chunks", len(chunks))
        for a, b in chunks:
            part = cand.slice_rows(a, b)
            if part.total == 0:
                continue
            parent = part.row_ids() + a
            new_cols = [col[parent] for col in cols]
            new_cols.append(part.values)
            new_states: dict[int, _State] = {}
            for sid in carried:
                st = states[sid]
                sel = parent if st.sel is None else st.sel[parent]
                new_states[sid] = _State(st.seg, sel)
            self._advance(
                new_cols, root_rows[parent], new_states, level + 1
            )

    # ------------------------------------------------------------------

    def _terminal_count(
        self,
        cols: list[np.ndarray],
        root_rows: np.ndarray,
        states: MutableMapping[int, _State],
        cand: sg.SegmentedSet,
    ) -> None:
        """Count all level-``k-1`` candidates of every level-``k-2``
        child without materializing the child frontier.

        The frontier generalization of the recursive batcher: the
        chain's fixed (child-independent) ops run segmented over the
        *parent* rows once, then one flat membership/bounds pass over
        each child's candidate slice yields the surviving counts.
        """
        graph, plan, policy = self.graph, self.plan, self.policy
        info = self.terminal
        ops = plan.levels[self.k - 2].ops
        if cand.total == 0:
            return
        _tally("frontier/fused_invocations")
        _tally("frontier/fused_children", cand.total)

        mask_ops: list[tuple[OpKind, int]] = []
        s_prime: sg.SegmentedSet | None = None
        if info.mode == "copy":
            # Fixed ops downstream of INIT_COPY N(v) become per-element
            # membership predicates on the child's own neighbor slice.
            mask_ops = [
                (op.kind, op.operand_level)
                for i, op in enumerate(ops)
                if i != info.child_op_index
            ]
        else:
            # Run the chain once with the child op as a pass-through
            # (fixed-operand ops commute with the single N(v) op).
            local: dict[int, sg.SegmentedSet] = {}

            def resolve(sid: int) -> sg.SegmentedSet:
                got = local.get(sid)
                if got is not None:
                    return got
                return self._materialize(states, sid)

            for i, op in enumerate(ops):
                if i == info.child_op_index:
                    if op.source_state is not None:
                        local[op.result_state] = resolve(op.source_state)
                    continue
                src = resolve(op.source_state)
                verts = cols[op.operand_level]
                if op.kind is OpKind.INTERSECT:
                    local[op.result_state] = sg.intersect_neighbors(
                        src, graph, verts, policy
                    )
                else:
                    local[op.result_state] = sg.subtract_neighbors(
                        src, graph, verts, policy
                    )
            s_prime = local[ops[-1].result_state]

        bounds = plan.lower_bound_levels(self.k - 1)
        fixed_bounds = [b for b in bounds if b < self.k - 2]
        self_bound = (self.k - 2) in bounds
        excludes = plan.exclude_levels(self.k - 1)
        fixed_excludes = [d for d in excludes if d < self.k - 2]
        self_exclude = (self.k - 2) in excludes
        fb: np.ndarray | None = None
        if fixed_bounds:
            fb = cols[fixed_bounds[0]]
            for b in fixed_bounds[1:]:
                fb = np.maximum(fb, cols[b])

        child_parent = cand.row_ids()
        if info.mode == "copy":
            indptr = graph.indptr
            weights = indptr[cand.values + 1] - indptr[cand.values]
        else:
            weights = s_prime.lengths[child_parent]
        chunks = _chunk_ranges(
            weights * _FLAT_BYTES, self.policy.frontier_budget_bytes
        )
        if len(chunks) > 1:
            _tally("frontier/spill_chunks", len(chunks))
        counts = self._counts
        for ja, jb in chunks:
            cp = child_parent[ja:jb]
            cv = cand.values[ja:jb]
            if info.mode == "copy":
                flat = sg.gather_neighbors(graph, cv)
            else:
                flat = s_prime.take_rows(cp)
            if flat.total == 0:
                continue
            fl = flat.lengths
            frow = np.repeat(cp, fl)
            vals = flat.values
            owners: np.ndarray | None = None
            if info.mode == "copy":
                keep = np.ones(vals.size, dtype=bool)
                for kind, d in mask_ops:
                    hit = sg.neighbor_membership(
                        graph, vals, cols[d][frow], policy, op="fused"
                    )
                    keep &= hit if kind is OpKind.INTERSECT else ~hit
            else:
                owners = np.repeat(cv, fl)
                hit = sg.neighbor_membership(
                    graph, vals, owners, policy, op="fused"
                )
                keep = hit if info.mode == "intersect" else ~hit
            if self_bound or fb is not None:
                if owners is None:
                    owners = np.repeat(cv, fl)
                if fb is None:
                    lb = owners
                elif self_bound:
                    lb = np.maximum(fb[frow], owners)
                else:
                    lb = fb[frow]
                keep &= vals > lb
            for d in fixed_excludes:
                keep &= vals != cols[d][frow]
            if self_exclude and info.mode == "subtract":
                if owners is None:
                    owners = np.repeat(cv, fl)
                keep &= vals != owners
            hit_rows = frow[keep]
            if hit_rows.size:
                counts += np.bincount(
                    root_rows[hit_rows], minlength=counts.size
                )


def frontier_per_root_counts(
    graph: CSRGraph,
    plan: ExecutionPlan,
    roots: Iterable[int],
    policy: KernelPolicy | None = None,
    *,
    shared_level0: MutableMapping[int, sg.SegmentedSet] | None = None,
) -> np.ndarray:
    """Convenience wrapper: one engine, one root list, one count vector."""
    engine = FrontierEngine(graph, plan, policy)
    return engine.per_root_counts(roots, shared_level0=shared_level0)
