"""High-level mining API — the front door of the library.

These helpers accept either :class:`~repro.pattern.pattern.Pattern`
objects or the paper's benchmark names, compile plans on demand (cached),
and run the reference engine.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Union

from repro.graph.csr import CSRGraph
from repro.mining import engine
from repro.pattern.compiler import compile_plan
from repro.pattern.multipattern import compile_multi_plan, motif_patterns
from repro.pattern.pattern import Pattern, named_pattern
from repro.pattern.plan import ExecutionPlan

__all__ = ["count", "embeddings", "motif_census", "plan_for"]

PatternLike = Union[str, Pattern]


@lru_cache(maxsize=None)
def _cached_plan(pattern: Pattern, vertex_induced: bool) -> ExecutionPlan:
    return compile_plan(pattern, vertex_induced=vertex_induced)


def plan_for(pattern: PatternLike, *, vertex_induced: bool = True) -> ExecutionPlan:
    """Resolve a pattern or benchmark name to a compiled (cached) plan."""
    if isinstance(pattern, str):
        pattern = named_pattern(pattern)
    return _cached_plan(pattern, vertex_induced)


def count(
    graph: CSRGraph,
    pattern: PatternLike,
    *,
    vertex_induced: bool = True,
    roots: Iterable[int] | None = None,
    jobs: int | None = None,
) -> int:
    """Count instances of ``pattern`` in ``graph``.

    ``jobs`` shards the search-tree roots across that many host worker
    processes (see docs/PARALLELISM.md); the count is identical for
    every value.

    >>> from repro.graph import complete_graph
    >>> count(complete_graph(5), "tc")
    10
    """
    plan = plan_for(pattern, vertex_induced=vertex_induced)
    return engine.count_embeddings(graph, plan, roots=roots, jobs=jobs)


def embeddings(
    graph: CSRGraph,
    pattern: PatternLike,
    *,
    vertex_induced: bool = True,
    limit: int | None = None,
    jobs: int | None = None,
) -> list[tuple[int, ...]]:
    """List embeddings of ``pattern`` (one representative per class).

    ``jobs`` parallelizes over root shards; the merged list equals the
    serial one exactly (order included).
    """
    plan = plan_for(pattern, vertex_induced=vertex_induced)
    return engine.list_embeddings(graph, plan, limit=limit, jobs=jobs)


def motif_census(
    graph: CSRGraph,
    k: int,
    *,
    vertex_induced: bool = True,
    roots: Iterable[int] | None = None,
    jobs: int | None = None,
) -> dict[str, int]:
    """Counts of every connected ``k``-vertex motif (the paper's k-motif job).

    For ``k = 3`` this is the ``3mc`` benchmark: triangles plus wedges.
    Plans share level-0 work through the merged-trunk pass of
    :func:`repro.mining.engine.count_multi`; ``jobs`` shards the roots.
    """
    patterns, names = motif_patterns(k)
    multi = compile_multi_plan(patterns, names=names, vertex_induced=vertex_induced)
    return engine.count_multi(graph, multi, roots=roots, jobs=jobs)
