"""Reference (software) pattern-aware mining engine.

This is the functional gold model: it executes compiled
:class:`~repro.pattern.plan.ExecutionPlan` IR directly (recursive DFS,
numpy merges) and defines the *correct answer* that every hardware timing
model must also produce.  It doubles as a usable pure-software graph
mining library (see ``examples/``).
"""

from repro.mining.engine import (
    count_embeddings,
    list_embeddings,
    count_multi,
    per_root_counts,
)
from repro.mining.bruteforce import (
    count_maps_bruteforce,
    count_instances_bruteforce,
)
from repro.mining.api import count, embeddings, motif_census
from repro.mining.oblivious import (
    ObliviousStats,
    census_oblivious,
    count_oblivious,
)
from repro.mining.validate import ValidationReport, cross_validate

__all__ = [
    "count_embeddings",
    "list_embeddings",
    "count_multi",
    "per_root_counts",
    "count_maps_bruteforce",
    "count_instances_bruteforce",
    "count",
    "embeddings",
    "motif_census",
    "ObliviousStats",
    "census_oblivious",
    "count_oblivious",
    "ValidationReport",
    "cross_validate",
]
