"""Provenance of a measurement: which code, on which machine.

Every row the experiment store (:mod:`repro.experiments.store`) persists
carries the environment that produced it, so a number in a report can
always be traced back to a commit and a host.  The helpers here collect
the *stable* environment facts — git revision, hostname, interpreter and
numpy versions, platform string.  Wall-clock timestamps are deliberately
**not** collected in this module: ``repro.core`` is inside the DET002
lint scope (modelled results must never read the host clock), so the
experiment executor — which lives outside every simulation path — stamps
rows with the submission time itself.

``git_revision`` shells out to ``git``; when that fails (no git binary,
not a checkout, permission trouble) it degrades to the
``REPRO_GIT_HASH`` environment variable and finally the literal
``"unknown"`` — provenance collection must never fail a run.
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
from pathlib import Path

__all__ = ["environment_provenance", "git_revision"]

#: Rendered in place of a revision when none can be determined.
UNKNOWN_REVISION = "unknown"


def _repo_root() -> Path | None:
    """The checkout containing this package, if it is a git checkout."""
    # src/repro/core/provenance.py -> src/repro/core -> src/repro -> src -> root
    root = Path(__file__).resolve().parents[3]
    return root if (root / ".git").exists() else None


def git_revision(*, cwd: Path | str | None = None) -> str:
    """The current git commit hash, with a ``+dirty`` suffix for
    uncommitted changes.

    Resolution order: ``$REPRO_GIT_HASH`` (explicit override for
    containers that ship without a ``.git`` directory), then
    ``git rev-parse HEAD`` in ``cwd`` (default: this package's
    checkout), then :data:`UNKNOWN_REVISION`.
    """
    env = os.environ.get("REPRO_GIT_HASH")
    if env:
        return env
    directory = Path(cwd) if cwd is not None else _repo_root()
    if directory is None:
        return UNKNOWN_REVISION
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=directory, capture_output=True, text=True, timeout=10,
        )
        if head.returncode != 0:
            return UNKNOWN_REVISION
        revision = head.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=directory, capture_output=True, text=True, timeout=10,
        )
        if status.returncode == 0 and status.stdout.strip():
            revision += "+dirty"
        return revision
    except (OSError, subprocess.SubprocessError):
        return UNKNOWN_REVISION


def environment_provenance() -> dict[str, str]:
    """The provenance fields shared by every row of one process's runs.

    Keys (the schema documented in docs/BENCHMARKS.md):

    ``git_hash``
        :func:`git_revision` — commit hash, ``+dirty`` when the tree has
        uncommitted changes, ``"unknown"`` outside a checkout.
    ``hostname``
        ``socket.gethostname()``.
    ``python`` / ``numpy``
        Interpreter and numpy versions.
    ``platform``
        ``platform.platform()`` (OS + kernel + architecture).
    """
    import numpy

    return {
        "git_hash": git_revision(),
        "hostname": socket.gethostname(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }
