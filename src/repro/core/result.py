"""The one result type every backend produces.

:class:`RunResult` replaces the former ``ChipResult`` /
``SoftwareResult`` / ``SimResult`` triplication.  A result is

* workload identity (``workload``, ``pattern_names``) — attached by the
  backend front door, empty for bare component-level runs;
* functional output (``counts``, one entry per plan);
* timing (``cycles``: the makespan; ``0.0`` for the functional backend);
* per-execution-unit counters (``units``: one ``PEStats`` per PE or
  core, concatenated across shards);
* named component-stat ``sections`` (``"shared_cache"``/``"llc"``,
  ``"dram"``, ``"noc"`` — whatever memory-system components the backend
  models), each a stat dataclass merged by
  :func:`repro.core.merge.merge_stats`;
* backend-specific ``scalars`` (``num_pes``, ``num_ius``,
  ``task_group_size``, ``total_steals``, ...) readable as plain
  attributes (``result.num_pes``).

Merging (:func:`merge_run_results`) is the single policy-driven shard
merge of docs/PARALLELISM.md: counts and sum-policy scalars add,
``cycles`` is the max over shards, units concatenate, sections merge
field-wise, and everything else must agree exactly or the merge is
refused.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.core.merge import merge_stats

__all__ = ["RunResult", "merge_run_results"]

#: Scalars that accumulate across shards; every other scalar must be
#: identical on both sides of a merge (it describes the design, not the
#: work done).
_SCALAR_SUM_FIELDS = frozenset({"total_steals"})


@dataclass(frozen=True)
class RunResult:
    """Everything one backend run (or a merge of shard runs) produced."""

    backend: str
    design: str
    cycles: float
    counts: tuple[int, ...]
    workload: str = ""
    pattern_names: tuple[str, ...] = ()
    units: tuple = ()
    unit_finish_times: tuple = ()
    sections: Mapping[str, Any] = field(default_factory=dict)
    scalars: Mapping[str, Any] = field(default_factory=dict)
    #: How many disjoint root shards (cold simulator instances) this
    #: result aggregates.  1 for a plain run; under the sharded model
    #: (``jobs=``), ``len(units) == units_per_shard * num_shards`` and
    #: ``cycles`` is the makespan of the slowest shard.
    num_shards: int = 1
    #: Recovery accounting for the run that produced this result — a
    #: ``RetryStats.as_dict()`` record, or ``None`` when no recovery
    #: machinery was engaged (docs/RESILIENCE.md).  Observability only:
    #: excluded from equality (retries are invisible in results by
    #: contract) and stripped before disk-cache writes.
    retry_stats: Any = field(default=None, compare=False)

    # -- functional surface ---------------------------------------------

    @property
    def count(self) -> int:
        """Total embeddings over all patterns."""
        return sum(self.counts)

    @property
    def counts_by_name(self) -> dict[str, int]:
        """Per-pattern counts (useful for multi-pattern jobs like 3mc)."""
        names = self.pattern_names or (self.workload,)
        return dict(zip(names, self.counts))

    def speedup_over(self, baseline: "RunResult") -> float:
        """``baseline.cycles / self.cycles`` with a functional sanity check."""
        if baseline.counts != self.counts:
            raise ValueError(
                "refusing to compare runs with different functional results: "
                f"{baseline.counts} vs {self.counts}"
            )
        if self.cycles == 0:
            raise ZeroDivisionError("zero-cycle run")
        return baseline.cycles / self.cycles

    # -- timing surface --------------------------------------------------

    @property
    def load_imbalance(self) -> float:
        """Makespan over mean unit busy time (1.0 = perfectly balanced)."""
        busy = [s.busy_cycles for s in self.units if s.busy_cycles > 0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return self.cycles / mean if mean > 0 else 1.0

    @property
    def combined(self):
        """All unit counters merged into one record."""
        from repro.hw.stats import PEStats

        return merge_stats(self.units, cls=PEStats)

    # -- compatibility surface -------------------------------------------
    # The pre-registry result types survive as views: ``pe_stats`` /
    # ``core_stats`` alias ``units``, ``.chip`` strips workload identity
    # (the old ``SimResult.chip`` held the bare chip-level record), and
    # sections/scalars resolve as attributes (``.shared_cache``,
    # ``.num_pes``, ``.total_steals``, ...).

    @property
    def chip(self) -> "RunResult":
        """This result without workload identity (old ``SimResult.chip``)."""
        if not self.workload and not self.pattern_names:
            return self
        return replace(self, workload="", pattern_names=())

    @property
    def pe_stats(self) -> tuple:
        return self.units

    @property
    def core_stats(self) -> tuple:
        return self.units

    @property
    def pe_finish_times(self) -> tuple:
        return self.unit_finish_times

    def __getattr__(self, name: str):
        if name == "retry_stats":
            # Results unpickled from pre-resilience disk-cache entries
            # predate the field; treat them as fault-free runs instead
            # of bumping the cache schema version.
            return None
        if name.startswith("_") or name in ("scalars", "sections"):
            raise AttributeError(name)
        d = object.__getattribute__(self, "__dict__")
        scalars = d.get("scalars")
        if scalars is not None and name in scalars:
            return scalars[name]
        sections = d.get("sections")
        if sections is not None and name in sections:
            return sections[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )


def merge_run_results(results: Sequence[RunResult]) -> RunResult:
    """Combine per-shard results with exact semantics.

    Each input must come from the *same* backend configuration run over
    a disjoint root shard on a cold simulator instance.  Counts and
    sum-policy scalars merge by addition; per-unit records concatenate
    (unit ``i`` of shard ``s`` is a distinct physical unit in the
    multi-chip reading); sections merge field-wise under
    :func:`repro.core.merge.merge_stats`; ``cycles`` is the makespan of
    the slowest shard.  Merging is associative, order-normalized by the
    caller passing shards in root order, and introduces no
    floating-point re-association: every output float is either a sum
    or a max of input floats.
    """
    if not results:
        raise ValueError("cannot merge zero results")
    first = results[0]
    for r in results[1:]:
        same_identity = (
            r.backend == first.backend
            and r.design == first.design
            and r.workload == first.workload
            and r.pattern_names == first.pattern_names
            and len(r.counts) == len(first.counts)
            and set(r.sections) == set(first.sections)
            and set(r.scalars) == set(first.scalars)
            and all(
                r.scalars[k] == first.scalars[k]
                for k in first.scalars
                if k not in _SCALAR_SUM_FIELDS
            )
        )
        if not same_identity:
            raise ValueError("refusing to merge results of different designs")
    if len(results) == 1:
        return first
    from repro import sanitize

    if sanitize.is_active():
        # Sanitizer probe: section/scalar *iteration order* feeds the
        # merged dicts below; order drift would reorder merged stats.
        sanitize.emit(
            "merge",
            f"run_results[{len(results)}]",
            (tuple(first.sections), tuple(first.scalars)),
        )
    counts = [0] * len(first.counts)
    for r in results:
        for i, c in enumerate(r.counts):
            counts[i] += c
    sections = {
        name: merge_stats(
            [r.sections[name] for r in results],
            cls=type(first.sections[name]),
        )
        for name in first.sections
    }
    scalars = dict(first.scalars)
    for k in first.scalars:
        if k in _SCALAR_SUM_FIELDS:
            scalars[k] = sum(r.scalars[k] for r in results)
    return RunResult(
        backend=first.backend,
        design=first.design,
        cycles=max(r.cycles for r in results),
        counts=tuple(counts),
        workload=first.workload,
        pattern_names=first.pattern_names,
        units=tuple(s for r in results for s in r.units),
        unit_finish_times=tuple(
            t for r in results for t in r.unit_finish_times
        ),
        sections=sections,
        scalars=scalars,
        num_shards=sum(r.num_shards for r in results),
    )
