"""The backend contract and registry.

A *backend* is one way to execute a mining job: the FINGERS chip model,
the FlexMiner baseline, the multi-core software miner, or the pure
functional reference engine.  Every backend implements the same small
protocol —

``name``
    registry key (``"fingers"``, ``"flexminer"``, ``"software"``,
    ``"functional"``);
``simulate(graph, plans, config, *, roots, memory, schedule, tracer)``
    run one shard on a cold instance and return a
    :class:`~repro.core.result.RunResult`;
``merge(results)``
    combine per-shard results (defaults to the unified
    :func:`~repro.core.result.merge_run_results`);
``cache_key(graph, workload, config, ...)``
    the persistent-cache identity of a run.

— so the sharded driver (:func:`repro.core.sharded.run_sharded`), the
bench runner, and the CLI are all backend-generic: adding a design
variant is one ``register_backend`` call, not an edit to every figure
script.

Cache keys render **every** dataclass field of the configuration
explicitly (:func:`config_signature`), so a field can never silently
escape the schema hash — the failure class the CACHE001 lint rule
guards against is closed by construction on this path.
"""

from __future__ import annotations

import abc
from dataclasses import fields, is_dataclass
from typing import Any, Iterable, Sequence

from repro.core.result import RunResult, merge_run_results

__all__ = [
    "Backend",
    "backend_for_config",
    "backend_names",
    "config_signature",
    "get_backend",
    "register_backend",
]


def config_signature(config: Any) -> str:
    """Canonical rendering of a configuration for cache keys.

    Unlike ``repr``, this renders every dataclass field (recursively),
    including ``repr=False`` fields and fields hidden by a custom
    ``__repr__`` — so the cache key always reflects the full
    configuration.  ``None`` (a defaulted optional config) renders as
    ``"None"``.
    """
    if config is None:
        return "None"
    if is_dataclass(config) and not isinstance(config, type):
        parts = ", ".join(
            f"{f.name}={config_signature(getattr(config, f.name))}"
            for f in fields(config)
        )
        return f"{type(config).__qualname__}({parts})"
    return repr(config)


class Backend(abc.ABC):
    """One execution path for mining jobs (see module docstring)."""

    #: Registry key; unique across registered backends.
    name: str = ""
    #: One-line description for ``python -m repro backends``.
    description: str = ""
    #: The configuration dataclass this backend consumes.
    config_type: type = type(None)
    #: Name of the config field holding the execution-unit count
    #: (``num_pes`` / ``num_cores``), or ``None`` if not configurable.
    unit_field: str | None = None
    #: Display label for execution units in summaries.
    unit_label: str = "PEs"
    #: Whether ``simulate`` accepts a tracer (event-level Gantt traces).
    supports_trace: bool = False
    #: Bump whenever this backend's ``simulate`` changes observable
    #: results for the same inputs; every cached entry then misses.
    cache_key_version: int = 1

    # -- required surface ------------------------------------------------

    @abc.abstractmethod
    def simulate(
        self,
        graph,
        plans: Sequence,
        config,
        *,
        roots: Iterable[int] | None = None,
        memory=None,
        schedule: str = "dynamic",
        tracer=None,
    ) -> RunResult:
        """Run one job (or one root shard) on a cold instance."""

    def merge(self, results: Sequence[RunResult]) -> RunResult:
        """Combine per-shard results (exact; see docs/PARALLELISM.md)."""
        return merge_run_results(results)

    def cache_key(
        self,
        graph,
        workload,
        config,
        *,
        memory=None,
        roots: Iterable[int] | None = None,
        schedule: str = "dynamic",
        model: str = "single-chip",
    ) -> str:
        """Persistent-cache identity of one run.

        Mixes the backend name and :attr:`cache_key_version` with the
        full graph fingerprint, workload, explicit config signature,
        root-array hash, schedule, and execution model — the schema
        documented in docs/PARALLELISM.md section 3.
        """
        from repro.cache import graph_fingerprint, make_key, roots_fingerprint

        roots_list = list(roots) if roots is not None else None
        return make_key(
            kind="runresult",
            backend=self.name,
            backend_version=self.cache_key_version,
            graph=graph_fingerprint(graph),
            workload=str(workload),
            config=config_signature(config),
            memory=config_signature(memory),
            roots=roots_fingerprint(roots_list),
            schedule=schedule,
            model=model,
        )

    # -- conveniences shared by every backend ----------------------------

    def default_config(self, units: int | None = None, **overrides):
        """A configuration instance; ``units`` sets the PE/core count."""
        if units is not None and self.unit_field is not None:
            overrides.setdefault(self.unit_field, units)
        return self.config_type(**overrides)

    def config_from_args(self, args):
        """Build a configuration from CLI ``simulate`` arguments."""
        return self.default_config(units=getattr(args, "pes", None))

    def prepare(self, graph, plans, config) -> None:
        """Driver-side hook run once per :meth:`run`, before any fan-out.

        Backends whose configuration needs per-(graph, plan) resolution
        — e.g. the functional backend warming the tuned-choice store so
        sharded workers resolve ``tuned=True`` policies from disk
        instead of re-trialing — override this.  The default is a no-op.
        """

    def run(
        self,
        graph,
        workload,
        config=None,
        *,
        memory=None,
        roots: Iterable[int] | None = None,
        schedule: str = "dynamic",
        tracer=None,
        jobs: int | None = None,
        shards: int | None = None,
    ) -> RunResult:
        """Front door: resolve the workload, pick the execution model.

        ``jobs``/``shards`` select the sharded (multi-instance) model of
        docs/PARALLELISM.md; ``jobs=None`` (default) keeps the plain
        single-instance model.  The returned result carries workload
        identity (``workload``/``pattern_names``).
        """
        from dataclasses import replace

        from repro.core.workload import resolve_workload

        name, plans, names = resolve_workload(workload)
        if config is None:
            config = self.default_config()
        self.prepare(graph, plans, config)
        if jobs is None and shards is None:
            res = self.simulate(
                graph, plans, config,
                roots=roots, memory=memory, schedule=schedule, tracer=tracer,
            )
        else:
            if tracer is not None:
                raise ValueError(
                    "tracing is only supported for unsharded runs "
                    "(jobs/shards unset)"
                )
            if jobs is not None and jobs < 1:
                raise ValueError("jobs must be >= 1")
            from repro.core.sharded import run_sharded

            res = run_sharded(
                self, graph, plans, config,
                memory=memory, roots=roots, schedule=schedule,
                jobs=jobs or 1, num_shards=shards,
            )
        return replace(res, workload=name, pattern_names=names)

    def summary(self, result: RunResult) -> list[str]:
        """Human-readable lines for the CLI ``simulate`` subcommand."""
        lines = [
            f"design:  {result.design}",
            f"count:   {result.count:,}",
            f"cycles:  {result.cycles:,.0f}",
            f"imbalance: {result.load_imbalance:.2f}",
        ]
        if result.num_shards > 1:
            lines.append(f"shards:  {result.num_shards} (sharded model)")
        return lines


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Add a backend to the registry; returns it for assignment style.

    Registering a second backend under an existing name requires
    ``replace=True`` (guards against accidental shadowing of the
    built-ins).
    """
    if not backend.name:
        raise ValueError("backend must have a non-empty name")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def _ensure_builtins() -> None:
    # The built-ins register themselves at import time; importing lazily
    # here keeps ``repro.core.backend`` free of simulator dependencies.
    import repro.core.backends  # noqa: F401


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def get_backend(name: str) -> Backend:
    """Look up a backend by registry name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def backend_for_config(config: Any) -> Backend:
    """The backend whose ``config_type`` matches ``config``'s type."""
    _ensure_builtins()
    for backend in _REGISTRY.values():
        if type(config) is backend.config_type:
            return backend
    raise TypeError(
        f"no registered backend accepts configuration {config!r}"
    )
