"""Workload normalization shared by every backend.

A *workload* names the functional job: a benchmark pattern name
(including the multi-pattern ``"3mc"`` census), a :class:`Pattern`, a
pre-compiled :class:`ExecutionPlan`, or a :class:`MultiPlan`.  Backends
only ever see the normalized ``(name, plans, per-plan names)`` triple,
so every execution path — chip, software, functional — interprets
workload specs identically.
"""

from __future__ import annotations

from typing import Union

from repro.pattern.compiler import compile_plan
from repro.pattern.multipattern import MultiPlan, compile_multi_plan, motif_patterns
from repro.pattern.pattern import Pattern, named_pattern
from repro.pattern.plan import ExecutionPlan

__all__ = ["Workload", "resolve_workload"]

Workload = Union[str, Pattern, ExecutionPlan, MultiPlan]


def resolve_workload(
    workload: Workload,
) -> tuple[str, list[ExecutionPlan], tuple[str, ...]]:
    """Normalize any workload spec to (name, plans, per-plan names)."""
    if isinstance(workload, MultiPlan):
        return "+".join(workload.names), list(workload.plans), workload.names
    if isinstance(workload, ExecutionPlan):
        name = f"plan(k={workload.num_levels})"
        return name, [workload], (name,)
    if isinstance(workload, Pattern):
        name = f"pattern(k={workload.num_vertices})"
        return name, [compile_plan(workload)], (name,)
    if isinstance(workload, str):
        if workload == "3mc":
            patterns, names = motif_patterns(3)
            multi = compile_multi_plan(patterns, names=names)
            return "3mc", list(multi.plans), tuple(names)
        return workload, [compile_plan(named_pattern(workload))], (workload,)
    raise TypeError(f"cannot interpret workload {workload!r}")
