"""The backend-generic sharded driver (plus the engine chunk helpers).

Unlike the reference engine, a timing simulation is *not* associative
over roots: PEs couple through the shared cache's LRU state, the DRAM
channel, and the NoC, so replaying the single-chip event loop in
parallel would require a full parallel-discrete-event simulation.
Instead, ``jobs=`` selects the **sharded (multi-instance) model**: the
root set is cut into shards (a pure function of the graph and roots —
never of the worker count), every shard runs on its own cold backend
instance, and the shard results are merged with the backend's exact
merge (:func:`repro.core.result.merge_run_results` by default).

Because each shard simulation is deterministic and the decomposition is
jobs-independent, ``jobs=1`` and ``jobs=N`` produce bit-for-bit
identical merged results; the worker count only changes the wall clock.
See ``docs/PARALLELISM.md`` for the full contract.

:func:`run_sharded` is the one driver for *every* backend — the former
per-design ``sharded_run_chip`` / ``sharded_software_run`` twins are
now thin wrappers over it (``repro.parallel.hardware``).  The engine's
list-shaped parallel helpers (``per_root_counts_parallel`` and
friends), whose results merge associatively by concatenation rather
than through a :class:`RunResult`, live here too so all host-parallel
dispatch shares one module.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable, Sequence

from repro.core.backend import Backend, get_backend
from repro.core.result import RunResult
from repro.graph.csr import CSRGraph
from repro.parallel.chunking import (
    default_num_shards,
    engine_num_chunks,
    shard_roots,
)
from repro.parallel.pool import run_shards
from repro.pattern.plan import ExecutionPlan
from repro.resilience.retry import RetryStats

__all__ = [
    "count_embeddings_parallel",
    "count_multi_parallel",
    "list_embeddings_parallel",
    "per_root_counts_parallel",
    "resolve_shards",
    "run_sharded",
]


def resolve_shards(
    graph: CSRGraph,
    roots: Iterable[int] | None,
    num_shards: int | None,
) -> list[list[int]]:
    """The shard decomposition the sharded model will use.

    Exposed so callers (e.g. the result cache) can key on the effective
    shard count without running anything.
    """
    root_list = (
        list(range(graph.num_vertices)) if roots is None else list(roots)
    )
    if num_shards is None:
        num_shards = default_num_shards(len(root_list))
    return shard_roots(graph, root_list, num_shards)


def _backend_worker(payload: dict[str, Any], shard: list[int]) -> RunResult:
    backend = get_backend(payload["backend"])
    return backend.simulate(
        payload["graph"],
        payload["plans"],
        payload["config"],
        roots=shard,
        memory=payload["memory"],
        schedule=payload["schedule"],
    )


def run_sharded(
    backend: Backend,
    graph: CSRGraph,
    plans: Sequence[ExecutionPlan],
    config,
    *,
    memory=None,
    roots: Iterable[int] | None = None,
    schedule: str = "dynamic",
    jobs: int = 1,
    num_shards: int | None = None,
) -> RunResult:
    """Run the sharded model on any backend: one cold instance per shard.

    A decomposition of a single shard degenerates to the plain
    single-instance model, so tiny root sets behave identically with
    and without ``jobs``.  Workers receive the backend by registry name
    (cheap to pickle; resolved against the registry in each process).
    """
    shards = resolve_shards(graph, roots, num_shards)
    if len(shards) <= 1:
        only = shards[0] if shards else []
        return backend.simulate(
            graph, plans, config, roots=only, memory=memory, schedule=schedule
        )
    payload = {
        "backend": backend.name,
        "graph": graph,
        "plans": list(plans),
        "config": config,
        "memory": memory,
        "schedule": schedule,
    }
    stats = RetryStats()
    results = run_shards(_backend_worker, payload, shards, jobs, stats=stats)
    merged = backend.merge(results)
    if stats.recovered:
        # Recovery engaged: surface the accounting on the (otherwise
        # bit-identical) result so sweeps can report what was absorbed.
        merged = replace(merged, retry_stats=stats.as_dict())
    return merged


# ----------------------------------------------------------------------
# Reference-engine chunk helpers
# ----------------------------------------------------------------------
# The engine's results are associative over roots: counts add, and
# embedding lists concatenate in root order.  Because shard_roots
# produces chunks that are contiguous in root order, merging per-chunk
# results in chunk order reproduces the serial output *exactly* for
# every worker count.  (The engine path may therefore over-decompose
# freely for load balancing, unlike the sharded simulator model whose
# decomposition is part of its timing semantics.)


def _count_worker(
    payload: dict[str, Any], chunk: list[int]
) -> list[tuple[int, int]]:
    from repro.mining import engine

    return list(
        engine.per_root_counts(
            payload["graph"],
            payload["plan"],
            roots=chunk,
            kernels=payload["kernels"],
        )
    )


def _list_worker(
    payload: dict[str, Any], chunk: list[int]
) -> list[tuple[int, ...]]:
    from repro.mining import engine

    return engine.list_embeddings(
        payload["graph"],
        payload["plan"],
        roots=chunk,
        limit=payload["limit"],
        kernels=payload["kernels"],
    )


def _multi_count_worker(
    payload: dict[str, Any], chunk: list[int]
) -> dict[str, int]:
    from repro.mining import engine

    return engine.count_multi(
        payload["graph"],
        payload["multi"],
        roots=chunk,
        kernels=payload["kernels"],
    )


def _chunked(
    graph: CSRGraph, roots: Iterable[int] | None, jobs: int
) -> list[list[int]]:
    root_list = list(roots) if roots is not None else None
    n = graph.num_vertices if root_list is None else len(root_list)
    return shard_roots(graph, root_list, engine_num_chunks(n, jobs))


def per_root_counts_parallel(
    graph: CSRGraph,
    plan: ExecutionPlan,
    roots: Iterable[int] | None,
    jobs: int,
    *,
    kernels=None,
) -> list[tuple[int, int]]:
    """``(root, count)`` pairs in serial root order, computed on ``jobs``
    worker processes.  The kernel policy is forwarded to every worker, so
    each chunk runs the same engine (a frontier worker batches its whole
    contiguous chunk through one frontier)."""
    chunks = _chunked(graph, roots, jobs)
    payload = {"graph": graph, "plan": plan, "kernels": kernels}
    parts = run_shards(_count_worker, payload, chunks, jobs)
    return [pair for part in parts for pair in part]


def count_embeddings_parallel(
    graph: CSRGraph,
    plan: ExecutionPlan,
    roots: Iterable[int] | None,
    jobs: int,
    *,
    kernels=None,
) -> int:
    """Total embedding count, sharded over ``jobs`` worker processes."""
    return sum(
        count
        for _, count in per_root_counts_parallel(
            graph, plan, roots, jobs, kernels=kernels
        )
    )


def count_multi_parallel(
    graph: CSRGraph,
    multi,
    roots: Iterable[int] | None,
    jobs: int,
    *,
    kernels=None,
) -> dict[str, int]:
    """Multi-pattern totals sharded over ``jobs`` worker processes.

    Each worker runs the shared level-0 trunk path on its chunk; the
    per-pattern totals merge by addition, so the result is bit-identical
    to the serial shared-trunk pass.
    """
    chunks = _chunked(graph, roots, jobs)
    payload = {"graph": graph, "multi": multi, "kernels": kernels}
    parts = run_shards(_multi_count_worker, payload, chunks, jobs)
    totals = {name: 0 for name in multi.names}
    for part in parts:
        for name, count in part.items():
            totals[name] += count
    return totals


def list_embeddings_parallel(
    graph: CSRGraph,
    plan: ExecutionPlan,
    roots: Iterable[int] | None,
    limit: int | None,
    jobs: int,
    *,
    kernels=None,
) -> list[tuple[int, ...]]:
    """Embeddings in serial order; ``limit`` truncates after the merge.

    Each worker also stops at ``limit`` locally (it can never contribute
    more than ``limit`` surviving embeddings), so dense graphs don't
    enumerate unboundedly just to be truncated at the end.
    """
    chunks = _chunked(graph, roots, jobs)
    payload = {"graph": graph, "plan": plan, "limit": limit, "kernels": kernels}
    parts = run_shards(_list_worker, payload, chunks, jobs)
    out = [emb for part in parts for emb in part]
    if limit is not None:
        del out[limit:]
    return out
