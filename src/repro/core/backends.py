"""The four built-in backends.

``fingers`` and ``flexminer`` wrap the chip event loop
(:func:`repro.hw.chip.run_chip`), ``software`` wraps the multi-core
miner (:class:`repro.sw.miner.SoftwareMiner`), and ``functional`` is
the pure reference engine promoted to a first-class backend — so
cross-validation is just "run two backends, compare counts", with no
special-cased engine path.

Each backend registers itself at import time; the registry imports this
module lazily (:func:`repro.core.backend.get_backend`), so importing
``repro.core.backend`` alone stays free of simulator dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.backend import Backend, register_backend
from repro.core.result import RunResult
from repro.setops.kernels import KernelPolicy

__all__ = [
    "FingersBackend",
    "FlexMinerBackend",
    "FunctionalBackend",
    "FunctionalConfig",
    "SoftwareBackend",
]


class _HardwareBackend(Backend):
    """Shared chip-model plumbing for the FINGERS and FlexMiner designs."""

    unit_field = "num_pes"
    supports_trace = True

    def simulate(
        self,
        graph,
        plans: Sequence,
        config,
        *,
        roots: Iterable[int] | None = None,
        memory=None,
        schedule: str = "dynamic",
        tracer=None,
    ) -> RunResult:
        from repro.hw.chip import run_chip

        return run_chip(
            graph, plans, config, memory,
            roots=roots, schedule=schedule, tracer=tracer,
        )

    def summary(self, result: RunResult) -> list[str]:
        lines = [
            f"design:  {result.design} ({result.num_pes} PEs)",
            f"count:   {result.count:,}",
            f"cycles:  {result.cycles:,.0f}",
            f"tasks:   {result.combined.tasks:,}",
            f"imbalance: {result.load_imbalance:.2f}",
            "shared-cache miss rate: "
            f"{100 * result.shared_cache.miss_rate:.1f}%",
        ]
        if result.num_shards > 1:
            lines.append(f"shards:  {result.num_shards} (sharded model)")
        return lines


class FingersBackend(_HardwareBackend):
    """The paper's design: fine-grained parallel PEs (IUs + dividers)."""

    name = "fingers"
    description = "FINGERS chip timing model (fine-grained parallel PEs)"

    @property
    def config_type(self):
        from repro.hw.config import FingersConfig

        return FingersConfig

    def config_from_args(self, args):
        return self.default_config(
            units=args.pes or 20,
            num_ius=args.ius,
            task_group_size=args.group_size,
        )


class FlexMinerBackend(_HardwareBackend):
    """The FlexMiner baseline: strict-DFS PEs with serial set units."""

    name = "flexminer"
    description = "FlexMiner baseline timing model (strict-DFS PEs)"

    @property
    def config_type(self):
        from repro.hw.config import FlexMinerConfig

        return FlexMinerConfig

    def config_from_args(self, args):
        return self.default_config(units=args.pes or 40)


class SoftwareBackend(Backend):
    """Cycle-approximate multi-core CPU miner with work stealing."""

    name = "software"
    description = "multi-core software miner (work-stealing CPU model)"
    unit_field = "num_cores"
    unit_label = "cores"

    @property
    def config_type(self):
        from repro.sw.config import SoftwareConfig

        return SoftwareConfig

    def simulate(
        self,
        graph,
        plans: Sequence,
        config,
        *,
        roots: Iterable[int] | None = None,
        memory=None,
        schedule: str = "dynamic",
        tracer=None,
    ) -> RunResult:
        if tracer is not None:
            raise ValueError(
                "the software backend does not support event tracing"
            )
        from repro.sw.miner import SoftwareMiner

        return SoftwareMiner(graph, plans, config, memory).run(roots)

    def config_from_args(self, args):
        return self.default_config(units=args.pes or 8)

    def summary(self, result: RunResult) -> list[str]:
        lines = [
            f"design:  {result.design}",
            f"count:   {result.count:,}",
            f"cycles:  {result.cycles:,.0f}",
            f"steals:  {result.total_steals}",
            f"imbalance: {result.load_imbalance:.2f}",
        ]
        if result.num_shards > 1:
            lines.append(f"shards:  {result.num_shards} (sharded model)")
        return lines


@dataclass(frozen=True)
class FunctionalConfig:
    """Reference-engine knobs: no microarchitecture, only the set-op
    kernel policy (``None`` means the process-wide default policy)."""

    kernels: KernelPolicy | None = None

    @property
    def design_name(self) -> str:
        return "functional"


class FunctionalBackend(Backend):
    """The pure reference engine: exact counts, no timing model."""

    name = "functional"
    description = "pure reference engine (exact counts, no timing)"
    config_type = FunctionalConfig
    unit_label = "workers"

    def simulate(
        self,
        graph,
        plans: Sequence,
        config,
        *,
        roots: Iterable[int] | None = None,
        memory=None,
        schedule: str = "dynamic",
        tracer=None,
    ) -> RunResult:
        if tracer is not None:
            raise ValueError(
                "the functional backend does not support event tracing"
            )
        from repro.mining.engine import count_embeddings

        root_list = (
            list(range(graph.num_vertices)) if roots is None else list(roots)
        )
        counts = tuple(
            count_embeddings(
                graph, plan, roots=root_list, kernels=config.kernels
            )
            for plan in plans
        )
        return RunResult(
            backend=self.name,
            design="functional",
            cycles=0.0,
            counts=counts,
        )

    def config_from_args(self, args):
        return FunctionalConfig()

    def prepare(self, graph, plans, config) -> None:
        """Warm the tuned-choice store at the driver for tuned runs.

        Sharded workers then resolve ``KernelPolicy(tuned=True)`` with a
        store hit apiece instead of each re-running measured trials.
        """
        if config.kernels is None or not config.kernels.tuned:
            return
        from repro.tuning import tune_plan

        for plan in plans:
            tune_plan(graph, plan, config.kernels)

    def summary(self, result: RunResult) -> list[str]:
        lines = [
            f"design:  {result.design} (reference engine)",
            f"count:   {result.count:,}",
            "cycles:  n/a (functional backend has no timing model)",
        ]
        if result.num_shards > 1:
            lines.append(f"shards:  {result.num_shards} (sharded model)")
        return lines


FINGERS = register_backend(FingersBackend())
FLEXMINER = register_backend(FlexMinerBackend())
SOFTWARE = register_backend(SoftwareBackend())
FUNCTIONAL = register_backend(FunctionalBackend())
