"""One policy-driven merge for every component-stat dataclass.

Every simulator component (PE counters, caches, DRAM, NoC) accumulates
plain event counts, so results from disjoint shards combine field by
field under a small set of policies:

``"sum"`` (the default)
    counters add — exact for event counts over disjoint work.
``"max"`` / ``"min"``
    extremes, e.g. a makespan is the max over shards.
``("wmean", weight_field)``
    weighted mean, re-weighted by a sibling field that itself merges by
    ``"sum"``.  Because the weights add, the merge stays associative:
    merging merged records gives the same mean as merging the originals
    in one pass.

All policies are associative and have the zero-valued record as an
identity, so shard merges are order-insensitive up to float rounding
and an empty merge is a no-op (it returns ``cls()``) — the property
tests in ``tests/core/test_merge_properties.py`` pin this down.

This module subsumes the previously hand-written ``merge_pe_stats``,
``merge_cache_stats``, ``merge_dram_stats``, ``merge_noc_stats``,
``merge_chip_results``, and ``merge_software_results`` helpers; those
names survive as thin wrappers around :func:`merge_stats` and
:func:`repro.core.result.merge_run_results`.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Mapping, Sequence, TypeVar

__all__ = ["merge_stats"]

T = TypeVar("T")

#: Policies a field may declare (see module docstring).
_SCALAR_POLICIES = ("sum", "max", "min")


def _merge_field(policy, values: list, weights: list | None):
    if policy == "sum":
        total = values[0]
        for v in values[1:]:
            total = total + v
        return total
    if policy == "max":
        return max(values)
    if policy == "min":
        return min(values)
    if isinstance(policy, tuple) and len(policy) == 2 and policy[0] == "wmean":
        assert weights is not None
        wsum = sum(weights)
        if wsum == 0:
            return type(values[0])(0)
        return sum(v * w for v, w in zip(values, weights)) / wsum
    raise ValueError(f"unknown merge policy {policy!r}")


def merge_stats(
    records: Sequence[T],
    *,
    cls: type[T] | None = None,
    policy: Mapping[str, Any] | None = None,
) -> T:
    """Merge dataclass stat records field by field.

    ``policy`` maps field names to ``"sum"`` (default), ``"max"``,
    ``"min"``, or ``("wmean", weight_field)`` where ``weight_field``
    names a sibling field merged by ``"sum"``.  ``cls`` is required only
    when ``records`` may be empty (the merge then returns ``cls()``,
    the zero record — an empty shard contributes nothing).
    """
    records = list(records)
    if cls is None:
        if not records:
            raise ValueError("merge_stats needs cls= to merge zero records")
        cls = type(records[0])
    if not is_dataclass(cls):
        raise TypeError(f"merge_stats merges dataclasses, got {cls!r}")
    if not records:
        return cls()
    policy = dict(policy or {})
    out: dict[str, Any] = {}
    for f in fields(cls):
        field_policy = policy.get(f.name, "sum")
        values = [getattr(r, f.name) for r in records]
        weights = None
        if isinstance(field_policy, tuple) and field_policy[0] == "wmean":
            weights = [getattr(r, field_policy[1]) for r in records]
        out[f.name] = _merge_field(field_policy, values, weights)
    return cls(**out)
