"""Execution core: the backend registry and the unified result contract.

Every way of executing a mining job — the FINGERS chip model, the
FlexMiner baseline, the multi-core software miner, and the pure
functional reference engine — is a :class:`~repro.core.backend.Backend`
behind one registry.  All of them produce the same
:class:`~repro.core.result.RunResult`, merge shards through the same
policy-driven :func:`~repro.core.result.merge_run_results`, run the
sharded model through the same
:func:`~repro.core.sharded.run_sharded` driver, and derive
persistent-cache keys from the same
:meth:`~repro.core.backend.Backend.cache_key` schema.

Typical use::

    from repro.core import get_backend

    backend = get_backend("fingers")
    result = backend.run(graph, "tc", backend.default_config(units=4))
    print(result.count, result.cycles)

Registering a new design variant makes it available to the CLI
(``--design``), the bench runner, and the sharded driver in one step::

    from repro.core import register_backend
    register_backend(MyBackend())

See docs/API.md ("Backend contract") and docs/PARALLELISM.md for the
full merge/caching semantics.
"""

from repro.core.backend import (
    Backend,
    backend_for_config,
    backend_names,
    config_signature,
    get_backend,
    register_backend,
)
from repro.core.merge import merge_stats
from repro.core.provenance import environment_provenance, git_revision
from repro.core.result import RunResult, merge_run_results
from repro.core.workload import Workload, resolve_workload

# ``Workload`` (the Union type alias) is importable but deliberately
# not in ``__all__``: typing aliases carry no docstring of their own.
__all__ = [
    "Backend",
    "RunResult",
    "backend_for_config",
    "backend_names",
    "config_signature",
    "environment_provenance",
    "get_backend",
    "git_revision",
    "merge_run_results",
    "merge_stats",
    "register_backend",
    "resolve_shards",
    "resolve_workload",
    "run_sharded",
]


def __getattr__(name):
    # The sharded driver is resolved lazily: it pulls in the worker-pool
    # machinery (repro.parallel), which library-only users never need.
    if name in ("run_sharded", "resolve_shards"):
        from repro.core import sharded as _sharded

        return getattr(_sharded, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
