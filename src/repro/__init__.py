"""repro — a reproduction of FINGERS (ASPLOS 2022).

FINGERS is a graph-mining accelerator that exploits branch-, set-, and
segment-level parallelism inside each processing element.  This package
provides the full stack of the paper's system:

* a pattern-aware graph mining library (graphs, pattern compiler,
  reference engine) usable stand-alone;
* cycle-approximate timing models of the FINGERS accelerator and its
  FlexMiner baseline;
* the benchmark harness that regenerates every table and figure of the
  paper's evaluation (see ``benchmarks/`` and EXPERIMENTS.md).

Quickstart::

    from repro import load_dataset, count
    graph = load_dataset("Mi")
    print(count(graph, "tc"))           # triangle count

    from repro import simulate, FingersConfig, FlexMinerConfig
    fingers = simulate(graph, "tc", FingersConfig(num_pes=1))
    baseline = simulate(graph, "tc", FlexMinerConfig(num_pes=1))
    print(baseline.cycles / fingers.cycles)   # single-PE speedup
"""

from repro.graph import CSRGraph, load_dataset, dataset_names, from_edges
from repro.pattern import (
    Pattern,
    named_pattern,
    compile_plan,
    compile_multi_plan,
    motif_patterns,
    PATTERN_NAMES,
)
from repro.mining import count, embeddings, motif_census

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "load_dataset",
    "dataset_names",
    "from_edges",
    "Pattern",
    "named_pattern",
    "compile_plan",
    "compile_multi_plan",
    "motif_patterns",
    "PATTERN_NAMES",
    "count",
    "embeddings",
    "motif_census",
    "__version__",
]


def __getattr__(name):
    # Hardware-layer exports are resolved lazily so the pure-algorithm
    # stack can be imported without the hw package (and to keep import
    # time low for library-only users).
    if name in (
        "FingersConfig",
        "FlexMinerConfig",
        "simulate",
        "speedup_grid",
        "SimResult",
    ):
        from repro.hw import api as _hw_api

        return getattr(_hw_api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
