"""Sensitivity studies: are the paper's conclusions robust to our
timing-model parameters?

The cycle-approximate model has free parameters the paper does not pin
down (DRAM latency, cache hit latency, NoC provisioning).  These sweeps
show the headline conclusion — FINGERS beats FlexMiner, more so where
stalls dominate — holds across wide parameter ranges, and in the
direction the mechanism predicts:

* *more* memory latency → *bigger* FINGERS advantage (task groups hide
  stalls; strict DFS cannot);
* shared-cache hit latency moves both designs together;
* the NoC is transparent until its bandwidth drops near the demand.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.bench.report import format_table
from repro.bench.runner import run_cached
from repro.bench.workloads import roots_for
from repro.graph.datasets import load_dataset
from repro.hw.api import FingersConfig, FlexMinerConfig, MemoryConfig
from repro.hw.noc import NoCConfig

__all__ = [
    "SensitivityResult",
    "sensitivity_dram_latency",
    "sensitivity_hit_latency",
    "sensitivity_noc_bandwidth",
]


@dataclass(frozen=True)
class SensitivityResult:
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    speedups: dict

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


def _sweep(
    title: str,
    param_name: str,
    values: Sequence,
    make_memory,
    graph_name: str,
    pattern: str,
) -> SensitivityResult:
    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    speedups: dict = {}
    rows = []
    for value in values:
        mem = make_memory(value)
        fing = run_cached(
            graph, graph_name, pattern, FingersConfig(num_pes=1), mem, roots
        )
        flex = run_cached(
            graph, graph_name, pattern, FlexMinerConfig(num_pes=1), mem, roots
        )
        speedup = fing.speedup_over(flex)
        speedups[value] = speedup
        rows.append(
            (
                value,
                f"{fing.cycles:,.0f}",
                f"{flex.cycles:,.0f}",
                f"{speedup:.2f}",
            )
        )
    return SensitivityResult(
        title=title,
        headers=(param_name, "FINGERS cycles", "FlexMiner cycles", "speedup"),
        rows=tuple(rows),
        speedups=speedups,
    )


def sensitivity_dram_latency(
    latencies: Sequence[int] = (50, 100, 200, 400, 800),
    graph_name: str = "Pa",
    pattern: str = "tc",
) -> SensitivityResult:
    """Single-PE speedup vs DRAM latency on a memory-bound job."""
    return _sweep(
        f"Sensitivity: DRAM latency ({pattern} on {graph_name}, 1 PE)",
        "dram_latency",
        latencies,
        lambda v: replace(MemoryConfig(), dram_latency=v),
        graph_name,
        pattern,
    )


def sensitivity_hit_latency(
    latencies: Sequence[int] = (2, 4, 8, 16, 32),
    graph_name: str = "As",
    pattern: str = "tc",
) -> SensitivityResult:
    """Single-PE speedup vs shared-cache hit latency (cache-resident job)."""
    return _sweep(
        f"Sensitivity: shared-cache hit latency ({pattern} on {graph_name})",
        "hit_latency",
        latencies,
        lambda v: replace(MemoryConfig(), shared_cache_hit_latency=v),
        graph_name,
        pattern,
    )


def sensitivity_noc_bandwidth(
    bandwidths: Sequence[float] = (1, 4, 16, 64, 256),
    graph_name: str = "Or",
    pattern: str = "tc",
) -> SensitivityResult:
    """Single-PE speedup vs NoC bandwidth (bytes/cycle)."""
    return _sweep(
        f"Sensitivity: NoC bandwidth ({pattern} on {graph_name})",
        "noc_B/cyc",
        bandwidths,
        lambda v: replace(
            MemoryConfig(), noc=NoCConfig(bytes_per_cycle=float(v))
        ),
        graph_name,
        pattern,
    )
