"""Plain-text rendering of benchmark results in the paper's shapes."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["format_table", "format_grid", "geometric_mean"]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's "on average" for speedups)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width text table."""
    cols = len(headers)
    widths = [len(str(h)) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != cols:
            raise ValueError("row width mismatch")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_grid(
    grid: Mapping[tuple[str, str], float],
    *,
    row_keys: Sequence[str],
    col_keys: Sequence[str],
    title: str | None = None,
    fmt: str = "{:.2f}",
) -> str:
    """Render a {(row, col): value} mapping as the paper's bar-chart data:
    one row per pattern, one column per graph, plus a geo-mean column."""
    headers = ["pattern"] + list(col_keys) + ["geomean"]
    rows = []
    for rk in row_keys:
        vals = [grid.get((rk, ck), float("nan")) for ck in col_keys]
        cells = [rk] + [fmt.format(v) for v in vals]
        cells.append(fmt.format(geometric_mean([v for v in vals if v == v])))
        rows.append(cells)
    all_vals = [v for v in grid.values() if v == v]
    table = format_table(headers, rows, title=title)
    if all_vals:
        table += (
            f"\noverall geomean = {geometric_mean(all_vals):.2f}"
            f", max = {max(all_vals):.2f}"
        )
    return table


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
