"""``python -m repro.bench`` — regenerate every table and figure.

Runs all experiments (paper tables/figures plus the ablations and the
software study) in one process so the run cache is shared, printing each
rendered result and optionally writing them to a directory::

    python -m repro.bench                  # print everything
    python -m repro.bench --out results/   # also write one .txt per exp
    python -m repro.bench --only fig9 fig12
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench import ablations, experiments
from repro.bench.sensitivity import (
    sensitivity_dram_latency,
    sensitivity_hit_latency,
    sensitivity_noc_bandwidth,
)
from repro.bench.software import software_comparison, software_scaling

ALL_EXPERIMENTS = {
    "table1": experiments.table1,
    "table2": experiments.table2,
    "fig9": experiments.fig9,
    "fig10": experiments.fig10,
    "fig11": experiments.fig11,
    "fig12": experiments.fig12,
    "fig13": experiments.fig13,
    "table3": experiments.table3,
    "ablation_scheduling": ablations.ablation_scheduling,
    "ablation_max_load": ablations.ablation_max_load,
    "ablation_dividers": ablations.ablation_dividers,
    "ablation_group_size": ablations.ablation_group_size,
    "ablation_imbalance": ablations.ablation_imbalance,
    "ablation_edge_induced": ablations.ablation_edge_induced,
    "software_scaling": software_scaling,
    "software_comparison": software_comparison,
    "sensitivity_dram_latency": sensitivity_dram_latency,
    "sensitivity_hit_latency": sensitivity_hit_latency,
    "sensitivity_noc_bandwidth": sensitivity_noc_bandwidth,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench")
    parser.add_argument("--out", help="directory for per-experiment .txt files")
    parser.add_argument(
        "--only", nargs="+", choices=sorted(ALL_EXPERIMENTS),
        help="run only these experiments",
    )
    args = parser.parse_args(argv)

    names = args.only or list(ALL_EXPERIMENTS)
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)

    for name in names:
        start = time.time()
        result = ALL_EXPERIMENTS[name]()
        text = result.render()
        elapsed = time.time() - start
        print(f"\n=== {name} ({elapsed:.1f}s) ===")
        print(text)
        if out_dir:
            (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
