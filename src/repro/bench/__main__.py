"""``python -m repro.bench`` — regenerate every table and figure.

Runs all experiments (paper tables/figures plus the ablations and the
software study) in one process so the run cache is shared, printing each
rendered result::

    python -m repro.bench                  # print everything
    python -m repro.bench --only fig9 fig12
    python -m repro.bench --jobs 8         # shard roots over 8 processes
    python -m repro.bench --no-cache       # ignore the persistent cache
    python -m repro.bench --profile-kernels  # kernel dispatch counters

This command only prints.  Persisted artifacts go through the result
store and the report generator — ``repro exp run`` records rows,
``repro exp report <run> --format txt`` regenerates the text view (the
``--out`` .txt emitter this command used to carry is retired;
docs/BENCHMARKS.md).

Results are memoized on disk (``REPRO_CACHE_DIR``, default
``~/.cache/repro``; see docs/PARALLELISM.md), so a repeated sweep with a
warm cache performs zero simulator calls — the closing "run cache"
summary line reports the exact hit/miss/simulate counts.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import ablations, experiments
from repro.bench import runner as _runner
from repro.bench.sensitivity import (
    sensitivity_dram_latency,
    sensitivity_hit_latency,
    sensitivity_noc_bandwidth,
)
from repro.bench.software import software_comparison, software_scaling

ALL_EXPERIMENTS = {
    "table1": experiments.table1,
    "table2": experiments.table2,
    "fig9": experiments.fig9,
    "fig10": experiments.fig10,
    "fig11": experiments.fig11,
    "fig12": experiments.fig12,
    "fig13": experiments.fig13,
    "table3": experiments.table3,
    "ablation_scheduling": ablations.ablation_scheduling,
    "ablation_max_load": ablations.ablation_max_load,
    "ablation_dividers": ablations.ablation_dividers,
    "ablation_group_size": ablations.ablation_group_size,
    "ablation_imbalance": ablations.ablation_imbalance,
    "ablation_edge_induced": ablations.ablation_edge_induced,
    "software_scaling": software_scaling,
    "software_comparison": software_comparison,
    "sensitivity_dram_latency": sensitivity_dram_latency,
    "sensitivity_hit_latency": sensitivity_hit_latency,
    "sensitivity_noc_bandwidth": sensitivity_noc_bandwidth,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench")
    parser.add_argument(
        "--only", nargs="+", choices=sorted(ALL_EXPERIMENTS),
        help="run only these experiments",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="shard simulations over N worker processes (sharded model; "
             "results are identical for every N)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--profile-kernels", action="store_true",
        help="print set-op kernel dispatch counters after the sweep "
             "(docs/KERNELS.md; counts cover this process only)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    _runner.configure(jobs=args.jobs, disk_cache=not args.no_cache)
    _runner.reset_stats()
    if args.profile_kernels:
        from repro.setops.kernels import reset_kernel_counters

        reset_kernel_counters()

    names = args.only or list(ALL_EXPERIMENTS)
    for name in names:
        start = time.time()
        result = ALL_EXPERIMENTS[name]()
        text = result.render()
        elapsed = time.time() - start
        print(f"\n=== {name} ({elapsed:.1f}s) ===")
        print(text)
    stats = _runner.runner_stats()
    from repro.cache import cache_dir

    print(
        f"\nrun cache: {stats.memo_hits} memo hits, {stats.disk_hits} disk "
        f"hits, {stats.simulate_calls} simulator calls"
        + ("" if args.no_cache else f" (disk: {cache_dir()})")
    )
    if args.profile_kernels:
        from repro.setops.kernels import kernel_counters

        counters = kernel_counters()
        print("\nkernel dispatch counters:")
        if not counters:
            print("  (no set ops executed in this process — cache hits "
                  "and sharded workers bypass the local counters)")
        for key in sorted(counters):
            print(f"  {key:24s} {counters[key]}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
