"""Canonical locations for benchmark artifacts.

Before this module existed, bench outputs were written relative to the
current working directory — running ``repro bench --out results/`` from
anywhere but the repo root scattered files across the filesystem, and
pytest-invoked benchmarks and CLI sweeps disagreed about where "the"
results lived.  Everything now resolves through :func:`results_dir`:

* ``$REPRO_RESULTS_DIR``, when set, wins (tests point it at tmp dirs);
* otherwise the checkout's ``benchmarks/results/`` when this package is
  imported from a source tree;
* otherwise ``./benchmarks/results`` under the current directory (the
  installed-package fallback).

The experiment store (:mod:`repro.experiments.store`) keeps its
versioned JSONL runs under ``results_dir()/store/`` and generated
reports under ``results_dir()/reports/``; see docs/BENCHMARKS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["reports_dir", "results_dir", "store_dir"]

#: Environment variable overriding the results directory.
RESULTS_ENV = "REPRO_RESULTS_DIR"


def _default_results_dir() -> Path:
    # src/repro/bench/paths.py -> src/repro/bench -> src/repro -> src -> root
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "results"
    return Path.cwd() / "benchmarks" / "results"


def results_dir(*, create: bool = False) -> Path:
    """The canonical benchmark-results directory.

    Resolution: ``$REPRO_RESULTS_DIR`` → the source checkout's
    ``benchmarks/results/`` → ``./benchmarks/results``.  With
    ``create=True`` the directory is created (parents included) before
    being returned.
    """
    env = os.environ.get(RESULTS_ENV)
    path = Path(env) if env else _default_results_dir()
    if create:
        path.mkdir(parents=True, exist_ok=True)
    return path


def store_dir(*, create: bool = False) -> Path:
    """Where the experiment store keeps its JSONL run files
    (``results_dir()/store``)."""
    path = results_dir() / "store"
    if create:
        path.mkdir(parents=True, exist_ok=True)
    return path


def reports_dir(*, create: bool = False) -> Path:
    """Where generated sweep reports land (``results_dir()/reports``)."""
    path = results_dir() / "reports"
    if create:
        path.mkdir(parents=True, exist_ok=True)
    return path
