"""Benchmark grid definitions (paper section 5, "Methodology").

Seven workloads — 3-, 4-, 5-clique, tailed triangle, 4-cycle, diamond, and
the multi-pattern 3-motif count — over the six graph analogs.
"""

from __future__ import annotations

from repro.graph.csr import CSRGraph
from repro.graph.datasets import dataset_names, load_dataset

__all__ = [
    "BENCHMARK_PATTERNS",
    "BENCHMARK_GRAPHS",
    "ROOT_STRIDE",
    "roots_for",
    "workload_graphs",
]

#: The paper's seven evaluated workloads, in its plotting order.
BENCHMARK_PATTERNS = ["tc", "4cl", "5cl", "tt", "cyc", "dia", "3mc"]

#: The paper's six graphs, in its Table 1 order.
BENCHMARK_GRAPHS = dataset_names()

#: Deterministic root-vertex stride per graph.  Mining every Nth root
#: keeps the heavy analogs (millions of tasks on Lj/Or) tractable in a
#: pure-Python timing simulation; degree-descending vertex ids mean the
#: hub roots are always included.  Identical roots go to both designs, so
#: every reported speedup is a ratio over the same functional work.
ROOT_STRIDE = {
    "As": 1,
    "Mi": 1,
    "Yo": 2,
    "Pa": 4,
    "Lj": 8,
    "Or": 6,
}


def roots_for(name: str, graph: CSRGraph | None = None) -> list[int]:
    """The sampled root set for one graph analog."""
    graph = graph if graph is not None else load_dataset(name)
    stride = ROOT_STRIDE.get(name, 1)
    return list(range(0, graph.num_vertices, stride))


def workload_graphs(names: list[str] | None = None) -> dict[str, CSRGraph]:
    """Load the named analogs (default: all six)."""
    return {n: load_dataset(n) for n in (names or BENCHMARK_GRAPHS)}
