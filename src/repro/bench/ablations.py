"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's own figures: each isolates one mechanism of
the FINGERS design (or of our model of it) and quantifies its
contribution.

* **Root scheduling** — dynamic vs static policies.  Realizes the paper's
  section 2.3 motivation (coarse-grained load imbalance on power-law
  graphs) and its section 6.3 future-work locality idea.
* **Max-load threshold** — the task divider's splitting knob
  (section 4.2).
* **Divider count** — how many parallel task dividers a PE needs.
* **Task-group size** — a finer-grained version of Figure 11.
* **Load-imbalance anatomy** — per-PE busy-time spread, demonstrating why
  single-PE performance matters on skewed graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bench.report import format_table
from repro.bench.runner import run_cached
from repro.bench.workloads import roots_for
from repro.graph.datasets import load_dataset
from repro.hw.api import FingersConfig

__all__ = [
    "ablation_scheduling",
    "ablation_max_load",
    "ablation_dividers",
    "ablation_group_size",
    "ablation_imbalance",
    "ablation_edge_induced",
]


@dataclass(frozen=True)
class AblationResult:
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    data: dict

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


def ablation_scheduling(
    graph_name: str = "Lj",
    pattern: str = "tc",
    num_pes: int = 8,
) -> AblationResult:
    """Global root-scheduling policies on a power-law graph."""
    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    data = {}
    rows = []
    base = None
    for policy in ("dynamic", "static_interleave", "static_block"):
        res = run_cached(
            graph, graph_name, pattern, FingersConfig(num_pes=num_pes),
            None, roots, schedule=policy,
        )
        if base is None:
            base = res.cycles
        data[policy] = res
        rows.append(
            (
                policy,
                f"{res.cycles:,.0f}",
                f"{base / res.cycles:.2f}",
                f"{res.chip.load_imbalance:.2f}",
            )
        )
    return AblationResult(
        title=(
            f"Ablation: root scheduling policy ({pattern} on {graph_name}, "
            f"{num_pes} PEs)"
        ),
        headers=("policy", "cycles", "speedup vs dynamic", "imbalance"),
        rows=tuple(rows),
        data=data,
    )


def ablation_max_load(
    graph_name: str = "Or",
    pattern: str = "tt",
    values: Sequence[int] = (1, 2, 3, 6, 12),
) -> AblationResult:
    """Task-divider max-load threshold (splitting granularity)."""
    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    data = {}
    rows = []
    base = None
    for value in values:
        res = run_cached(
            graph, graph_name, pattern,
            FingersConfig(num_pes=1, max_load=value),
            None, roots,
        )
        if base is None:
            base = res.cycles
        data[value] = res
        rows.append((value, f"{res.cycles:,.0f}", f"{base / res.cycles:.2f}"))
    return AblationResult(
        title=f"Ablation: divider max-load threshold ({pattern} on {graph_name})",
        headers=("max_load", "cycles", "speedup vs max_load=1"),
        rows=tuple(rows),
        data=data,
    )


def ablation_dividers(
    graph_name: str = "Or",
    pattern: str = "tt",
    values: Sequence[int] = (1, 3, 6, 12, 24),
) -> AblationResult:
    """How many parallel task dividers one PE needs (default 12)."""
    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    data = {}
    rows = []
    base = None
    for value in values:
        res = run_cached(
            graph, graph_name, pattern,
            FingersConfig(num_pes=1, num_dividers=value),
            None, roots,
        )
        if base is None:
            base = res.cycles
        data[value] = res
        rows.append((value, f"{res.cycles:,.0f}", f"{base / res.cycles:.2f}"))
    return AblationResult(
        title=f"Ablation: task-divider count ({pattern} on {graph_name})",
        headers=("dividers", "cycles", "speedup vs 1"),
        rows=tuple(rows),
        data=data,
    )


def ablation_group_size(
    graph_name: str = "Pa",
    pattern: str = "tc",
    values: Sequence[int | None] = (1, 2, 4, 8, 16, None),
) -> AblationResult:
    """Task-group size sweep (None = the paper's automatic policy)."""
    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    data = {}
    rows = []
    base = None
    for value in values:
        res = run_cached(
            graph, graph_name, pattern,
            FingersConfig(num_pes=1, task_group_size=value),
            None, roots,
        )
        if base is None:
            base = res.cycles
        data[value] = res
        label = "auto" if value is None else str(value)
        rows.append(
            (
                label,
                res.chip.task_group_size,
                f"{res.cycles:,.0f}",
                f"{base / res.cycles:.2f}",
            )
        )
    return AblationResult(
        title=f"Ablation: task-group size ({pattern} on {graph_name})",
        headers=("requested", "effective", "cycles", "speedup vs 1"),
        rows=tuple(rows),
        data=data,
    )


def ablation_edge_induced(
    graph_name: str = "As",
    patterns: Sequence[str] = ("tt", "cyc", "dia"),
) -> AblationResult:
    """Vertex- vs edge-induced semantics (paper section 2.1).

    Edge-induced plans drop the subtraction ops (no exact non-edge
    matching), which removes exactly the large-set operations that give
    FINGERS its biggest wins on tt/cyc — so the speedup over FlexMiner
    shrinks, while counts grow (more embeddings match).  Supporting both
    modes is the capability TrieJax lacks (section 2.2).
    """
    from repro.hw.api import FlexMinerConfig
    from repro.pattern.compiler import compile_plan
    from repro.pattern.pattern import named_pattern

    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    data: dict = {}
    rows = []
    for pattern in patterns:
        row: list = [pattern]
        for vertex_induced in (True, False):
            plan = compile_plan(
                named_pattern(pattern), vertex_induced=vertex_induced
            )
            fing = run_cached(
                graph, graph_name, plan, FingersConfig(num_pes=1), None, roots
            )
            flex = run_cached(
                graph, graph_name, plan, FlexMinerConfig(num_pes=1), None, roots
            )
            mode = "vertex" if vertex_induced else "edge"
            data[(pattern, mode)] = (fing, flex)
            row.extend([f"{fing.count:,}", f"{fing.speedup_over(flex):.2f}"])
        rows.append(tuple(row))
    return AblationResult(
        title=f"Ablation: vertex- vs edge-induced semantics ({graph_name}, 1 PE)",
        headers=(
            "pattern", "v-induced count", "v-induced speedup",
            "e-induced count", "e-induced speedup",
        ),
        rows=tuple(rows),
        data=data,
    )


def ablation_imbalance(
    graph_name: str = "Lj",
    pattern: str = "tc",
    pe_counts: Sequence[int] = (1, 2, 4, 8, 16),
) -> AblationResult:
    """Coarse-grained load imbalance vs PE count (paper section 2.3).

    On power-law graphs the hub-rooted trees serialize; adding PEs stops
    helping once the largest tree dominates — the motivation for strong
    single-PE performance.
    """
    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    data = {}
    rows = []
    base = None
    for num_pes in pe_counts:
        res = run_cached(
            graph, graph_name, pattern, FingersConfig(num_pes=num_pes),
            None, roots,
        )
        if base is None:
            base = res.cycles
        data[num_pes] = res
        rows.append(
            (
                num_pes,
                f"{res.cycles:,.0f}",
                f"{base / res.cycles:.2f}",
                f"{res.chip.load_imbalance:.2f}",
            )
        )
    return AblationResult(
        title=(
            f"Ablation: PE scaling and load imbalance ({pattern} on "
            f"{graph_name})"
        ),
        headers=("PEs", "cycles", "scaling vs 1 PE", "imbalance"),
        rows=tuple(rows),
        data=data,
    )
