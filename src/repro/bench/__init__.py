"""Benchmark harness: regenerates every table and figure of the paper.

Each experiment function returns structured data *and* renders the same
rows/series the paper reports; ``benchmarks/`` wraps them in
pytest-benchmark entry points.  See EXPERIMENTS.md for paper-vs-measured
records.

Root sampling: the Lj/Or/Pa analogs are mined from a deterministic stride
of root vertices (see :data:`repro.bench.workloads.ROOT_STRIDE`) to keep
pure-Python simulation times tractable.  Both designs always receive the
same roots, so speedups are exact ratios of identical functional work.
"""

from repro.bench.workloads import (
    BENCHMARK_PATTERNS,
    BENCHMARK_GRAPHS,
    ROOT_STRIDE,
    roots_for,
    workload_graphs,
)
from repro.bench.runner import (
    PairResult,
    RunnerStats,
    configure,
    run_cached,
    run_pair,
    run_software_cached,
    runner_stats,
)
from repro.bench import experiments
from repro.bench.report import format_table, format_grid, geometric_mean

__all__ = [
    "BENCHMARK_PATTERNS",
    "BENCHMARK_GRAPHS",
    "ROOT_STRIDE",
    "roots_for",
    "workload_graphs",
    "run_pair",
    "run_cached",
    "run_software_cached",
    "configure",
    "runner_stats",
    "RunnerStats",
    "PairResult",
    "experiments",
    "format_table",
    "format_grid",
    "geometric_mean",
]
