"""Experiment definitions: one function per paper table/figure.

Every function returns a small result object carrying the structured data
plus ``render()`` producing the same rows/series the paper reports.  The
per-experiment index lives in DESIGN.md; paper-vs-measured records live in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.report import format_grid, format_table, geometric_mean
from repro.bench.runner import run_cached, run_pair
from repro.bench.workloads import (
    BENCHMARK_GRAPHS,
    BENCHMARK_PATTERNS,
    roots_for,
)
from repro.graph.datasets import CACHE_SCALE, DATASET_SPECS, load_dataset
from repro.graph.stats import graph_stats
from repro.hw.api import FingersConfig, FlexMinerConfig, MemoryConfig
from repro.hw.area import (
    fingers_pe_area,
    fingers_pe_power_mw,
    flexminer_pe_area_15nm,
    iso_area_pe_count,
    iso_area_segment_length,
    scale_28_to_15,
)

__all__ = [
    "table1",
    "table2",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table3",
]


# ----------------------------------------------------------------------
# Table 1 — datasets
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[tuple, ...]

    def render(self) -> str:
        return format_table(
            [
                "Dataset", "#V", "#E", "AvgDeg", "MaxDeg",
                "paper #V", "paper #E", "paper Avg", "paper Max",
            ],
            self.rows,
            title="Table 1: evaluated graphs (analog vs paper original)",
        )


def table1() -> Table1Result:
    """Dataset statistics, analog columns beside the paper's originals."""
    rows = []
    for name in BENCHMARK_GRAPHS:
        spec = DATASET_SPECS[name]
        s = graph_stats(load_dataset(name))
        rows.append(
            (
                f"{spec.full_name} ({name})",
                s.num_vertices,
                s.num_edges,
                s.avg_degree,
                s.max_degree,
                spec.paper_vertices,
                spec.paper_edges,
                spec.paper_avg_deg,
                spec.paper_max_deg,
            )
        )
    return Table1Result(rows=tuple(rows))


# ----------------------------------------------------------------------
# Table 2 / section 6.1 — area, power, frequency
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Result:
    components: tuple[tuple[str, float, float], ...]
    total_mm2: float
    pe_area_15nm: float
    flexminer_pe_area_15nm: float
    iso_area_fingers_pes: int
    power: dict

    def render(self) -> str:
        rows = [(n, a, p) for n, a, p in self.components]
        rows.append(("PE Total", self.total_mm2, 100.0))
        table = format_table(
            ["Component", "Area (mm2)", "% Area"],
            rows,
            title="Table 2: area breakdown of one FINGERS PE (28 nm)",
        )
        table += (
            f"\nFINGERS PE at 15 nm: {self.pe_area_15nm:.3f} mm2"
            f" (< 2x FlexMiner PE {self.flexminer_pe_area_15nm:.2f} mm2:"
            f" {self.pe_area_15nm < 2 * self.flexminer_pe_area_15nm})"
            f"\niso-area FINGERS PEs for a 40-PE FlexMiner chip:"
            f" {self.iso_area_fingers_pes} (paper uses 20)"
            f"\nPE power: {self.power['compute_mw']:.1f} mW compute"
            f" + {self.power['caches_mw']:.1f} mW caches"
        )
        return table


def table2(config: FingersConfig | None = None) -> Table2Result:
    """PE area breakdown plus the section 6.1 derived claims."""
    config = config or FingersConfig()
    area = fingers_pe_area(config)
    pct = area.percentages()
    components = (
        (f"{config.num_ius} Intersect Units", area.intersect_units,
         pct["intersect_units"]),
        (f"{config.num_dividers} Task Dividers", area.task_dividers,
         pct["task_dividers"]),
        ("2 Stream Buffers", area.stream_buffers, pct["stream_buffers"]),
        ("Private Cache", area.private_cache, pct["private_cache"]),
        ("Others", area.others, pct["others"]),
    )
    return Table2Result(
        components=components,
        total_mm2=area.total,
        pe_area_15nm=scale_28_to_15(area.total),
        flexminer_pe_area_15nm=flexminer_pe_area_15nm(),
        iso_area_fingers_pes=min(iso_area_pe_count(config), 20),
        power=fingers_pe_power_mw(config),
    )


# ----------------------------------------------------------------------
# Figures 9 and 10 — speedup grids
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpeedupGridResult:
    title: str
    grid: dict
    patterns: tuple[str, ...]
    graphs: tuple[str, ...]

    @property
    def mean(self) -> float:
        return geometric_mean(list(self.grid.values()))

    @property
    def max(self) -> float:
        return max(self.grid.values())

    def render(self) -> str:
        return format_grid(
            self.grid,
            row_keys=self.patterns,
            col_keys=self.graphs,
            title=self.title,
        )


def _speedup_grid(
    title: str,
    fingers: FingersConfig,
    flexminer: FlexMinerConfig,
    patterns: Sequence[str],
    graphs: Sequence[str],
) -> SpeedupGridResult:
    grid = {}
    for gname in graphs:
        graph = load_dataset(gname)
        roots = roots_for(gname, graph)
        for pattern in patterns:
            pair = run_pair(
                graph, gname, pattern, fingers, flexminer, roots=roots
            )
            grid[(pattern, gname)] = pair.speedup
    return SpeedupGridResult(
        title=title,
        grid=grid,
        patterns=tuple(patterns),
        graphs=tuple(graphs),
    )


def fig9(
    patterns: Sequence[str] | None = None,
    graphs: Sequence[str] | None = None,
) -> SpeedupGridResult:
    """Figure 9: single-PE speedups of FINGERS over FlexMiner.

    Paper: 6.2x geometric mean, up to 13.2x.
    """
    return _speedup_grid(
        "Figure 9: single-PE speedup, FINGERS vs FlexMiner",
        FingersConfig(num_pes=1),
        FlexMinerConfig(num_pes=1),
        patterns or BENCHMARK_PATTERNS,
        graphs or BENCHMARK_GRAPHS,
    )


def fig10(
    patterns: Sequence[str] | None = None,
    graphs: Sequence[str] | None = None,
) -> SpeedupGridResult:
    """Figure 10: iso-area chip speedups, 20-PE FINGERS vs 40-PE FlexMiner.

    Paper: 2.8x geometric mean, up to 8.9x.
    """
    return _speedup_grid(
        "Figure 10: overall speedup, 20-PE FINGERS vs 40-PE FlexMiner",
        FingersConfig(num_pes=20),
        FlexMinerConfig(num_pes=40),
        patterns or BENCHMARK_PATTERNS,
        graphs or BENCHMARK_GRAPHS,
    )


# ----------------------------------------------------------------------
# Figure 11 — branch-level parallelism / pseudo-DFS ablation
# ----------------------------------------------------------------------


def fig11(
    patterns: Sequence[str] | None = None,
    graphs: Sequence[str] | None = None,
) -> SpeedupGridResult:
    """Figure 11: gain from pseudo-DFS (task groups) over strict order.

    Speedup of the FINGERS PE with automatic task-group sizing over the
    same PE with group size 1 (no branch-level parallelism).  Paper: up to
    5x, biggest for the clique patterns.
    """
    patterns = patterns or BENCHMARK_PATTERNS
    graphs = graphs or ["As", "Yo", "Lj"]
    grid = {}
    for gname in graphs:
        graph = load_dataset(gname)
        roots = roots_for(gname, graph)
        for pattern in patterns:
            on = run_cached(
                graph, gname, pattern, FingersConfig(num_pes=1), None, roots
            )
            off = run_cached(
                graph, gname, pattern,
                FingersConfig(num_pes=1, task_group_size=1), None, roots,
            )
            grid[(pattern, gname)] = on.speedup_over(off)
    return SpeedupGridResult(
        title="Figure 11: speedup from branch-level parallelism (pseudo-DFS)",
        grid=grid,
        patterns=tuple(patterns),
        graphs=tuple(graphs),
    )


# ----------------------------------------------------------------------
# Figure 12 — PE scalability in #IUs (iso-area)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Fig12Result:
    graph: str
    iu_counts: tuple[int, ...]
    series: dict  # {(pattern, num_ius): speedup over 1 IU}

    def render(self) -> str:
        patterns = sorted({p for p, _ in self.series})
        rows = []
        for pattern in patterns:
            rows.append(
                [pattern]
                + [
                    f"{self.series.get((pattern, n), float('nan')):.2f}"
                    for n in self.iu_counts
                ]
            )
        return format_table(
            ["pattern"] + [str(n) for n in self.iu_counts],
            rows,
            title=(
                f"Figure 12: PE scalability vs #IUs on {self.graph} "
                "(iso-area: #IUs x s_l = 384; speedup over 1 IU)"
            ),
        )


def fig12(
    patterns: Sequence[str] = ("4cl", "cyc", "tt"),
    iu_counts: Sequence[int] = (1, 2, 4, 8, 16, 24, 48),
    graph_name: str = "Yo",
) -> Fig12Result:
    """Figure 12: single-PE speedup vs #IUs under the iso-area rule.

    Includes the paper's ``tt-unlimited`` series (segment length pinned at
    16 while IUs grow, i.e. area allowed to increase).
    """
    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    series: dict = {}
    bases: dict = {}
    for pattern in patterns:
        base = None
        for n in iu_counts:
            cfg = FingersConfig(
                num_pes=1, num_ius=n,
                long_segment_len=iso_area_segment_length(n),
            )
            res = run_cached(graph, graph_name, pattern, cfg, None, roots)
            if base is None:
                base = res.cycles
                bases[pattern] = base
            series[(pattern, n)] = base / res.cycles
    # tt-unlimited: fixed 16-wide segments regardless of the IU count,
    # normalized against the *same* 1-IU baseline as the iso-area series
    # of the matching pattern, so the two curves are directly comparable
    # (as in the paper).  Falls back to the first requested pattern when
    # tt is not in the sweep.
    unlimited = "tt" if "tt" in patterns else patterns[0]
    for n in iu_counts:
        cfg = FingersConfig(num_pes=1, num_ius=n, long_segment_len=16)
        res = run_cached(graph, graph_name, unlimited, cfg, None, roots)
        series[(f"{unlimited}-unlimited", n)] = bases[unlimited] / res.cycles
    return Fig12Result(
        graph=graph_name, iu_counts=tuple(iu_counts), series=series
    )


# ----------------------------------------------------------------------
# Figure 13 — shared-cache miss curves
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Fig13Result:
    pattern: str
    capacities_mb: tuple[float, ...]
    curves: dict  # {(graph, design, capacity_mb): miss_rate}

    def render(self) -> str:
        keys = sorted({(g, d) for g, d, _ in self.curves})
        rows = []
        for g, d in keys:
            rows.append(
                [f"{g}-{d}"]
                + [
                    f"{100 * self.curves[(g, d, c)]:.1f}%"
                    for c in self.capacities_mb
                ]
            )
        return format_table(
            ["series"] + [f"{c:g}MB(/{CACHE_SCALE})" for c in self.capacities_mb],
            rows,
            title=(
                f"Figure 13: shared-cache miss rate vs capacity ({self.pattern};"
                f" capacities are paper MB, scaled by 1/{CACHE_SCALE})"
            ),
        )


def fig13(
    graphs: Sequence[str] = ("Mi", "Yo", "Lj"),
    capacities_mb: Sequence[float] = (2, 4, 8, 16),
    pattern: str = "cyc",
) -> Fig13Result:
    """Figure 13: miss-rate curves for both designs (chip configs of Fig 10)."""
    curves: dict = {}
    for gname in graphs:
        graph = load_dataset(gname)
        roots = roots_for(gname, graph)
        for cap in capacities_mb:
            mem = MemoryConfig().with_shared_cache(
                int(cap * 1024 * 1024) // CACHE_SCALE
            )
            fing = run_cached(
                graph, gname, pattern, FingersConfig(num_pes=20), mem, roots
            )
            flex = run_cached(
                graph, gname, pattern, FlexMinerConfig(num_pes=40), mem, roots
            )
            curves[(gname, "FINGERS", cap)] = fing.chip.shared_cache.miss_rate
            curves[(gname, "FlexMiner", cap)] = flex.chip.shared_cache.miss_rate
    return Fig13Result(
        pattern=pattern,
        capacities_mb=tuple(capacities_mb),
        curves=curves,
    )


# ----------------------------------------------------------------------
# Table 3 — IU utilization and load balance
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table3Result:
    graph: str
    rows: dict  # {pattern: (active_rate, balance_rate)}

    def render(self) -> str:
        patterns = list(self.rows)
        return format_table(
            ["metric"] + patterns,
            [
                ["Active Rate"]
                + [f"{100 * self.rows[p][0]:.1f}%" for p in patterns],
                ["Balance Rate"]
                + [f"{100 * self.rows[p][1]:.1f}%" for p in patterns],
            ],
            title=f"Table 3: IU utilization and load balance in one PE ({self.graph})",
        )


def table3(
    patterns: Sequence[str] | None = None, graph_name: str = "Mi"
) -> Table3Result:
    """Table 3: active rate and balance rate per pattern on one PE."""
    patterns = list(patterns or BENCHMARK_PATTERNS)
    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    cfg = FingersConfig(num_pes=1)
    rows = {}
    for pattern in patterns:
        res = run_cached(graph, graph_name, pattern, cfg, None, roots)
        combined = res.chip.combined
        rows[pattern] = (
            combined.active_rate(cfg.num_ius),
            combined.balance_rate,
        )
    return Table3Result(graph=graph_name, rows=rows)
