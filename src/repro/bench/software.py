"""Software-vs-accelerator comparison (the paper's section 3.5 study).

Two questions the paper raises but defers:

1. Does fine-grained (branch-level) parallelism help *software* too?
   Yes — the work-stealing branch-granularity miner fixes the
   tree-granularity load imbalance on power-law graphs — but per-task
   scheduling overheads bound how fine software can slice.
2. How far ahead is the accelerator?  FlexMiner's paper reports an order
   of magnitude over CPU frameworks; FINGERS multiplies that.  We compare
   wall-clock time (cycles / frequency), not raw cycles, since the CPU
   clocks 2.5x higher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bench.report import format_table
from repro.bench.runner import run_cached, run_software_cached
from repro.bench.workloads import roots_for
from repro.graph.datasets import load_dataset
from repro.hw.api import FingersConfig, FlexMinerConfig
from repro.sw import SoftwareConfig

__all__ = ["software_comparison", "software_scaling", "SoftwareBenchResult"]


@dataclass(frozen=True)
class SoftwareBenchResult:
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    data: dict

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


def software_scaling(
    graph_name: str = "Lj",
    pattern: str = "tc",
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
) -> SoftwareBenchResult:
    """Core scaling: tree vs branch granularity on a power-law graph."""
    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    data: dict = {}
    rows = []
    base = None
    for cores in core_counts:
        row = [cores]
        for gran in ("tree", "branch"):
            cfg = SoftwareConfig(num_cores=cores, granularity=gran)
            res = run_software_cached(graph, graph_name, pattern, cfg, roots)
            data[(gran, cores)] = res
            if base is None:
                base = res.cycles
            row.extend([f"{base / res.cycles:.2f}", f"{res.load_imbalance:.2f}"])
        rows.append(tuple(row))
    return SoftwareBenchResult(
        title=(
            f"Software scaling ({pattern} on {graph_name}): tree vs "
            "branch granularity (speedup over 1 core / load imbalance)"
        ),
        headers=("cores", "tree x", "tree imb", "branch x", "branch imb"),
        rows=tuple(rows),
        data=data,
    )


def software_comparison(
    graph_name: str = "Mi",
    pattern: str = "tc",
) -> SoftwareBenchResult:
    """Wall-clock comparison: 16-core CPU vs the two accelerator chips."""
    graph = load_dataset(graph_name)
    roots = roots_for(graph_name, graph)
    data: dict = {}
    rows = []

    sw_cfg = SoftwareConfig(num_cores=16, granularity="branch")
    sw = run_software_cached(graph, graph_name, pattern, sw_cfg, roots)
    sw_time = sw.cycles / sw_cfg.frequency_ghz
    data["software"] = sw

    flex_cfg = FlexMinerConfig(num_pes=40)
    flex = run_cached(graph, graph_name, pattern, flex_cfg, None, roots)
    flex_time = flex.cycles / flex_cfg.frequency_ghz
    data["flexminer"] = flex

    fing_cfg = FingersConfig(num_pes=20)
    fing = run_cached(graph, graph_name, pattern, fing_cfg, None, roots)
    fing_time = fing.cycles / fing_cfg.frequency_ghz
    data["fingers"] = fing

    assert sw.counts == flex.counts == fing.counts
    for name, cycles, time in (
        ("16-core CPU (branch WS)", sw.cycles, sw_time),
        ("FlexMiner (40 PEs)", flex.cycles, flex_time),
        ("FINGERS (20 PEs)", fing.cycles, fing_time),
    ):
        rows.append(
            (
                name,
                f"{cycles:,.0f}",
                f"{time:,.0f}",
                f"{sw_time / time:.1f}",
            )
        )
    return SoftwareBenchResult(
        title=(
            f"Accelerators vs software ({pattern} on {graph_name}; "
            "time in ns at each design's clock)"
        ),
        headers=("design", "cycles", "time (ns)", "speedup vs CPU"),
        rows=tuple(rows),
        data=data,
    )
