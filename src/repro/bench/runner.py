"""Paired-design experiment runner with an in-process result cache.

Several figures share cells (e.g. Figure 9's single-PE baseline also
anchors Figure 11's ablation), so runs are memoized on their full
configuration within one process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.graph.csr import CSRGraph
from repro.hw.api import (
    FingersConfig,
    FlexMinerConfig,
    MemoryConfig,
    SimResult,
    simulate,
)

__all__ = ["PairResult", "run_pair", "run_cached", "clear_cache"]

_CACHE: dict[tuple, SimResult] = {}


@dataclass(frozen=True)
class PairResult:
    """One grid cell: a design run, its baseline run, and the speedup."""

    workload: str
    graph: str
    ours: SimResult
    baseline: SimResult

    @property
    def speedup(self) -> float:
        return self.ours.speedup_over(self.baseline)


def _key(graph_name, workload, config, memory, roots_sig):
    return (graph_name, str(workload), config, memory, roots_sig)


def run_cached(
    graph: CSRGraph,
    graph_name: str,
    workload: str,
    config: FingersConfig | FlexMinerConfig,
    memory: MemoryConfig | None = None,
    roots: Iterable[int] | None = None,
) -> SimResult:
    """Memoized :func:`repro.hw.api.simulate`."""
    roots_list = list(roots) if roots is not None else None
    roots_sig = (
        (len(roots_list), roots_list[0], roots_list[-1])
        if roots_list
        else None
    )
    key = _key(graph_name, workload, config, memory, roots_sig)
    if key not in _CACHE:
        _CACHE[key] = simulate(
            graph, workload, config, memory=memory, roots=roots_list
        )
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()


def run_pair(
    graph: CSRGraph,
    graph_name: str,
    workload: str,
    config: FingersConfig | FlexMinerConfig,
    baseline: FingersConfig | FlexMinerConfig,
    *,
    memory: MemoryConfig | None = None,
    roots: Iterable[int] | None = None,
) -> PairResult:
    """Run one workload on two designs over identical roots."""
    roots_list = list(roots) if roots is not None else None
    ours = run_cached(graph, graph_name, workload, config, memory, roots_list)
    theirs = run_cached(graph, graph_name, workload, baseline, memory, roots_list)
    return PairResult(
        workload=workload, graph=graph_name, ours=ours, baseline=theirs
    )
