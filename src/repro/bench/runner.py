"""Backend-generic experiment runner with layered result caching.

Several figures share cells (e.g. Figure 9's single-PE baseline also
anchors Figure 11's ablation), and whole sweeps are re-run across
processes, so simulation results are memoized twice:

1. an **in-process memo** (same object returned for repeated requests
   within one run), and
2. the **persistent disk cache** (:mod:`repro.cache`): keyed by
   :meth:`repro.core.backend.Backend.cache_key` — backend name and
   version, full graph contents, workload, explicit configuration
   signature, schedule, root-array hash, and execution model — so a
   warm ``python -m repro.bench`` sweep performs zero simulator calls.

Every backend runs through the same :func:`run_backend_cached` path;
``run_cached`` (configuration-dispatched) and ``run_software_cached``
are thin front ends over it.  ``configure(jobs=..., disk_cache=...)``
sets process-wide defaults (the CLI's ``--jobs`` / ``--no-cache`` flags
land here); ``runner_stats()`` reports hit/miss/simulate counters for
the run report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.cache import default_cache
from repro.core.backend import Backend, backend_for_config, get_backend
from repro.core.result import RunResult
from repro.graph.csr import CSRGraph
from repro.hw.api import (
    FingersConfig,
    FlexMinerConfig,
    MemoryConfig,
    SimResult,
)

__all__ = [
    "PairResult",
    "RunnerStats",
    "run_pair",
    "run_backend_cached",
    "run_cached",
    "run_software_cached",
    "clear_cache",
    "configure",
    "reset_stats",
    "runner_stats",
]

_MEMO: dict[str, object] = {}

_UNSET = object()
_DEFAULT_JOBS: int | None = None
_DISK_ENABLED: bool = True


@dataclass(frozen=True)
class RunnerStats:
    """Cache accounting for one process (see ``python -m repro.bench``)."""

    memo_hits: int = 0
    disk_hits: int = 0
    simulate_calls: int = 0

    @property
    def requests(self) -> int:
        return self.memo_hits + self.disk_hits + self.simulate_calls


_STATS = RunnerStats()


def runner_stats() -> RunnerStats:
    """Current counters (immutable snapshot)."""
    return _STATS


def reset_stats() -> None:
    global _STATS
    _STATS = RunnerStats()


def configure(*, jobs=_UNSET, disk_cache=_UNSET) -> None:
    """Set process-wide defaults for every subsequent cached run.

    ``jobs=None`` restores the single-chip model; an integer selects the
    sharded model on that many worker processes.  ``disk_cache=False``
    keeps the in-process memo but stops touching the on-disk cache.
    """
    global _DEFAULT_JOBS, _DISK_ENABLED
    if jobs is not _UNSET:
        _DEFAULT_JOBS = jobs
    if disk_cache is not _UNSET:
        _DISK_ENABLED = bool(disk_cache)


@dataclass(frozen=True)
class PairResult:
    """One grid cell: a design run, its baseline run, and the speedup."""

    workload: str
    graph: str
    ours: SimResult
    baseline: SimResult

    @property
    def speedup(self) -> float:
        return self.ours.speedup_over(self.baseline)


def _cached(key: str, compute, use_disk: bool) -> RunResult:
    """Shared memo + disk lookup with stats accounting."""
    global _STATS
    if key in _MEMO:
        _STATS = replace(_STATS, memo_hits=_STATS.memo_hits + 1)
        return _MEMO[key]
    if use_disk:
        hit, value = default_cache().get(key)
        if hit and isinstance(value, RunResult):
            _STATS = replace(_STATS, disk_hits=_STATS.disk_hits + 1)
            _MEMO[key] = value
            return value
    _STATS = replace(_STATS, simulate_calls=_STATS.simulate_calls + 1)
    result = compute()
    _MEMO[key] = result
    if use_disk:
        stored = result
        if getattr(result, "retry_stats", None) is not None:
            # Recovery accounting describes one past execution, not the
            # result; a cache hit is not a retried run, so never
            # persist it (docs/RESILIENCE.md).
            stored = replace(result, retry_stats=None)
        default_cache().put(key, stored)
    return result


def run_backend_cached(
    backend: Backend | str,
    graph: CSRGraph,
    graph_name: str,
    workload,
    config=None,
    *,
    memory: MemoryConfig | None = None,
    roots: Iterable[int] | None = None,
    schedule: str = "dynamic",
    jobs: int | None = None,
    disk: bool | None = None,
) -> RunResult:
    """Memoized ``backend.run(...)`` (memo + disk layers) for any backend.

    ``graph_name`` is only a label; the cache key uses the graph's full
    content fingerprint (via :meth:`Backend.cache_key`), so renamed or
    regenerated-but-identical graphs behave correctly.  ``jobs``/``disk``
    default to the process-wide settings installed by :func:`configure`.
    The execution model is part of the result's identity: the sharded
    model's cycle count differs from the single-chip model's, but does
    NOT depend on the worker count (docs/PARALLELISM.md), so the key
    only distinguishes sharded vs. unsharded.
    """
    if isinstance(backend, str):
        backend = get_backend(backend)
    if config is None:
        config = backend.default_config()
    roots_list = list(roots) if roots is not None else None
    eff_jobs = jobs if jobs is not None else _DEFAULT_JOBS
    use_disk = _DISK_ENABLED if disk is None else disk
    key = backend.cache_key(
        graph, workload, config,
        memory=memory, roots=roots_list, schedule=schedule,
        model="single-chip" if eff_jobs is None else "sharded",
    )
    return _cached(
        key,
        lambda: backend.run(
            graph, workload, config,
            memory=memory, roots=roots_list, schedule=schedule, jobs=eff_jobs,
        ),
        use_disk,
    )


def run_cached(
    graph: CSRGraph,
    graph_name: str,
    workload: str,
    config: FingersConfig | FlexMinerConfig,
    memory: MemoryConfig | None = None,
    roots: Iterable[int] | None = None,
    *,
    schedule: str = "dynamic",
    jobs: int | None = None,
    disk: bool | None = None,
) -> SimResult:
    """Memoized :func:`repro.hw.api.simulate`: the backend is selected by
    the configuration's type through the registry."""
    return run_backend_cached(
        backend_for_config(config), graph, graph_name, workload, config,
        memory=memory, roots=roots, schedule=schedule, jobs=jobs, disk=disk,
    )


def run_software_cached(
    graph: CSRGraph,
    graph_name: str,
    workload,
    config,
    roots: Iterable[int] | None = None,
    *,
    jobs: int | None = None,
    disk: bool | None = None,
) -> RunResult:
    """Memoized software-model run — same cache layers, key scheme, and
    stats accounting as :func:`run_cached`."""
    return run_backend_cached(
        "software", graph, graph_name, workload, config,
        roots=roots, jobs=jobs, disk=disk,
    )


def clear_cache() -> None:
    """Drop the in-process memo (the disk cache is managed separately via
    :mod:`repro.cache` / ``python -m repro cache clear``)."""
    _MEMO.clear()


def run_pair(
    graph: CSRGraph,
    graph_name: str,
    workload: str,
    config: FingersConfig | FlexMinerConfig,
    baseline: FingersConfig | FlexMinerConfig,
    *,
    memory: MemoryConfig | None = None,
    roots: Iterable[int] | None = None,
    jobs: int | None = None,
) -> PairResult:
    """Run one workload on two designs over identical roots."""
    roots_list = list(roots) if roots is not None else None
    ours = run_cached(
        graph, graph_name, workload, config, memory, roots_list, jobs=jobs
    )
    theirs = run_cached(
        graph, graph_name, workload, baseline, memory, roots_list, jobs=jobs
    )
    return PairResult(
        workload=workload, graph=graph_name, ours=ours, baseline=theirs
    )
