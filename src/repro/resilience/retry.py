"""Retry policy and accounting shared by the execution layers.

:class:`RetryPolicy` is the knob set the pool's recovery loop runs
under (docs/RESILIENCE.md): attempt budget, per-shard collection
timeout, capped exponential backoff with *seeded* jitter, and the
pool-rebuild budget after which execution degrades to serial.  The
jitter is deterministic — a hash of ``(seed, round, token)`` — so two
identical runs back off identically; there is no process-global RNG
anywhere on this path.

:class:`RetryStats` is the structured counter record every recovery
event lands in.  It flows from :func:`repro.parallel.pool.run_shards`
into :class:`repro.core.result.RunResult` (``retry_stats``) and from
there into the experiment store's per-row ``retry`` column, so a sweep
report can say exactly how much absorbing the run did.  Counters are
observability only: they never feed results, cache keys, or the
sanitizer trace.

``REPRO_RETRY`` overrides the default policy process-wide, e.g.
``REPRO_RETRY="attempts=6,timeout=30,base=0.1,cap=2,rebuilds=3"``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import asdict, dataclass, fields, replace

from repro.errors import ConfigError

__all__ = ["ENV_VAR", "RetryPolicy", "RetryStats"]

ENV_VAR = "REPRO_RETRY"

_POLICY_KEYS = {
    "attempts": "max_attempts",
    "timeout": "timeout_s",
    "base": "backoff_base_s",
    "cap": "backoff_cap_s",
    "rebuilds": "max_pool_rebuilds",
    "seed": "jitter_seed",
}


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the pool fights before giving up.

    ``timeout_s`` is the per-shard *collection* timeout: the longest
    the driver waits on one shard's future once it starts collecting
    it.  ``None`` disables timeouts (the default — an honest long shard
    must not be mistaken for a hang unless the caller opts in).
    """

    max_attempts: int = 5
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    jitter_seed: int = 0
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive (or None)")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff times must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ConfigError("max_pool_rebuilds must be >= 0")

    @classmethod
    def current(cls) -> "RetryPolicy":
        """The process default: ``REPRO_RETRY`` if set, else defaults."""
        spec = os.environ.get(ENV_VAR, "").strip()
        return cls.from_spec(spec) if spec else cls()

    @classmethod
    def from_spec(cls, spec: str) -> "RetryPolicy":
        """Parse ``key=value`` clauses (keys: attempts, timeout, base,
        cap, rebuilds, seed; ``timeout=none`` disables timeouts)."""
        policy = cls()
        for raw in spec.split(","):
            clause = raw.strip()
            if not clause:
                continue
            key, sep, value = clause.partition("=")
            field_name = _POLICY_KEYS.get(key.strip())
            if not sep or field_name is None:
                raise ConfigError(
                    f"invalid retry clause {clause!r} (keys: "
                    f"{', '.join(sorted(_POLICY_KEYS))})"
                )
            value = value.strip()
            try:
                if field_name == "timeout_s":
                    parsed = None if value.lower() == "none" else float(value)
                elif field_name in ("backoff_base_s", "backoff_cap_s"):
                    parsed = float(value)
                else:
                    parsed = int(value)
            except ValueError:
                raise ConfigError(
                    f"invalid retry value in clause {clause!r}"
                ) from None
            policy = replace(policy, **{field_name: parsed})
        return policy

    def backoff_s(self, round_no: int, token: str = "") -> float:
        """Deterministic capped-exponential backoff for one retry round.

        ``base * 2**round`` capped at ``cap``, scaled into
        ``[0.5, 1.0]`` by seeded jitter so identical runs sleep
        identically while distinct rounds/tokens decorrelate.
        """
        if self.backoff_base_s <= 0:
            return 0.0
        raw = min(
            self.backoff_cap_s, self.backoff_base_s * (2.0 ** round_no)
        )
        material = f"{self.jitter_seed}|{round_no}|{token}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        jitter = 0.5 + (int.from_bytes(digest[:8], "big") / 2.0 ** 64) / 2.0
        return raw * jitter


@dataclass
class RetryStats:
    """Structured counters for one (or an accumulation of) recovery runs.

    ``attempts`` counts every shard execution attempt, including the
    first; ``retries`` counts only re-executions.  ``crashes`` counts
    pool-breakage events (worker death), ``timeouts`` per-shard
    collection timeouts, ``transient_errors`` retryable exceptions
    surfaced by workers, ``pool_rebuilds`` executor rebuilds,
    ``serial_fallbacks`` degradations to in-process execution, and
    ``exhausted`` shards that ran out of attempt budget.
    ``backoff_s`` totals the time slept between retry rounds.
    """

    attempts: int = 0
    retries: int = 0
    transient_errors: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    exhausted: int = 0
    backoff_s: float = 0.0

    def add(self, other: "RetryStats") -> None:
        """Accumulate ``other`` into this record in place."""
        for f in fields(self):
            setattr(
                self, f.name, getattr(self, f.name) + getattr(other, f.name)
            )

    def as_dict(self) -> dict:
        return asdict(self)

    @property
    def recovered(self) -> bool:
        """Whether any recovery machinery actually engaged."""
        return (
            self.retries > 0
            or self.crashes > 0
            or self.timeouts > 0
            or self.pool_rebuilds > 0
            or self.serial_fallbacks > 0
        )

    @classmethod
    def from_dict(cls, record: dict) -> "RetryStats":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in names})

    def delta(self, earlier: "RetryStats") -> "RetryStats":
        """The counter movement since ``earlier`` (a snapshot)."""
        out = RetryStats()
        for f in fields(out):
            setattr(
                out, f.name, getattr(self, f.name) - getattr(earlier, f.name)
            )
        return out

    def snapshot(self) -> "RetryStats":
        return replace(self)
