"""Deterministic, seeded fault injection (``REPRO_FAULTS=spec``).

The recovery machinery of :mod:`repro.parallel.pool`,
:mod:`repro.cache`, and :mod:`repro.experiments.executor` exists to
absorb failures that are miserable to reproduce on demand: a worker
process dying mid-shard, a shard hanging, a cache entry torn by a
crashed writer.  This module makes every one of those failure modes a
*deterministic function of a seed*, so the chaos CI gate (and any
test) can demand "30% of shard attempts crash" and get the exact same
crashes on every run, on every machine.

Injection sites reuse the sanitizer's probe seams
(:mod:`repro.sanitize`): sites are addressed by the same labels the
sanitizer emits (``pool``, ``cache``, ``cell``), tokens are derived
with :func:`repro.sanitize.payload_digest`, and while a plan is
installed the framework listens on the sanitizer's probe-hook bus to
count seam traffic (``fault_counters()``).

Fault-spec grammar (full reference: docs/RESILIENCE.md)::

    spec    := clause ("," clause)*
    clause  := "seed=" int
             | kind ":" site [ "[" match "]" ] "=" rate [ "@" seconds ]
    kind    := "crash" | "hang" | "transient" | "fail" | "corrupt"

e.g. ``REPRO_FAULTS="seed=7,crash:pool=0.3,transient:pool=0.2"``.

Decision function: a fault fires iff
``sha256(seed|kind|site|token|attempt) / 2**64 < rate`` — pure,
scheduling-independent, and identical in every process.  The ``fail``
kind omits ``attempt`` from the hash, so it marks a deterministic
subset of tokens as *permanently* failing; every other kind is keyed
per attempt, so retries eventually draw a clean attempt.

``crash`` and ``hang`` only fire inside pool worker processes
(:func:`mark_worker`): firing them in the driver would kill or stall
the process whose recovery is under test.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Iterable

from repro import sanitize
from repro.errors import ConfigError, InjectedFault

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "clear",
    "corrupt_bytes",
    "current_plan",
    "fault_counters",
    "in_worker",
    "inject",
    "install",
    "mark_worker",
    "plan_active",
    "reset_fault_counters",
]

ENV_VAR = "REPRO_FAULTS"

FAULT_KINDS = ("crash", "hang", "transient", "fail", "corrupt")

#: Kinds that must only fire inside a worker process.
_WORKER_ONLY = frozenset({"crash", "hang"})

#: Exit code of an injected worker crash; distinctive in core dumps and
#: pool post-mortems.
CRASH_EXIT_CODE = 86

_DEFAULT_HANG_S = 30.0


@dataclass(frozen=True)
class FaultRule:
    """One clause of a fault plan."""

    kind: str
    site: str
    rate: float
    match: str | None = None
    duration_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        if not self.site:
            raise ConfigError("fault site must be non-empty")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(
                f"fault rate must be within [0, 1], got {self.rate!r}"
            )

    def spec(self) -> str:
        """Render this rule back into one grammar clause."""
        text = f"{self.kind}:{self.site}"
        if self.match is not None:
            text += f"[{self.match}]"
        text += f"={self.rate:g}"
        if self.duration_s is not None:
            text += f"@{self.duration_s:g}"
        return text

    def applies(self, site: str, token: str) -> bool:
        return self.site == site and (
            self.match is None or self.match in token
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered rule list plus the seed every decision derives from."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        rules: list[FaultRule] = []
        seed = 0
        for raw in spec.split(","):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError:
                    raise ConfigError(
                        f"invalid fault seed clause {clause!r}"
                    ) from None
                continue
            rules.append(_parse_rule(clause))
        return cls(rules=tuple(rules), seed=seed)

    def spec(self) -> str:
        """Round-trip rendering: ``FaultPlan.parse(plan.spec()) == plan``."""
        return ",".join(
            [f"seed={self.seed}"] + [rule.spec() for rule in self.rules]
        )

    def decide(
        self, site: str, token: str, attempt: int = 0
    ) -> FaultRule | None:
        """The first rule that fires at this (site, token, attempt).

        Pure: equal arguments (and seed) always produce equal
        decisions, in every process, under any scheduling.
        """
        for rule in self.rules:
            if not rule.applies(site, token):
                continue
            if rule.rate >= 1.0:
                return rule
            # `fail` is permanent per token; everything else re-draws
            # per attempt so retries can clear.
            attempt_key = "" if rule.kind == "fail" else str(attempt)
            material = "|".join(
                (str(self.seed), rule.kind, site, token, attempt_key)
            )
            digest = hashlib.sha256(material.encode("utf-8")).digest()
            draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
            if draw < rule.rate:
                return rule
        return None


def _parse_rule(clause: str) -> FaultRule:
    head, sep, tail = clause.partition("=")
    if not sep:
        raise ConfigError(
            f"invalid fault clause {clause!r} (expected kind:site=rate)"
        )
    kind, sep, site_part = head.partition(":")
    if not sep:
        raise ConfigError(
            f"invalid fault clause {clause!r} (missing ':' between kind "
            "and site)"
        )
    match: str | None = None
    site = site_part.strip()
    if site.endswith("]") and "[" in site:
        site, _, match_part = site.partition("[")
        match = match_part[:-1]
    rate_text, sep, duration_text = tail.partition("@")
    duration: float | None = None
    try:
        rate = float(rate_text)
        if sep:
            duration = float(duration_text)
    except ValueError:
        raise ConfigError(
            f"invalid fault clause {clause!r} (rate/duration must be "
            "numbers)"
        ) from None
    return FaultRule(
        kind=kind.strip(), site=site, rate=rate, match=match,
        duration_s=duration,
    )


# ----------------------------------------------------------------------
# Process-wide plan state
# ----------------------------------------------------------------------
# The installed plan lives in a module global *and* in the environment:
# pool worker processes (created after installation) reconstruct it
# lazily from ``REPRO_FAULTS`` on their first probe.

_INSTALLED: FaultPlan | None = None
_ENV_CACHE: tuple[str, FaultPlan] | None = None
_IN_WORKER = False

_COUNTERS: dict[str, int] = {}


def _probe_listener(kind: str, label: str) -> None:
    # Rides the sanitizer's probe bus while a plan is installed: every
    # seam firing is counted, giving the chaos harness a traffic view
    # of the sites it can address.
    _COUNTERS[f"probe:{kind}"] = _COUNTERS.get(f"probe:{kind}", 0) + 1


def install(plan: FaultPlan | str) -> FaultPlan:
    """Install a plan process-wide and export it to ``REPRO_FAULTS``.

    Exporting matters: pool workers are separate processes and inherit
    the environment, not this module's globals.  Returns the parsed
    plan.
    """
    global _INSTALLED
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _INSTALLED = plan
    os.environ[ENV_VAR] = plan.spec()
    sanitize.add_probe_hook(_probe_listener)
    return plan


def clear() -> None:
    """Remove the installed plan and its environment export."""
    global _INSTALLED, _ENV_CACHE
    _INSTALLED = None
    _ENV_CACHE = None
    os.environ.pop(ENV_VAR, None)
    sanitize.remove_probe_hook(_probe_listener)


def current_plan() -> FaultPlan | None:
    """The active plan: installed explicitly, or parsed (and cached)
    from ``REPRO_FAULTS`` — which is how worker processes see it."""
    global _ENV_CACHE  # noqa: RACE001 - pure parse cache, per-process by design
    if _INSTALLED is not None:
        return _INSTALLED
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != spec:
        _ENV_CACHE = (spec, FaultPlan.parse(spec))
    return _ENV_CACHE[1]


def plan_active() -> bool:
    """Cheap guard for instrumentation sites."""
    return _INSTALLED is not None or bool(os.environ.get(ENV_VAR, "").strip())


def mark_worker() -> None:
    """Declare this process a pool worker (enables crash/hang kinds).

    Called from the pool initializer; never from the driver.
    """
    global _IN_WORKER  # noqa: RACE001 - the flag is per-process on purpose
    _IN_WORKER = True


def in_worker() -> bool:
    return _IN_WORKER


def fault_counters() -> dict[str, int]:
    """Snapshot of fired-fault and probe-traffic counters.

    Keys: ``"<site>:<kind>"`` per fired fault, ``"probe:<kind>"`` per
    observed sanitizer probe.  Per-process: worker-side firings are
    visible to the parent only through their effects (crashes, retries).
    """
    return dict(_COUNTERS)


def reset_fault_counters() -> None:
    _COUNTERS.clear()


def _count(site: str, kind: str) -> None:
    # Observability only, never results: worker-side firings are counted
    # in the worker's own copy and reach the parent as crashes/retries.
    key = f"{site}:{kind}"
    _COUNTERS[key] = _COUNTERS.get(key, 0) + 1  # noqa: RACE001


# ----------------------------------------------------------------------
# Injection entry points
# ----------------------------------------------------------------------


def token_for(payload: object) -> str:
    """Stable site token for a payload — the sanitizer's content digest,
    so fault addressing and probe tracing agree on identity."""
    return sanitize.payload_digest(payload)


def inject(site: str, token: str, attempt: int = 0) -> None:
    """Fire whatever fault the plan schedules at this point, if any.

    ``crash`` hard-exits the process (workers only), ``hang`` sleeps
    for the rule's duration (workers only), ``transient`` and ``fail``
    raise :class:`repro.errors.InjectedFault`.  ``corrupt`` is a data
    fault and never fires here (see :func:`corrupt_bytes`).  No-op
    without an active plan.
    """
    plan = current_plan()
    if plan is None:
        return
    rule = plan.decide(site, token, attempt)
    if rule is None or rule.kind == "corrupt":
        return
    if rule.kind in _WORKER_ONLY and not _IN_WORKER:
        return
    _count(site, rule.kind)
    if rule.kind == "crash":
        # A real worker death: no exception, no cleanup, no goodbye —
        # exactly what BrokenProcessPool recovery must absorb.
        os._exit(CRASH_EXIT_CODE)
    if rule.kind == "hang":
        time.sleep(
            rule.duration_s if rule.duration_s is not None else _DEFAULT_HANG_S
        )
        return
    raise InjectedFault(
        f"injected {rule.kind} fault at {site}[{token[:12]}] "
        f"attempt {attempt}",
        kind=rule.kind,
    )


def corrupt_bytes(
    site: str, token: str, data: bytes, attempt: int = 0
) -> bytes:
    """Return ``data``, corrupted if a ``corrupt`` rule fires here.

    Corruption truncates to half length and flips the leading bytes —
    reliably unreadable to ``pickle`` yet non-empty, modelling a torn
    write that slipped past atomic-rename protection.
    """
    plan = current_plan()
    if plan is None:
        return data
    rule = plan.decide(site, token, attempt)
    if rule is None or rule.kind != "corrupt":
        return data
    _count(site, "corrupt")
    keep = max(1, len(data) // 2)
    head = bytes(b ^ 0xFF for b in data[: min(8, keep)])
    return head + data[len(head):keep]


def iter_rules(plan: FaultPlan | None) -> Iterable[FaultRule]:
    """The plan's rules, or nothing — convenience for reporting code."""
    return () if plan is None else plan.rules
