"""Fault-tolerant execution substrate (docs/RESILIENCE.md).

Two halves, one contract:

* :mod:`repro.resilience.faults` — a deterministic, seeded
  fault-injection framework.  A :class:`FaultPlan` (or the
  ``REPRO_FAULTS`` environment spec) plants worker crashes, shard
  hangs, transient exceptions, permanent cell failures, and corrupted
  cache entries at the sanitizer's probe seams, so every failure mode
  the recovery machinery claims to absorb is testable on demand.
* :mod:`repro.resilience.retry` — the recovery policy the execution
  layers share: per-shard timeouts, capped exponential backoff with
  seeded jitter, pool-rebuild and serial-degradation budgets
  (:class:`RetryPolicy`), and the structured :class:`RetryStats`
  accounting that flows into :class:`repro.core.result.RunResult` and
  the experiment store.

The determinism contract survives both halves: fault decisions are a
pure function of ``(seed, kind, site, token, attempt)``, and retried
work re-executes a deterministic function of its inputs, so a run with
faults injected and absorbed produces **bit-identical** results to a
fault-free run (the chaos CI gate asserts exactly this).
"""

from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    clear,
    corrupt_bytes,
    current_plan,
    fault_counters,
    in_worker,
    inject,
    install,
    mark_worker,
    plan_active,
    reset_fault_counters,
)
from repro.resilience.retry import RetryPolicy, RetryStats

__all__ = [
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "RetryStats",
    "clear",
    "corrupt_bytes",
    "current_plan",
    "fault_counters",
    "in_worker",
    "inject",
    "install",
    "mark_worker",
    "plan_active",
    "reset_fault_counters",
]
