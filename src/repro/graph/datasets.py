"""Scaled-down synthetic analogs of the paper's six evaluation graphs.

The paper (Table 1) evaluates on AstroPh, Mico, Youtube, Patents,
LiveJournal, and Orkut from SNAP and related collections.  Those datasets
cannot be shipped here, and full-size graphs (up to 117 M edges) are far
beyond what a pure-Python timing simulation can mine.  Following the
substitution rule in DESIGN.md, each dataset is replaced by a deterministic
synthetic analog, scaled down by roughly 100-1000x, that preserves the
*qualitative signature* the paper's evaluation attributes effects to:

=========  =============================================================
Analog     Signature preserved (paper section 6.2 / 6.3)
=========  =============================================================
``As``     small graph, fits in the (scaled) shared cache, moderate
           degree, collaboration-network clustering; few embeddings.
``Mi``     small, cache-resident, clique-rich (strongest single-PE
           speedups on clique patterns).
``Yo``     large, *lowest average degree* but extreme hub vertices
           (scaled max degree); short neighbor lists limit parallelism,
           so FINGERS gains least here.
``Pa``     large, low *maximum* degree (no big hubs): limited
           parallelism, memory-bound.
``Lj``     large, high degree, rich community structure with big
           cliques; stresses the shared cache.
``Or``     highest average degree, fewer dense vertex clusters than
           ``Lj`` (so weaker on the large-clique patterns).
=========  =============================================================

Capacity-dependent experiments (the Figure 13 cache sweep and the default
4 MB shared cache) are scaled by :data:`CACHE_SCALE` so that each analog
keeps its cache-fit regime: ``As``/``Mi`` fit the scaled shared cache,
``Yo``/``Pa`` exceed it but have high per-list reuse, ``Lj``/``Or``
overflow it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.graph import generators
from repro.graph.builders import relabel_by_degree
from repro.graph.csr import CSRGraph

__all__ = [
    "DatasetSpec", "DATASET_SPECS", "dataset_names", "load_dataset", "CACHE_SCALE",
    "bench_graph_names",
]

#: All byte capacities taken from the paper (4 MB shared cache, 2-16 MB
#: sweep, 32 kB private cache) are divided by this factor to match the
#: ~100-1000x graph downscaling.  4 MB / 16 = 256 kB scaled shared cache,
#: chosen so the As/Mi analogs fit it at every Figure 13 sweep point while
#: Pa/Lj/Or overflow it, matching each graph's paper regime.
CACHE_SCALE = 16


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one synthetic analog.

    Attributes
    ----------
    name:
        Two-letter key used throughout the paper (``As``, ``Mi``, ...).
    full_name:
        The real dataset the analog stands in for.
    paper_vertices / paper_edges:
        The original dataset's size, for the Table 1 comparison columns.
    builder:
        Zero-argument callable returning the analog graph.
    """

    name: str
    full_name: str
    paper_vertices: int
    paper_edges: int
    paper_avg_deg: float
    paper_max_deg: int
    description: str

    def build(self) -> CSRGraph:
        return _BUILDERS[self.name]()


def _build_as() -> CSRGraph:
    # Collaboration network: preferential attachment supplies the hub
    # authors (real AstroPh: max degree 24x the average), planted cliques
    # supply co-author-group clustering.
    base = generators.barabasi_albert(950, 9, seed=101)
    cliq = generators.planted_cliques(
        950, num_cliques=110, clique_size=6, background_p=0.0, seed=102
    )
    from repro.graph.builders import from_edges

    edges = list(base.edges()) + list(cliq.edges())
    return from_edges(edges, num_vertices=950)


def _build_mi() -> CSRGraph:
    # Clique-rich graph with hubs: the single-PE clique benchmarks light
    # up here (paper: Mi "has more cliques and thus even higher speedups").
    base = generators.barabasi_albert(1500, 4, seed=201)
    cliq = generators.planted_cliques(
        1500, num_cliques=260, clique_size=7, background_p=0.0, seed=202
    )
    from repro.graph.builders import from_edges

    edges = list(base.edges()) + list(cliq.edges())
    return from_edges(edges, num_vertices=1500)


def _build_yo() -> CSRGraph:
    # Low average degree with a heavy power-law tail (extreme hubs), like
    # Youtube's 5.3 average / 28754 max.
    return generators.powerlaw_configuration(
        12000, exponent=2.6, min_degree=2, max_degree=300, seed=303
    )


def _build_pa() -> CSRGraph:
    # Patents: large, nearly Poisson degrees, *low maximum degree*.
    return generators.erdos_renyi(8000, p=8.8 / 8000, seed=404)


def _build_lj() -> CSRGraph:
    # LiveJournal: big, skewed, community structure with sizable cliques.
    # RMAT supplies hubs; extra planted cliques supply the dense clusters
    # the paper says Lj has more of than Or.
    base = generators.rmat(13, 8, seed=505)
    extra = generators.planted_cliques(
        base.num_vertices, num_cliques=110, clique_size=7, background_p=0.0, seed=506
    )
    edges = list(base.edges()) + list(extra.edges())
    from repro.graph.builders import from_edges

    return from_edges(edges, num_vertices=base.num_vertices)


def _build_or() -> CSRGraph:
    # Orkut: by far the highest average degree, with heavy hubs, but a
    # configuration model's low clustering gives it fewer dense vertex
    # clusters than Lj (paper section 6.2: weaker on large cliques).
    return generators.powerlaw_configuration(
        1500, exponent=2.0, min_degree=15, max_degree=420, seed=606
    )


def _build_er120() -> CSRGraph:
    # The dense benchmark graph of ``benchmarks/test_kernels.py`` /
    # ``test_engine.py``: small enough to count in milliseconds, dense
    # enough that clique plans produce deep frontiers.
    return generators.erdos_renyi(120, p=0.7, seed=11)


def _build_er300() -> CSRGraph:
    # A sparser, larger benchmark point: enough roots that the frontier
    # engine's breadth batching dominates the per-root Python overhead.
    return generators.erdos_renyi(300, p=0.15, seed=13)


_BUILDERS = {
    "As": _build_as,
    "Mi": _build_mi,
    "Yo": _build_yo,
    "Pa": _build_pa,
    "Lj": _build_lj,
    "Or": _build_or,
    "er120": _build_er120,
    "er300": _build_er300,
}

#: Synthetic benchmark-only graphs, loadable through :func:`load_dataset`
#: and valid in sweep specs, but *not* part of the paper's Table 1 set
#: (so excluded from :func:`dataset_names`).
BENCH_GRAPHS = ("er120", "er300")

DATASET_SPECS: dict[str, DatasetSpec] = {
    "As": DatasetSpec(
        "As", "AstroPh", 18_800, 198_000, 21.1, 504,
        "small collaboration network; cache resident",
    ),
    "Mi": DatasetSpec(
        "Mi", "Mico", 80_000, 432_000, 10.8, 936,
        "small clique-rich graph; cache resident",
    ),
    "Yo": DatasetSpec(
        "Yo", "Youtube", 1_100_000, 3_000_000, 5.3, 28_754,
        "large, lowest average degree, extreme hubs",
    ),
    "Pa": DatasetSpec(
        "Pa", "Patents", 3_800_000, 16_500_000, 8.8, 793,
        "large, low maximum degree",
    ),
    "Lj": DatasetSpec(
        "Lj", "LiveJournal", 4_800_000, 42_900_000, 17.7, 20_333,
        "large, high degree, many dense clusters",
    ),
    "Or": DatasetSpec(
        "Or", "Orkut", 3_100_000, 117_200_000, 76.3, 33_313,
        "highest average degree, fewer dense clusters",
    ),
}


def dataset_names() -> list[str]:
    """The six analog keys in the paper's Table 1 order."""
    return ["As", "Mi", "Yo", "Pa", "Lj", "Or"]


def bench_graph_names() -> list[str]:
    """Benchmark-only graph keys (:data:`BENCH_GRAPHS`) — loadable via
    :func:`load_dataset` and usable as sweep-spec graphs alongside the
    Table 1 analogs."""
    return list(BENCH_GRAPHS)


@lru_cache(maxsize=None)
def load_dataset(name: str, *, degree_ordered: bool = True) -> CSRGraph:
    """Build (and memoize) one of the six analogs.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    degree_ordered:
        Relabel vertices degree-descending, the standard preprocessing for
        symmetry-broken clique mining (on by default, as in the paper's
        toolchain).
    """
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_BUILDERS)}"
        )
    graph = _BUILDERS[name]()
    if degree_ordered:
        graph = relabel_by_degree(graph)
    return graph
