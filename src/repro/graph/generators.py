"""Deterministic synthetic graph generators.

The paper evaluates on six SNAP/real graphs that are not redistributable
here, so :mod:`repro.graph.datasets` builds scaled-down analogs from these
generators.  Every generator takes an explicit ``seed`` and is fully
deterministic, so benchmarks are reproducible run to run.
"""

from __future__ import annotations

import numpy as np

from repro import sanitize
from repro.graph.builders import from_edges
from repro.graph.csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_configuration",
    "planted_cliques",
    "rmat",
    "watts_strogatz",
    "stochastic_block",
    "complete_graph",
    "star_graph",
    "cycle_graph",
    "path_graph",
]


def _rng(seed: int, label: str) -> np.random.Generator:
    """Seeded generator plus a sanitizer probe.

    Recording the (generator, seed) pair on construction means a
    double-run trace diverges as soon as any caller varies seeds or
    generator call order between runs — without paying to digest every
    draw on the fast path.
    """
    if sanitize.is_active():
        sanitize.emit("rng", label, seed)
    return np.random.default_rng(seed)


def erdos_renyi(n: int, p: float, *, seed: int = 0) -> CSRGraph:
    """G(n, p) random graph.

    Uses the geometric-skipping method so the cost is proportional to the
    number of edges rather than ``n**2``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = _rng(seed, "erdos_renyi")
    edges: list[tuple[int, int]] = []
    if p > 0.0 and n > 1:
        # Iterate potential edges in lexicographic order, skipping
        # geometrically distributed gaps.
        total = n * (n - 1) // 2
        idx = -1
        log1mp = np.log1p(-p) if p < 1.0 else None
        while True:
            if p >= 1.0:
                idx += 1
            else:
                r = rng.random()
                idx += 1 + int(np.floor(np.log1p(-r) / log1mp))
            if idx >= total:
                break
            # Convert linear index to (u, v), u < v.
            u = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * idx)) // 2)
            base = u * (2 * n - u - 1) // 2
            v = u + 1 + (idx - base)
            edges.append((u, int(v)))
    return from_edges(edges, num_vertices=n)


def barabasi_albert(n: int, m: int, *, seed: int = 0) -> CSRGraph:
    """Preferential-attachment graph: each new vertex attaches to ``m`` others.

    Produces the heavy-tailed degree distribution typical of social
    networks, with a handful of very-high-degree hubs — the regime where the
    paper's load-imbalance argument (section 2.3) bites.
    """
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    rng = _rng(seed, "barabasi_albert")
    # Repeated-nodes list for preferential attachment.
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []
    targets = list(range(m))
    for source in range(m, n):
        chosen = set()
        for t in targets:
            if t != source:
                chosen.add(t)
        for t in chosen:
            edges.append((source, t))
            repeated.append(source)
            repeated.append(t)
        # Choose m targets for the next vertex.
        if repeated:
            picks = rng.integers(0, len(repeated), size=m * 3)
            nxt: list[int] = []
            seen: set[int] = set()
            for pidx in picks:
                cand = repeated[int(pidx)]
                if cand not in seen:
                    seen.add(cand)
                    nxt.append(cand)
                if len(nxt) == m:
                    break
            while len(nxt) < m:
                cand = int(rng.integers(0, source + 1))
                if cand not in seen:
                    seen.add(cand)
                    nxt.append(cand)
            targets = nxt
        else:
            targets = list(range(m))
    return from_edges(edges, num_vertices=n)


def powerlaw_configuration(
    n: int,
    *,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: int | None = None,
    seed: int = 0,
) -> CSRGraph:
    """Configuration-model graph with a power-law degree sequence.

    Degrees are drawn from ``P(d) ∝ d**-exponent`` on
    ``[min_degree, max_degree]``, stubs are paired uniformly at random, and
    self loops / multi-edges are dropped (so realized degrees are close to,
    not exactly, the drawn sequence — the standard erased configuration
    model).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if min_degree < 1:
        raise ValueError("min_degree must be >= 1")
    rng = _rng(seed, "powerlaw_configuration")
    hi = max_degree if max_degree is not None else max(min_degree + 1, n - 1)
    hi = min(hi, n - 1) if n > 1 else 1
    ds = np.arange(min_degree, hi + 1, dtype=np.float64)
    weights = ds ** (-exponent)
    weights /= weights.sum()
    degrees = rng.choice(
        np.arange(min_degree, hi + 1), size=n, p=weights
    ).astype(np.int64)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(0, n))] += 1
    stubs = np.repeat(np.arange(n), degrees)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    edges = [(int(a), int(b)) for a, b in pairs if a != b]
    return from_edges(edges, num_vertices=n)


def planted_cliques(
    n: int,
    *,
    num_cliques: int,
    clique_size: int,
    background_p: float = 0.0,
    seed: int = 0,
) -> CSRGraph:
    """Random background graph with dense cliques planted on random vertices.

    Used to build a "Mico-like" analog: a modest-sized graph that is rich in
    cliques, exercising the branch-level-parallelism-dominated regime of the
    clique benchmarks (paper section 6.2).
    """
    if clique_size > n:
        raise ValueError("clique_size cannot exceed n")
    rng = _rng(seed, "planted_cliques")
    edges: list[tuple[int, int]] = []
    if background_p > 0:
        bg = erdos_renyi(n, background_p, seed=seed + 1)
        edges.extend(bg.edges())
    for _ in range(num_cliques):
        members = rng.choice(n, size=clique_size, replace=False)
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((int(members[i]), int(members[j])))
    return from_edges(edges, num_vertices=n)


def rmat(
    scale: int,
    edge_factor: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CSRGraph:
    """Recursive-matrix (Graph500-style) generator: ``2**scale`` vertices.

    RMAT graphs have strongly skewed degree distributions and community-ish
    structure, a good stand-in for web/social graphs such as LiveJournal.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must be in (0, 1)")
    n = 1 << scale
    num_edges = n * edge_factor
    rng = _rng(seed, "rmat")
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(num_edges)
        bit_src = (r >= a + b).astype(np.int64)
        r2 = rng.random(num_edges)
        # Conditional quadrant choice.
        top = r < a + b
        bit_dst = np.where(
            top,
            (r2 >= a / (a + b)).astype(np.int64),
            (r2 >= c / (1 - a - b)).astype(np.int64),
        )
        src = (src << 1) | bit_src
        dst = (dst << 1) | bit_dst
    edges = [(int(u), int(v)) for u, v in zip(src, dst) if u != v]
    return from_edges(edges, num_vertices=n)


def watts_strogatz(n: int, k: int, p: float, *, seed: int = 0) -> CSRGraph:
    """Small-world graph: ring lattice of degree ``k`` with rewiring ``p``.

    High clustering with short paths; useful as a structured contrast to
    the power-law generators in tests and examples.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("k must be even and >= 2")
    if k >= n:
        raise ValueError("k must be < n")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = _rng(seed, "watts_strogatz")
    edges: list[tuple[int, int]] = []
    for u in range(n):
        for j in range(1, k // 2 + 1):
            v = (u + j) % n
            if p > 0 and rng.random() < p:
                w = int(rng.integers(0, n))
                attempts = 0
                while w == u and attempts < 8:
                    w = int(rng.integers(0, n))
                    attempts += 1
                if w != u:
                    v = w
            edges.append((u, v))
    return from_edges(edges, num_vertices=n)


def stochastic_block(
    sizes: list[int],
    p_in: float,
    p_out: float,
    *,
    seed: int = 0,
) -> CSRGraph:
    """Planted-partition graph: dense blocks, sparse cross-block edges.

    Community structure with tunable density contrast — the regime where
    locality-aware scheduling (the paper's section 6.3 future work) has
    something to exploit.
    """
    if not 0 <= p_out <= p_in <= 1:
        raise ValueError("need 0 <= p_out <= p_in <= 1")
    rng = _rng(seed, "stochastic_block")
    n = sum(sizes)
    starts = np.cumsum([0] + list(sizes))
    block_of = np.zeros(n, dtype=np.int64)
    for b, (lo, hi) in enumerate(zip(starts[:-1], starts[1:])):
        block_of[lo:hi] = b
    edges: list[tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            prob = p_in if block_of[u] == block_of[v] else p_out
            if prob > 0 and rng.random() < prob:
                edges.append((u, v))
    return from_edges(edges, num_vertices=n)


def complete_graph(n: int) -> CSRGraph:
    """K_n."""
    return from_edges(
        [(i, j) for i in range(n) for j in range(i + 1, n)], num_vertices=n
    )


def star_graph(n_leaves: int) -> CSRGraph:
    """Vertex 0 connected to ``n_leaves`` leaves — a single extreme hub."""
    return from_edges([(0, i) for i in range(1, n_leaves + 1)])


def cycle_graph(n: int) -> CSRGraph:
    """C_n (requires ``n >= 3``)."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    return from_edges([(i, (i + 1) % n) for i in range(n)], num_vertices=n)


def path_graph(n: int) -> CSRGraph:
    """P_n."""
    return from_edges([(i, i + 1) for i in range(n - 1)], num_vertices=n)
