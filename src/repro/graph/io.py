"""Graph persistence: whitespace edge-list text files and binary ``.npz``.

The text format is the de-facto SNAP format (one ``u v`` pair per line,
``#`` comments), so real datasets can be dropped in when available.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.graph.builders import from_edges
from repro.graph.csr import CSRGraph

__all__ = ["save_edge_list", "load_edge_list", "save_npz", "load_npz"]

PathLike = Union[str, "os.PathLike[str]"]


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write the graph as a SNAP-style edge list (each edge once, u < v)."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(f"# undirected simple graph: {graph.num_vertices} vertices, "
                f"{graph.num_edges} edges\n")
        for u, v in graph.edges():
            f.write(f"{u} {v}\n")


def load_edge_list(path: PathLike, *, num_vertices: int | None = None) -> CSRGraph:
    """Read a SNAP-style edge list.

    Lines starting with ``#`` or ``%`` are comments.  Duplicate edges,
    reversed duplicates, and self loops are tolerated and cleaned.
    """
    edges: list[tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            edges.append((int(parts[0]), int(parts[1])))
    return from_edges(edges, num_vertices=num_vertices)


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(path, indptr=graph.indptr, indices=graph.indices)


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        if "indptr" not in data or "indices" not in data:
            raise ValueError(f"{path} is not a repro graph archive")
        return CSRGraph(data["indptr"], data["indices"], validate=False)
