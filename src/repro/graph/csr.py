"""Immutable CSR (compressed sparse row) graph with sorted adjacency lists.

The mining algorithms in this repository rely on two invariants that
:class:`CSRGraph` guarantees at construction time:

* the graph is *simple* and *undirected*: no self loops, no duplicate
  edges, and every edge appears in both endpoint lists;
* every neighbor list is sorted ascending, so set intersection and
  subtraction are one-pass merges (paper section 2.1, "Set operations and
  representation").
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph", "HubBitmapIndex"]

_INDPTR_DTYPE = np.int64
_INDICES_DTYPE = np.int32


class HubBitmapIndex:
    """Packed-uint64 neighbor bitmaps for the top-degree (hub) vertices.

    Each selected hub ``v`` stores its neighbor list as a bit array over
    the vertex-id domain (``ceil(|V| / 64)`` uint64 words), so testing
    ``x in N(v)`` is one shift/mask — the representation behind the
    bitmap kernel of :mod:`repro.setops.kernels`.  Memory is bounded at
    construction: ``len(index) * words_per_hub * 8`` bytes, with hubs
    admitted in decreasing degree (ties broken by ascending id, so the
    selection is deterministic).
    """

    __slots__ = ("_words", "_words_per_hub")

    def __init__(self, graph: "CSRGraph", hub_ids: np.ndarray) -> None:
        self._words_per_hub = (graph.num_vertices + 63) // 64
        self._words: dict[int, np.ndarray] = {}
        one = np.uint64(1)
        for v in hub_ids:
            v = int(v)
            nbrs = graph.neighbors(v)
            words = np.zeros(self._words_per_hub, dtype=np.uint64)
            np.bitwise_or.at(
                words, nbrs >> 6, one << (nbrs & 63).astype(np.uint64)
            )
            words.setflags(write=False)
            self._words[v] = words

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, v: int) -> bool:
        return int(v) in self._words

    @property
    def hub_ids(self) -> list[int]:
        """The indexed vertex ids, in admission (degree-descending) order."""
        return list(self._words)

    def words_for(self, v: int) -> np.ndarray | None:
        """The packed neighbor bitmap of ``v``, or None if not a hub."""
        return self._words.get(int(v))

    @property
    def memory_bytes(self) -> int:
        """Total bitmap storage (the quantity the memory bound caps)."""
        return len(self._words) * self._words_per_hub * 8


class CSRGraph:
    """An undirected simple graph stored in compressed sparse row form.

    Parameters
    ----------
    indptr:
        ``num_vertices + 1`` offsets into ``indices``; the neighbor list of
        vertex ``v`` is ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        Concatenated neighbor lists, each sorted ascending.
    validate:
        When true (default), check all structural invariants.  Pass false
        only when the arrays are known-good (e.g. loaded from a file this
        library wrote).

    Notes
    -----
    Instances are immutable: the underlying arrays are marked read-only.
    Use the builders in :mod:`repro.graph.builders` to construct graphs
    from edge lists or adjacency dicts.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_hub_cache",
        "_edge_key_cache",
        "_adj_bitmap_cache",
        "_signature_cache",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=_INDPTR_DTYPE)
        indices = np.ascontiguousarray(indices, dtype=_INDICES_DTYPE)
        if validate:
            self._validate(indptr, indices)
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._indptr = indptr
        self._indices = indices
        #: Memoized hub indexes keyed by sizing parameters (derived data
        #: only — the graph itself stays immutable).
        self._hub_cache: dict[tuple[int, int, int], HubBitmapIndex] = {}
        self._edge_key_cache: np.ndarray | None = None
        self._adj_bitmap_cache: np.ndarray | None = None
        #: Memoized tuning signature (repro.tuning.signature) — derived
        #: data only, computed at most once per graph instance.
        self._signature_cache: object | None = None

    @staticmethod
    def _validate(indptr: np.ndarray, indices: np.ndarray) -> None:
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if indptr[-1] != indices.size:
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({indices.size})"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size:
            if indices.min() < 0 or indices.max() >= n:
                raise ValueError("neighbor ids out of range")
        vertex_of = np.repeat(np.arange(n, dtype=_INDICES_DTYPE), np.diff(indptr))
        if np.any(vertex_of == indices):
            raise ValueError("self loops are not allowed")
        # Sorted-strictly-increasing within each row implies no duplicates.
        interior = np.setdiff1d(indptr[1:-1], indptr[[0, -1]], assume_unique=False)
        diffs = np.diff(indices)
        if diffs.size:
            breaks = np.zeros(indices.size - 1, dtype=bool)
            boundary = indptr[1:-1]
            boundary = boundary[(boundary > 0) & (boundary < indices.size)]
            breaks[boundary - 1] = True
            if np.any((diffs <= 0) & ~breaks):
                raise ValueError("neighbor lists must be strictly increasing")
        del interior
        # Symmetry: every (u, v) edge must appear as (v, u) as well.
        degrees = np.diff(indptr)
        if indices.size:
            fwd = vertex_of.astype(np.int64) * n + indices
            rev = indices.astype(np.int64) * n + vertex_of
            if not np.array_equal(np.sort(fwd), np.sort(rev)):
                raise ValueError(
                    "adjacency is not symmetric (graph must be undirected)"
                )
        del degrees

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|`` (each counted once)."""
        return self._indices.size // 2

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row offsets."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only concatenated sorted neighbor lists."""
        return self._indices

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor list of ``v`` as a read-only array view."""
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex, as an int64 array."""
        return np.diff(self._indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        if u == v:
            return False
        nu = self.neighbors(u)
        i = int(np.searchsorted(nu, v))
        return i < nu.size and int(nu[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def max_degree(self) -> int:
        """Largest vertex degree (0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max(initial=0))

    def avg_degree(self) -> float:
        """Mean vertex degree (0.0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0.0
        return self._indices.size / self.num_vertices

    # ------------------------------------------------------------------
    # Hub bitmaps (the bitmap-kernel substrate of repro.setops.kernels)
    # ------------------------------------------------------------------

    def hub_bitmap_index(
        self,
        *,
        max_hubs: int = 64,
        min_degree: int = 128,
        memory_bytes: int = 8 << 20,
    ) -> HubBitmapIndex:
        """Build (and memoize) a :class:`HubBitmapIndex` for this graph.

        Selects up to ``max_hubs`` vertices of degree ``>= min_degree``
        in decreasing degree order (ties by ascending id), additionally
        capped so total bitmap storage stays within ``memory_bytes``
        (each hub costs ``ceil(|V| / 64) * 8`` bytes).  Repeated calls
        with the same sizing return the same index object.
        """
        key = (int(max_hubs), int(min_degree), int(memory_bytes))
        cached = self._hub_cache.get(key)
        if cached is not None:
            return cached
        bytes_per_hub = ((self.num_vertices + 63) // 64) * 8
        budget = memory_bytes // bytes_per_hub if bytes_per_hub else 0
        limit = max(0, min(int(max_hubs), int(budget)))
        degrees = self.degrees()
        eligible = np.flatnonzero(degrees >= min_degree)
        if limit and eligible.size:
            order = np.lexsort((eligible, -degrees[eligible]))
            hub_ids = eligible[order[:limit]]
        else:
            hub_ids = np.empty(0, dtype=np.int64)
        index = HubBitmapIndex(self, hub_ids)
        self._hub_cache[key] = index
        return index

    # ------------------------------------------------------------------
    # Segmented-kernel membership tables (repro.setops.segmented)
    # ------------------------------------------------------------------

    def edge_keys(self) -> np.ndarray:
        """Sorted int64 edge keys ``u * |V| + v`` for every directed edge.

        Because the CSR rows are stored in vertex order with sorted
        neighbor lists, the concatenation is already globally sorted —
        building the table is one vectorized multiply-add.  Batched edge
        membership is then a single ``searchsorted`` per query array
        (the ``"edgekey"`` kernel of :mod:`repro.setops.segmented`).
        Memoized per graph; ~8 bytes per directed edge.
        """
        cached = self._edge_key_cache
        if cached is None:
            n = self.num_vertices
            vertex_of = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self._indptr)
            )
            cached = vertex_of * n + self._indices
            cached.setflags(write=False)
            self._edge_key_cache = cached
        return cached

    def adjacency_bitmap(self) -> np.ndarray:
        """Packed adjacency matrix: row ``v`` is ``N(v)`` as uint64 bits.

        ``ceil(|V| / 64) * 8`` bytes per vertex — callers must gate on
        :meth:`adjacency_bitmap_bytes` before building (the segmented
        dispatch does).  Memoized per graph; read-only.
        """
        cached = self._adj_bitmap_cache
        if cached is None:
            n = self.num_vertices
            words_per_row = (n + 63) // 64
            flat = np.zeros(n * words_per_row, dtype=np.uint64)
            if self._indices.size:
                vertex_of = np.repeat(
                    np.arange(n, dtype=np.int64), np.diff(self._indptr)
                )
                word = vertex_of * words_per_row + (self._indices >> 6)
                bit = np.uint64(1) << (self._indices & 63).astype(np.uint64)
                np.bitwise_or.at(flat, word, bit)
            cached = flat.reshape(n, words_per_row)
            cached.setflags(write=False)
            self._adj_bitmap_cache = cached
        return cached

    def adjacency_bitmap_bytes(self) -> int:
        """Storage the dense adjacency bitmap would need, in bytes."""
        n = self.num_vertices
        return n * ((n + 63) // 64) * 8

    # ------------------------------------------------------------------
    # Memory-footprint helpers used by the hardware cache models
    # ------------------------------------------------------------------

    def neighbor_list_bytes(self, v: int, *, bytes_per_id: int = 4) -> int:
        """Size in bytes of vertex ``v``'s neighbor list as stored in DRAM."""
        return self.degree(v) * bytes_per_id

    def total_bytes(self, *, bytes_per_id: int = 4) -> int:
        """Approximate DRAM footprint of the CSR structure."""
        return self._indices.size * bytes_per_id + self._indptr.size * 8

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------

    def __getstate__(self):
        # The hub cache is derived data and can be large; rebuild it
        # lazily on the receiving side instead of shipping it to workers.
        return (self._indptr, self._indices)

    def __setstate__(self, state) -> None:
        indptr, indices = state
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._indptr = indptr
        self._indices = indices
        self._hub_cache = {}
        self._edge_key_cache = None
        self._adj_bitmap_cache = None
        self._signature_cache = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return np.array_equal(self._indptr, other._indptr) and np.array_equal(
            self._indices, other._indices
        )

    def __hash__(self) -> int:
        return hash((self._indptr.tobytes(), self._indices.tobytes()))

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )

    def to_adjacency(self) -> dict[int, list[int]]:
        """Materialize the adjacency structure as ``{vertex: [neighbors]}``."""
        return {
            v: [int(x) for x in self.neighbors(v)] for v in range(self.num_vertices)
        }
