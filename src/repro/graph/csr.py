"""Immutable CSR (compressed sparse row) graph with sorted adjacency lists.

The mining algorithms in this repository rely on two invariants that
:class:`CSRGraph` guarantees at construction time:

* the graph is *simple* and *undirected*: no self loops, no duplicate
  edges, and every edge appears in both endpoint lists;
* every neighbor list is sorted ascending, so set intersection and
  subtraction are one-pass merges (paper section 2.1, "Set operations and
  representation").
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph"]

_INDPTR_DTYPE = np.int64
_INDICES_DTYPE = np.int32


class CSRGraph:
    """An undirected simple graph stored in compressed sparse row form.

    Parameters
    ----------
    indptr:
        ``num_vertices + 1`` offsets into ``indices``; the neighbor list of
        vertex ``v`` is ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        Concatenated neighbor lists, each sorted ascending.
    validate:
        When true (default), check all structural invariants.  Pass false
        only when the arrays are known-good (e.g. loaded from a file this
        library wrote).

    Notes
    -----
    Instances are immutable: the underlying arrays are marked read-only.
    Use the builders in :mod:`repro.graph.builders` to construct graphs
    from edge lists or adjacency dicts.
    """

    __slots__ = ("_indptr", "_indices")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=_INDPTR_DTYPE)
        indices = np.ascontiguousarray(indices, dtype=_INDICES_DTYPE)
        if validate:
            self._validate(indptr, indices)
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._indptr = indptr
        self._indices = indices

    @staticmethod
    def _validate(indptr: np.ndarray, indices: np.ndarray) -> None:
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if indptr[-1] != indices.size:
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({indices.size})"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size:
            if indices.min() < 0 or indices.max() >= n:
                raise ValueError("neighbor ids out of range")
        vertex_of = np.repeat(np.arange(n, dtype=_INDICES_DTYPE), np.diff(indptr))
        if np.any(vertex_of == indices):
            raise ValueError("self loops are not allowed")
        # Sorted-strictly-increasing within each row implies no duplicates.
        interior = np.setdiff1d(indptr[1:-1], indptr[[0, -1]], assume_unique=False)
        diffs = np.diff(indices)
        if diffs.size:
            breaks = np.zeros(indices.size - 1, dtype=bool)
            boundary = indptr[1:-1]
            boundary = boundary[(boundary > 0) & (boundary < indices.size)]
            breaks[boundary - 1] = True
            if np.any((diffs <= 0) & ~breaks):
                raise ValueError("neighbor lists must be strictly increasing")
        del interior
        # Symmetry: every (u, v) edge must appear as (v, u) as well.
        degrees = np.diff(indptr)
        if indices.size:
            fwd = vertex_of.astype(np.int64) * n + indices
            rev = indices.astype(np.int64) * n + vertex_of
            if not np.array_equal(np.sort(fwd), np.sort(rev)):
                raise ValueError(
                    "adjacency is not symmetric (graph must be undirected)"
                )
        del degrees

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|`` (each counted once)."""
        return self._indices.size // 2

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row offsets."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only concatenated sorted neighbor lists."""
        return self._indices

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor list of ``v`` as a read-only array view."""
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex, as an int64 array."""
        return np.diff(self._indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        if u == v:
            return False
        nu = self.neighbors(u)
        i = int(np.searchsorted(nu, v))
        return i < nu.size and int(nu[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def max_degree(self) -> int:
        """Largest vertex degree (0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max(initial=0))

    def avg_degree(self) -> float:
        """Mean vertex degree (0.0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0.0
        return self._indices.size / self.num_vertices

    # ------------------------------------------------------------------
    # Memory-footprint helpers used by the hardware cache models
    # ------------------------------------------------------------------

    def neighbor_list_bytes(self, v: int, *, bytes_per_id: int = 4) -> int:
        """Size in bytes of vertex ``v``'s neighbor list as stored in DRAM."""
        return self.degree(v) * bytes_per_id

    def total_bytes(self, *, bytes_per_id: int = 4) -> int:
        """Approximate DRAM footprint of the CSR structure."""
        return self._indices.size * bytes_per_id + self._indptr.size * 8

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return np.array_equal(self._indptr, other._indptr) and np.array_equal(
            self._indices, other._indices
        )

    def __hash__(self) -> int:
        return hash((self._indptr.tobytes(), self._indices.tobytes()))

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )

    def to_adjacency(self) -> dict[int, list[int]]:
        """Materialize the adjacency structure as ``{vertex: [neighbors]}``."""
        return {
            v: [int(x) for x in self.neighbors(v)] for v in range(self.num_vertices)
        }
