"""Graph substrate: CSR storage, builders, generators, datasets, I/O, stats.

Pattern-aware graph mining operates on undirected simple graphs whose
adjacency lists are sorted by vertex id, so set operations over neighbor
lists can be done with one-pass merges (paper section 2.1).  Everything in
this package produces or consumes :class:`~repro.graph.csr.CSRGraph`, an
immutable compressed-sparse-row structure with exactly that invariant.
"""

from repro.graph.csr import CSRGraph
from repro.graph.builders import (
    from_edges,
    from_adjacency,
    induced_subgraph,
    relabel_by_degree,
)
from repro.graph.generators import (
    erdos_renyi,
    barabasi_albert,
    powerlaw_configuration,
    planted_cliques,
    rmat,
    watts_strogatz,
    stochastic_block,
    complete_graph,
    star_graph,
    cycle_graph,
    path_graph,
)
from repro.graph.traversal import (
    bfs_order,
    bfs_distances,
    connected_components,
    largest_component_fraction,
    triangle_count_reference,
    clustering_coefficient,
)
from repro.graph.datasets import load_dataset, dataset_names, DATASET_SPECS
from repro.graph.io import (
    save_edge_list,
    load_edge_list,
    save_npz,
    load_npz,
)
from repro.graph.stats import GraphStats, graph_stats, degree_histogram

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_adjacency",
    "induced_subgraph",
    "relabel_by_degree",
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_configuration",
    "planted_cliques",
    "rmat",
    "watts_strogatz",
    "stochastic_block",
    "bfs_order",
    "bfs_distances",
    "connected_components",
    "largest_component_fraction",
    "triangle_count_reference",
    "clustering_coefficient",
    "complete_graph",
    "star_graph",
    "cycle_graph",
    "path_graph",
    "load_dataset",
    "dataset_names",
    "DATASET_SPECS",
    "save_edge_list",
    "load_edge_list",
    "save_npz",
    "load_npz",
    "GraphStats",
    "graph_stats",
    "degree_histogram",
]
