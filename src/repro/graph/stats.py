"""Degree statistics, used to regenerate the paper's Table 1."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphStats", "graph_stats", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """Summary row in the shape of the paper's Table 1."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    median_degree: float
    csr_bytes: int

    def row(self) -> tuple[int, int, float, int]:
        """The four Table 1 columns: # Vertices, # Edges, Avg Deg, Max Deg."""
        return (self.num_vertices, self.num_edges, self.avg_degree, self.max_degree)


def graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute the Table 1 statistics for ``graph``."""
    degrees = graph.degrees()
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=round(graph.avg_degree(), 2),
        max_degree=graph.max_degree(),
        median_degree=float(np.median(degrees)) if degrees.size else 0.0,
        csr_bytes=graph.total_bytes(),
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)
