"""Classic graph traversals and structure checks.

Support utilities used by dataset validation, examples, and tests —
independent of the mining stack (which never needs BFS: the search tree
is driven entirely by set operations).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "bfs_order",
    "bfs_distances",
    "connected_components",
    "largest_component_fraction",
    "triangle_count_reference",
    "clustering_coefficient",
]


def bfs_order(graph: CSRGraph, source: int) -> list[int]:
    """Vertices reachable from ``source`` in BFS visitation order."""
    if not 0 <= source < graph.num_vertices:
        raise IndexError(f"source {source} out of range")
    seen = np.zeros(graph.num_vertices, dtype=bool)
    seen[source] = True
    order = [source]
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if not seen[u]:
                seen[u] = True
                order.append(int(u))
                queue.append(int(u))
    return order


def bfs_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (-1 = unreachable)."""
    if not 0 <= source < graph.num_vertices:
        raise IndexError(f"source {source} out of range")
    dist = -np.ones(graph.num_vertices, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                queue.append(int(u))
    return dist


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per vertex (ids are dense, ordered by first vertex)."""
    comp = -np.ones(graph.num_vertices, dtype=np.int64)
    next_id = 0
    for start in range(graph.num_vertices):
        if comp[start] >= 0:
            continue
        comp[start] = next_id
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if comp[u] < 0:
                    comp[u] = next_id
                    queue.append(int(u))
        next_id += 1
    return comp


def largest_component_fraction(graph: CSRGraph) -> float:
    """Share of vertices in the largest connected component."""
    if graph.num_vertices == 0:
        return 0.0
    comp = connected_components(graph)
    counts = np.bincount(comp)
    return float(counts.max()) / graph.num_vertices


def triangle_count_reference(graph: CSRGraph) -> int:
    """Triangle count by forward neighbor intersection.

    A mining-stack-independent reference: for each edge ``(u, v)`` with
    ``u < v``, count common neighbors greater than ``v``.  Used to
    validate the pattern engine on graphs too big for the brute-force
    matcher.
    """
    total = 0
    for u in range(graph.num_vertices):
        nu = graph.neighbors(u)
        above_u = nu[nu > u]
        for v in above_u:
            nv = graph.neighbors(int(v))
            common = np.intersect1d(above_u, nv, assume_unique=True)
            total += int((common > v).sum())
    return total


def clustering_coefficient(graph: CSRGraph) -> float:
    """Global clustering coefficient: 3 x triangles / open+closed wedges."""
    degrees = graph.degrees()
    wedges = int((degrees * (degrees - 1) // 2).sum())
    if wedges == 0:
        return 0.0
    return 3 * triangle_count_reference(graph) / wedges
