"""Builders that normalize arbitrary edge data into :class:`CSRGraph`.

All builders enforce the library invariants: undirected, simple (no self
loops or duplicate edges), and sorted neighbor lists.  Input edges may be
given in either direction and may contain duplicates; they are cleaned here.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "from_edges",
    "from_adjacency",
    "induced_subgraph",
    "relabel_by_degree",
]


def from_edges(
    edges: Iterable[tuple[int, int]],
    *,
    num_vertices: int | None = None,
) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v)`` pairs.

    Self loops are dropped; duplicate and reversed duplicates are merged.
    ``num_vertices`` may be passed to include isolated trailing vertices;
    otherwise it is inferred as ``max vertex id + 1``.
    """
    arr = np.asarray(list(edges), dtype=np.int64)
    if arr.size == 0:
        n = num_vertices or 0
        return CSRGraph(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int32))
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("edges must be an iterable of (u, v) pairs")
    if arr.min() < 0:
        raise ValueError("vertex ids must be non-negative")
    inferred = int(arr.max()) + 1
    n = inferred if num_vertices is None else int(num_vertices)
    if n < inferred:
        raise ValueError(
            f"num_vertices={n} too small for max vertex id {inferred - 1}"
        )
    # Drop self loops, canonicalize direction, dedupe.
    arr = arr[arr[:, 0] != arr[:, 1]]
    lo = arr.min(axis=1)
    hi = arr.max(axis=1)
    keys = lo * n + hi
    keys = np.unique(keys)
    lo = (keys // n).astype(np.int64)
    hi = (keys % n).astype(np.int64)
    # Symmetrize.
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    counts = np.bincount(src, minlength=n)
    indptr[1:] = np.cumsum(counts)
    return CSRGraph(indptr, dst.astype(np.int32), validate=False)


def from_adjacency(adj: Mapping[int, Sequence[int]]) -> CSRGraph:
    """Build a graph from ``{vertex: neighbors}``.

    The mapping does not have to be symmetric; edges are symmetrized.
    Keys and values together determine the vertex-id space.
    """
    edges: list[tuple[int, int]] = []
    max_id = -1
    for u, nbrs in adj.items():
        max_id = max(max_id, int(u))
        for v in nbrs:
            max_id = max(max_id, int(v))
            edges.append((int(u), int(v)))
    return from_edges(edges, num_vertices=max_id + 1 if max_id >= 0 else 0)


def induced_subgraph(
    graph: CSRGraph, vertices: Sequence[int]
) -> tuple[CSRGraph, np.ndarray]:
    """Vertex-induced subgraph on ``vertices``, relabelled to ``0..len-1``.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
    vertex of ``graph`` that became vertex ``i`` of the subgraph.
    """
    keep = np.unique(np.asarray(vertices, dtype=np.int64))
    if keep.size and (keep.min() < 0 or keep.max() >= graph.num_vertices):
        raise ValueError("vertices out of range")
    remap = -np.ones(graph.num_vertices, dtype=np.int64)
    remap[keep] = np.arange(keep.size)
    edges = []
    for new_u, old_u in enumerate(keep):
        for old_v in graph.neighbors(int(old_u)):
            new_v = remap[old_v]
            if new_v >= 0 and new_u < new_v:
                edges.append((new_u, int(new_v)))
    return from_edges(edges, num_vertices=keep.size), keep


def relabel_by_degree(graph: CSRGraph, *, descending: bool = True) -> CSRGraph:
    """Relabel vertices so ids are ordered by degree.

    Degree-descending relabelling is the standard preprocessing step for
    clique mining with ``u_i > u_j`` symmetry-breaking restrictions: it makes
    high-degree vertices come first so restriction pruning trims the largest
    subtrees early.
    """
    degrees = graph.degrees()
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    remap = np.empty(graph.num_vertices, dtype=np.int64)
    remap[order] = np.arange(graph.num_vertices)
    edges = [(int(remap[u]), int(remap[v])) for u, v in graph.edges()]
    return from_edges(edges, num_vertices=graph.num_vertices)
