"""Plan compiler: pattern -> :class:`ExecutionPlan`.

Mirrors the compilation flow of paper section 2.1: choose a
connectivity-preserving vertex order, derive each level's set-operation
schedule (with anti-subtraction postponement for leading disconnected
ancestors), share identical partial results between future levels, and
attach symmetry-breaking restrictions.
"""

from __future__ import annotations

from typing import Sequence

from repro.pattern.pattern import Pattern
from repro.pattern.plan import ExecutionPlan, LevelSchedule, OpKind, SetOp
from repro.pattern.symmetry import symmetry_restrictions

__all__ = ["choose_vertex_order", "compile_plan"]


def choose_vertex_order(pattern: Pattern) -> tuple[int, ...]:
    """Greedy connectivity-preserving mining order.

    Starts from a maximum-degree vertex, then repeatedly appends the vertex
    with the most connections into the chosen prefix (ties: higher pattern
    degree, then lower id).  Connection-dense prefixes shrink candidate
    sets early, the standard heuristic of AutoMine-style compilers.
    """
    k = pattern.num_vertices
    if k == 1:
        return (0,)
    if not pattern.is_connected():
        raise ValueError("pattern-aware mining requires a connected pattern")
    start = max(range(k), key=lambda v: (pattern.degree(v), -v))
    order = [start]
    remaining = set(range(k)) - {start}
    while remaining:
        best = max(
            remaining,
            key=lambda v: (
                sum(1 for u in order if pattern.has_edge(u, v)),
                pattern.degree(v),
                -v,
            ),
        )
        if not any(pattern.has_edge(u, best) for u in order):
            raise AssertionError("connected pattern must extend connectedly")
        order.append(best)
        remaining.remove(best)
    return tuple(order)


def compile_plan(
    pattern: Pattern,
    *,
    order: Sequence[int] | None = None,
    vertex_induced: bool = True,
) -> ExecutionPlan:
    """Compile ``pattern`` into an execution plan.

    Parameters
    ----------
    pattern:
        The pattern to mine (must be connected).
    order:
        Optional explicit mining order (a permutation of pattern vertices);
        defaults to :func:`choose_vertex_order`.  Must be
        connectivity-preserving: each vertex after the first needs at least
        one earlier neighbor.
    vertex_induced:
        Compile subtraction ops for pattern non-edges (exact-match
        semantics).  With ``False``, edge-induced semantics: non-edges are
        unconstrained (paper section 2.1, "Set operations and
        representation").
    """
    if order is None:
        order = choose_vertex_order(pattern)
    order = tuple(int(v) for v in order)
    relabelled = pattern.relabel(order)
    k = relabelled.num_vertices
    for j in range(1, k):
        if not any(relabelled.has_edge(i, j) for i in range(j)):
            raise ValueError(
                f"order {order!r} is not connectivity-preserving at level {j}"
            )

    restrictions = symmetry_restrictions(relabelled)

    current: dict[int, int | None] = {j: None for j in range(1, k)}
    memo: dict[tuple[int | None, OpKind, int], int] = {}
    next_state = 0
    levels: list[LevelSchedule] = []

    for i in range(k - 1):
        emitted: dict[int, SetOp] = {}  # result_state -> draft op
        serves: dict[int, set[int]] = {}

        for j in range(i + 1, k):
            steps: list[tuple[OpKind, int]] = []
            if current[j] is None:
                if relabelled.has_edge(i, j):
                    steps.append((OpKind.INIT_COPY, i))
                    if vertex_induced:
                        for d in range(i):
                            if not relabelled.has_edge(d, j):
                                steps.append((OpKind.ANTI_SUBTRACT, d))
                # else: still postponed; nothing to do at this level.
            else:
                if relabelled.has_edge(i, j):
                    steps.append((OpKind.INTERSECT, i))
                elif vertex_induced:
                    steps.append((OpKind.SUBTRACT, i))
            state = current[j]
            for kind, operand in steps:
                source = None if kind is OpKind.INIT_COPY else state
                key = (source, kind, operand)
                if key in memo:
                    state = memo[key]
                else:
                    state = next_state
                    next_state += 1
                    memo[key] = state
                    emitted[state] = SetOp(
                        kind=kind,
                        operand_level=operand,
                        source_state=source,
                        result_state=state,
                        serves=(),  # filled in below
                    )
                serves.setdefault(state, set()).add(j)
            current[j] = state

        extend_state = current[i + 1]
        if extend_state is None:
            raise AssertionError(
                f"candidate set for level {i + 1} not materialized at level {i}"
            )
        ops = []
        for state_id, draft in emitted.items():
            ops.append(
                SetOp(
                    kind=draft.kind,
                    operand_level=draft.operand_level,
                    source_state=draft.source_state,
                    result_state=draft.result_state,
                    serves=tuple(sorted(serves[state_id])),
                    final_for=(i + 1) if state_id == extend_state else None,
                )
            )
        levels.append(
            LevelSchedule(level=i, ops=tuple(ops), extend_state=extend_state)
        )

    return ExecutionPlan(
        pattern=relabelled,
        vertex_order=order,
        levels=tuple(levels),
        restrictions=restrictions,
        vertex_induced=vertex_induced,
        num_states=next_state,
    )
