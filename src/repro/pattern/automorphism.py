"""Automorphism groups of patterns.

Patterns are tiny (k <= ~8), so the group is found by filtering the k!
permutations, with a degree-sequence pre-check to prune.  The group feeds
the symmetry-breaking restriction synthesis in
:mod:`repro.pattern.symmetry` (paper section 2.1, "symmetric breaking
restrictions").
"""

from __future__ import annotations

from itertools import permutations

from repro.pattern.pattern import Pattern

__all__ = ["automorphisms", "automorphism_count", "orbits"]


def automorphisms(pattern: Pattern) -> list[tuple[int, ...]]:
    """All automorphisms of ``pattern`` as permutation tuples.

    ``perm[i] = j`` means pattern vertex ``i`` is mapped to vertex ``j``.
    The identity is always included, so the result is never empty.
    """
    k = pattern.num_vertices
    degrees = [pattern.degree(v) for v in range(k)]
    autos: list[tuple[int, ...]] = []
    for perm in permutations(range(k)):
        if any(degrees[i] != degrees[perm[i]] for i in range(k)):
            continue
        if all(
            pattern.has_edge(perm[a], perm[b]) for a, b in pattern.edges()
        ):
            autos.append(perm)
    return autos


def automorphism_count(pattern: Pattern) -> int:
    """``|Aut(pattern)|``."""
    return len(automorphisms(pattern))


def orbits(pattern: Pattern) -> list[frozenset[int]]:
    """Vertex orbits under the automorphism group, sorted by min element."""
    autos = automorphisms(pattern)
    k = pattern.num_vertices
    seen: set[int] = set()
    result: list[frozenset[int]] = []
    for v in range(k):
        if v in seen:
            continue
        orbit = frozenset(perm[v] for perm in autos)
        seen.update(orbit)
        result.append(orbit)
    return result
