"""Patterns and execution plans for pattern-aware graph mining.

A :class:`~repro.pattern.pattern.Pattern` is a small connected undirected
graph (the thing the user wants to mine).  The
:func:`~repro.pattern.compiler.compile_plan` compiler turns it into an
:class:`~repro.pattern.plan.ExecutionPlan`: a vertex ordering, per-level
set-operation schedules with common-subexpression sharing, and
symmetry-breaking restrictions derived from the pattern's automorphism
group — the generic plan format of section 2.1 of the paper, which both the
reference mining engine and the hardware simulators execute.
"""

from repro.pattern.pattern import (
    Pattern,
    all_named_patterns,
    named_pattern,
    PATTERN_NAMES,
)
from repro.pattern.automorphism import automorphisms, automorphism_count, orbits
from repro.pattern.symmetry import symmetry_restrictions, Restriction
from repro.pattern.plan import ExecutionPlan, LevelSchedule, SetOp, OpKind
from repro.pattern.compiler import compile_plan, choose_vertex_order
from repro.pattern.multipattern import MultiPlan, compile_multi_plan, motif_patterns
from repro.pattern.ordering import (
    OrderCostModel,
    compile_plan_searched,
    estimate_plan_cost,
    search_vertex_order,
)
from repro.pattern.serialize import (
    dump_plan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
)

__all__ = [
    "Pattern",
    "all_named_patterns",
    "named_pattern",
    "PATTERN_NAMES",
    "automorphisms",
    "automorphism_count",
    "orbits",
    "symmetry_restrictions",
    "Restriction",
    "ExecutionPlan",
    "LevelSchedule",
    "SetOp",
    "OpKind",
    "compile_plan",
    "choose_vertex_order",
    "MultiPlan",
    "compile_multi_plan",
    "motif_patterns",
    "OrderCostModel",
    "compile_plan_searched",
    "estimate_plan_cost",
    "search_vertex_order",
    "dump_plan",
    "load_plan",
    "plan_from_dict",
    "plan_to_dict",
]
