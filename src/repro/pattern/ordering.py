"""Cost-model-driven vertex-order search.

"How to compile an optimized execution plan is an extensively studied
topic" (paper section 2.1, citing AutoMine, GraphZero, GraphPi); the
greedy connectivity heuristic in :mod:`repro.pattern.compiler` is the
baseline.  This module adds the studied alternative: enumerate every
connectivity-preserving order (patterns are tiny, so at most ``k!``) and
rank them with a symbolic cost model parameterized by the target graph's
degree statistics.

The cost model estimates, level by level:

* the expected candidate-set size — an intersection with a neighbor
  list keeps a ``d / n`` fraction of a set, a subtraction keeps
  ``1 - d / n``, an init produces ``d`` elements — damped by the
  symmetry-breaking restrictions (an orbit of ``m`` earlier-constrained
  levels keeps ``1 / m!`` of the tuples);
* the expected number of search-tree nodes per level (the running
  product of candidate sizes);
* per-node set-operation work (sum of expected input sizes).

The total expected work ranks orders; ties break toward the greedy
heuristic's order.  Orders only change *performance*: the engine result
is identical for every valid order, which the test suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from math import factorial

from repro.graph.csr import CSRGraph
from repro.pattern.compiler import choose_vertex_order, compile_plan
from repro.pattern.pattern import Pattern
from repro.pattern.plan import ExecutionPlan, OpKind

__all__ = ["OrderCostModel", "estimate_plan_cost", "search_vertex_order",
           "compile_plan_searched"]


@dataclass(frozen=True)
class OrderCostModel:
    """Degree statistics of the target graph driving the estimates."""

    num_vertices: int
    avg_degree: float

    @classmethod
    def from_graph(cls, graph: CSRGraph) -> "OrderCostModel":
        return cls(
            num_vertices=max(1, graph.num_vertices),
            avg_degree=max(1.0, graph.avg_degree()),
        )

    @classmethod
    def default(cls) -> "OrderCostModel":
        """A generic sparse-graph assumption when no graph is given."""
        return cls(num_vertices=100_000, avg_degree=16.0)

    @property
    def density(self) -> float:
        return min(1.0, self.avg_degree / self.num_vertices)


def estimate_plan_cost(plan: ExecutionPlan, model: OrderCostModel) -> float:
    """Expected total set-operation work of one compiled plan."""
    n = model.num_vertices
    d = model.avg_degree
    p = model.density
    # Expected size of each symbolic state.
    size: dict[int, float] = {}
    # Expected number of tree nodes entering each level.
    nodes = float(n)
    # Restriction damping: each level with r lower-bound constraints keeps
    # roughly 1/(r+1) of its candidates.
    total = 0.0
    for sched in plan.levels:
        level_work = 0.0
        for op in sched.ops:
            if op.kind is OpKind.INIT_COPY:
                size[op.result_state] = d
                level_work += d
            else:
                src = size.get(op.source_state, d)
                if op.kind is OpKind.INTERSECT:
                    size[op.result_state] = src * p
                else:
                    size[op.result_state] = src * (1.0 - p)
                level_work += src + d
        total += nodes * level_work
        cand = size.get(sched.extend_state, d)
        nxt = sched.level + 1
        damping = 1.0 + len(plan.lower_bound_levels(nxt))
        nodes *= max(cand / damping, 1e-9)
    return total


def search_vertex_order(
    pattern: Pattern,
    *,
    model: OrderCostModel | None = None,
    vertex_induced: bool = True,
) -> tuple[int, ...]:
    """Best connectivity-preserving order under the cost model.

    Exhaustive over ``k!`` candidate orders (patterns have ``k <= ~6``);
    invalid (non-connectivity-preserving) orders are skipped.
    """
    model = model or OrderCostModel.default()
    k = pattern.num_vertices
    if k == 1:
        return (0,)
    if not pattern.is_connected():
        raise ValueError("pattern-aware mining requires a connected pattern")
    greedy = choose_vertex_order(pattern)
    best_order = greedy
    best_cost = estimate_plan_cost(
        compile_plan(pattern, order=greedy, vertex_induced=vertex_induced),
        model,
    )
    for perm in permutations(range(k)):
        if perm == greedy:
            continue
        if not _connectivity_preserving(pattern, perm):
            continue
        plan = compile_plan(pattern, order=perm, vertex_induced=vertex_induced)
        cost = estimate_plan_cost(plan, model)
        if cost < best_cost:
            best_cost = cost
            best_order = perm
    return tuple(best_order)


def compile_plan_searched(
    pattern: Pattern,
    *,
    graph: CSRGraph | None = None,
    vertex_induced: bool = True,
) -> ExecutionPlan:
    """Compile with the searched (cost-model-optimal) vertex order."""
    model = (
        OrderCostModel.from_graph(graph) if graph is not None
        else OrderCostModel.default()
    )
    order = search_vertex_order(
        pattern, model=model, vertex_induced=vertex_induced
    )
    return compile_plan(pattern, order=order, vertex_induced=vertex_induced)


def _connectivity_preserving(pattern: Pattern, order: tuple[int, ...]) -> bool:
    placed: set[int] = set()
    for i, v in enumerate(order):
        if i > 0 and not any(pattern.has_edge(u, v) for u in placed):
            return False
        placed.add(v)
    return True
