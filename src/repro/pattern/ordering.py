"""Cost-model-driven vertex-order search.

"How to compile an optimized execution plan is an extensively studied
topic" (paper section 2.1, citing AutoMine, GraphZero, GraphPi); the
greedy connectivity heuristic in :mod:`repro.pattern.compiler` is the
baseline.  This module adds the studied alternative: enumerate the
connectivity-preserving orders (exhaustive for small patterns, a greedy
beam for ``k >= 7`` where ``k!`` explodes) and rank them with a symbolic
cost model parameterized by the target graph's degree statistics.

The cost model estimates, level by level:

* the expected candidate-set size — an intersection with a neighbor
  list keeps a ``d / n`` fraction of a set, a subtraction keeps
  ``1 - d / n``, an init produces ``d`` elements — damped by the
  symmetry-breaking restrictions (an orbit of ``m`` earlier-constrained
  levels keeps ``1 / m!`` of the tuples);
* the expected number of search-tree nodes per level (the running
  product of candidate sizes);
* per-node set-operation work (sum of expected input sizes).

Degree skew matters: a vertex reached over an edge is degree-biased, so
on hub-heavy graphs the operand entering each set op is much larger
than the mean.  The model therefore carries the p90/p99 degree and the
hub mass (share of edge endpoints landing on the top-degree vertices)
and blends them into the per-op operand estimate — a skew-blind model
cannot discriminate orders on power-law graphs at all.

The total expected work ranks orders; ties break toward the greedy
heuristic's order.  Orders only change *performance*: the engine result
is identical for every valid order, which the test suite verifies.
:func:`rank_vertex_orders` exposes the ranked top-N — the candidate
pool the measured-trial auto-tuner (:mod:`repro.tuning`) times for
real.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.pattern.compiler import choose_vertex_order, compile_plan
from repro.pattern.pattern import Pattern
from repro.pattern.plan import ExecutionPlan, OpKind

__all__ = ["OrderCostModel", "estimate_plan_cost", "rank_vertex_orders",
           "search_vertex_order", "compile_plan_searched"]

#: Exhaustive enumeration bound: patterns with ``k >= _BEAM_THRESHOLD``
#: vertices (``k! > 720``) rank orders through the greedy beam instead.
_BEAM_THRESHOLD = 7

#: Beam width for the k >= 7 fallback: enough diversity to keep every
#: plausible prefix alive while bounding work to ``O(k^2 * width)``.
_BEAM_WIDTH = 32


@dataclass(frozen=True)
class OrderCostModel:
    """Degree statistics of the target graph driving the estimates.

    ``p90_degree``/``p99_degree``/``hub_mass`` refine the skew picture;
    zero values (the pre-skew default) fall back to ``avg_degree`` so a
    bare ``OrderCostModel(n, d)`` still behaves like the original
    two-parameter model.
    """

    num_vertices: int
    avg_degree: float
    p90_degree: float = 0.0
    p99_degree: float = 0.0
    hub_mass: float = 0.0

    @classmethod
    def from_graph(cls, graph: CSRGraph) -> "OrderCostModel":
        n = max(1, graph.num_vertices)
        degrees = graph.degrees()
        if degrees.size == 0 or graph.num_edges == 0:
            return cls(num_vertices=n, avg_degree=1.0)
        p90 = float(np.percentile(degrees, 90))
        p99 = float(np.percentile(degrees, 99))
        # Hub mass: the share of edge endpoints landing on the top-1%
        # highest-degree vertices (at least one) — the probability that
        # a vertex reached *over an edge* is a hub.
        num_hubs = max(1, n // 100)
        top = np.sort(degrees)[-num_hubs:]
        mass = float(top.sum()) / float(degrees.sum())
        return cls(
            num_vertices=n,
            avg_degree=max(1.0, graph.avg_degree()),
            p90_degree=max(1.0, p90),
            p99_degree=max(1.0, p99),
            hub_mass=round(mass, 6),
        )

    @classmethod
    def default(cls) -> "OrderCostModel":
        """A generic sparse-graph assumption when no graph is given."""
        return cls(
            num_vertices=100_000, avg_degree=16.0,
            p90_degree=48.0, p99_degree=256.0, hub_mass=0.1,
        )

    @property
    def density(self) -> float:
        return min(1.0, self.avg_degree / self.num_vertices)

    @property
    def edge_degree(self) -> float:
        """Expected neighbor-list length of a vertex reached over an
        edge: the mean blended toward the tail by the hub mass."""
        tail = self.p99_degree if self.p99_degree > 0 else self.avg_degree
        return (1.0 - self.hub_mass) * self.avg_degree + self.hub_mass * tail

    @property
    def init_degree(self) -> float:
        """Expected size of a freshly-initialized candidate set (a copy
        of a bound vertex's neighbor list)."""
        bulk = self.p90_degree if self.p90_degree > 0 else self.avg_degree
        return (1.0 - self.hub_mass) * self.avg_degree + self.hub_mass * bulk


def estimate_plan_cost(plan: ExecutionPlan, model: OrderCostModel) -> float:
    """Expected total set-operation work of one compiled plan."""
    n = model.num_vertices
    d_init = model.init_degree
    d_edge = model.edge_degree
    p = model.density
    # Expected size of each symbolic state.
    size: dict[int, float] = {}
    # Expected number of tree nodes entering each level.
    nodes = float(n)
    # Restriction damping: each level with r lower-bound constraints keeps
    # roughly 1/(r+1) of its candidates.
    total = 0.0
    for sched in plan.levels:
        level_work = 0.0
        for op in sched.ops:
            if op.kind is OpKind.INIT_COPY:
                size[op.result_state] = d_init
                level_work += d_init
            else:
                src = size.get(op.source_state, d_init)
                if op.kind is OpKind.INTERSECT:
                    size[op.result_state] = src * p
                else:
                    size[op.result_state] = src * (1.0 - p)
                level_work += src + d_edge
        total += nodes * level_work
        cand = size.get(sched.extend_state, d_init)
        nxt = sched.level + 1
        damping = 1.0 + len(plan.lower_bound_levels(nxt))
        nodes *= max(cand / damping, 1e-9)
    return total


def _candidate_orders(
    pattern: Pattern,
    model: OrderCostModel,
    *,
    first_vertices: frozenset[int] | None,
) -> list[tuple[int, ...]]:
    """Every order worth costing exactly: exhaustive below the cap,
    the greedy beam's survivors at and above it."""
    k = pattern.num_vertices
    if k < _BEAM_THRESHOLD:
        return [
            perm
            for perm in permutations(range(k))
            if (first_vertices is None or perm[0] in first_vertices)
            and _connectivity_preserving(pattern, perm)
        ]
    return _beam_orders(pattern, model, first_vertices=first_vertices)


def _beam_orders(
    pattern: Pattern,
    model: OrderCostModel,
    *,
    first_vertices: frozenset[int] | None,
    width: int = _BEAM_WIDTH,
) -> list[tuple[int, ...]]:
    """Greedy beam over order prefixes for large patterns.

    Scores a prefix with the same size recurrence the exact model uses,
    minus restriction damping (restrictions depend on the completed
    order) — cheap enough to avoid compiling ``k!`` plans while keeping
    every plausible prefix alive.  The greedy heuristic's order is
    force-included so the beam can never do worse than the baseline.
    """
    k = pattern.num_vertices
    d_init = model.init_degree
    d_edge = model.edge_degree
    p = model.density
    starts = range(k) if first_vertices is None else sorted(first_vertices)
    # (cost, nodes, cand, order, placed) — candidate-set size carries
    # across extensions exactly like the exact model's running product.
    beam = [(0.0, float(model.num_vertices), d_init, (v,), 1 << v)
            for v in starts]
    for _ in range(k - 1):
        extended = []
        for cost, nodes, cand, order, placed in beam:
            for v in range(k):
                if placed & (1 << v):
                    continue
                back = sum(
                    1 for u in order if pattern.has_edge(u, v)
                )
                if back == 0:
                    continue
                # One init + (back - 1) intersections against earlier
                # neighbor lists, each shrinking the running set by the
                # density; non-adjacent earlier vertices subtract under
                # vertex-induced semantics without first-order work.
                work = d_init
                size = d_init
                for _ in range(back - 1):
                    work += size + d_edge
                    size *= p
                extended.append((
                    cost + nodes * work,
                    nodes * max(size, 1e-9),
                    size,
                    order + (v,),
                    placed | (1 << v),
                ))
        extended.sort(key=lambda s: (s[0], s[3]))
        beam = extended[:width]
    orders = [state[3] for state in beam]
    greedy = choose_vertex_order(pattern)
    if (
        (first_vertices is None or greedy[0] in first_vertices)
        and greedy not in orders
    ):
        orders.append(tuple(greedy))
    return orders


def rank_vertex_orders(
    pattern: Pattern,
    *,
    model: OrderCostModel | None = None,
    top_n: int = 4,
    vertex_induced: bool = True,
    first_vertices: frozenset[int] | None = None,
) -> list[tuple[int, ...]]:
    """The ``top_n`` connectivity-preserving orders by modeled cost.

    Candidates come from exhaustive enumeration for ``k < 7`` and from
    the greedy beam above that (:data:`_BEAM_THRESHOLD`); each surviving
    order is compiled and costed exactly.  ``first_vertices`` restricts
    the level-0 vertex — the auto-tuner passes the reference order's
    root so every candidate keeps the same per-root attribution
    candidates.  The greedy heuristic's order always ranks (first among
    equal costs), so a caller taking ``[0]`` can never regress below
    the baseline model-wise.
    """
    model = model or OrderCostModel.default()
    k = pattern.num_vertices
    if k == 1:
        return [(0,)]
    if not pattern.is_connected():
        raise ValueError("pattern-aware mining requires a connected pattern")
    greedy = tuple(choose_vertex_order(pattern))
    candidates = _candidate_orders(
        pattern, model, first_vertices=first_vertices
    )
    if (
        (first_vertices is None or greedy[0] in first_vertices)
        and greedy not in candidates
    ):
        candidates.append(greedy)
    scored = []
    for order in candidates:
        plan = compile_plan(pattern, order=order, vertex_induced=vertex_induced)
        cost = estimate_plan_cost(plan, model)
        scored.append((cost, order != greedy, order))
    scored.sort()
    return [order for _, _, order in scored[:max(1, top_n)]]


def search_vertex_order(
    pattern: Pattern,
    *,
    model: OrderCostModel | None = None,
    vertex_induced: bool = True,
) -> tuple[int, ...]:
    """Best connectivity-preserving order under the cost model.

    Exhaustive over the ``k!`` candidate orders for ``k < 7``; larger
    patterns (5040+ permutations) go through the greedy beam — see
    :func:`rank_vertex_orders`, of which this is the top-1 shorthand.
    """
    return rank_vertex_orders(
        pattern, model=model, top_n=1, vertex_induced=vertex_induced
    )[0]


def compile_plan_searched(
    pattern: Pattern,
    *,
    graph: CSRGraph | None = None,
    vertex_induced: bool = True,
) -> ExecutionPlan:
    """Compile with the searched (cost-model-optimal) vertex order."""
    model = (
        OrderCostModel.from_graph(graph) if graph is not None
        else OrderCostModel.default()
    )
    order = search_vertex_order(
        pattern, model=model, vertex_induced=vertex_induced
    )
    return compile_plan(pattern, order=order, vertex_induced=vertex_induced)


def _connectivity_preserving(pattern: Pattern, order: tuple[int, ...]) -> bool:
    placed: set[int] = set()
    for i, v in enumerate(order):
        if i > 0 and not any(pattern.has_edge(u, v) for u in placed):
            return False
        placed.add(v)
    return True
