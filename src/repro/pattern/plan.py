"""Execution-plan intermediate representation.

A compiled plan describes, for a pattern relabelled into its mining order
``u_0 .. u_{k-1}``:

* per level ``i``, the *set-operation schedule*: which partial candidate
  sets ``S_j`` (``j > i``) are updated with ``N(u_i)`` and how
  (paper Equation 1 — intersection, subtraction, anti-subtraction);
* which updates are shared between future levels (the paper notes
  ``S_1 = S_2(1) = S_3(1)`` are computed once) — expressed here through
  symbolic *state ids*: an op produces one state that may serve several
  future levels until their schedules diverge;
* the symmetry-breaking restrictions and the injectivity exclusions that
  filter candidates at each level.

Both the functional mining engine and the hardware timing models execute
this IR; the number of distinct ops at a level is exactly the set-level
parallelism available to a FINGERS PE there.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.pattern.pattern import Pattern
from repro.pattern.symmetry import Restriction

__all__ = ["OpKind", "SetOp", "LevelSchedule", "ExecutionPlan"]


class OpKind(enum.Enum):
    """The set-operation kinds of paper Equation (1).

    ``INIT_COPY`` is the degenerate first materialization
    ``S_j := N(u_i)`` at level ``j``'s first connected ancestor ``i``.
    ``ANTI_SUBTRACT`` is the postponed subtraction of an earlier
    *disconnected* ancestor's neighbor list, executed right after the init
    (the paper postpones these to avoid materializing large unions).
    """

    INIT_COPY = "init"
    INTERSECT = "intersect"
    SUBTRACT = "subtract"
    ANTI_SUBTRACT = "anti_subtract"


@dataclass(frozen=True)
class SetOp:
    """One set operation in a level's schedule.

    Attributes
    ----------
    kind:
        Operation kind.
    operand_level:
        The ancestor level ``d`` whose neighbor list ``N(u_d)`` is the
        operand.  For ops executed at level ``i`` this is ``i`` except for
        ``ANTI_SUBTRACT``, whose operand is an earlier level.
    source_state:
        State id consumed (``None`` for ``INIT_COPY``).
    result_state:
        State id produced.
    serves:
        The future levels whose partial candidate sets this state currently
        stands for (more than one while schedules coincide).
    final_for:
        If not ``None``, the produced state is the fully materialized
        candidate set for that level.
    """

    kind: OpKind
    operand_level: int
    source_state: int | None
    result_state: int
    serves: tuple[int, ...]
    final_for: int | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        src = f"S#{self.source_state}" if self.source_state is not None else ""
        sym = {
            OpKind.INIT_COPY: "copy",
            OpKind.INTERSECT: "∩",
            OpKind.SUBTRACT: "−",
            OpKind.ANTI_SUBTRACT: "−*",
        }[self.kind]
        return (
            f"S#{self.result_state} = {src} {sym} N(u{self.operand_level})"
            f" [serves {list(self.serves)}]"
        )


@dataclass(frozen=True)
class LevelSchedule:
    """All work performed at one level, right after ``u_level`` is chosen."""

    level: int
    ops: tuple[SetOp, ...]
    #: State id of the candidate set to extend from at the *next* level
    #: (``None`` at the last level, which only counts).
    extend_state: int | None

    @property
    def num_ops(self) -> int:
        """Set-level parallelism available at this level."""
        return len(self.ops)


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete compiled plan for one pattern.

    Attributes
    ----------
    pattern:
        The pattern *after* relabelling into the mining order, so pattern
        vertex ``i`` is matched at level ``i``.
    vertex_order:
        The original pattern vertex placed at each level (for reporting).
    levels:
        ``k - 1`` schedules, one per level ``0 .. k-2`` (the last level has
        no ops; its candidates are counted/listed directly).
    restrictions:
        Symmetry-breaking restrictions over levels.
    vertex_induced:
        Whether subtraction ops for non-edges were compiled in.
    num_states:
        Total number of symbolic set states.
    """

    pattern: Pattern
    vertex_order: tuple[int, ...]
    levels: tuple[LevelSchedule, ...]
    restrictions: tuple[Restriction, ...]
    vertex_induced: bool
    num_states: int

    # ------------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Pattern size ``k`` (levels ``0 .. k-1``)."""
        return self.pattern.num_vertices

    def schedule(self, level: int) -> LevelSchedule:
        """Schedule executed right after choosing ``u_level``."""
        return self.levels[level]

    def lower_bound_levels(self, level: int) -> tuple[int, ...]:
        """Earlier levels whose mapped vertex lower-bounds candidates here.

        All restrictions synthesized by the stabilizer chain have the form
        ``v_small < v_large``; at ``level == large`` the candidate must
        exceed ``v[small]``.
        """
        return tuple(
            r.smaller for r in self.restrictions if r.larger == level
        )

    def exclude_levels(self, level: int) -> tuple[int, ...]:
        """Earlier levels whose mapped vertex must be filtered out here.

        A candidate for ``u_level`` can collide with an earlier ancestor
        ``u_d`` only when ``d`` and ``level`` are non-adjacent in the
        pattern (adjacent ancestors are excluded for free because
        ``u_d not in N(u_d)``), so only those need an explicit injectivity
        check.
        """
        return tuple(
            d
            for d in range(level)
            if not self.pattern.has_edge(d, level)
        )

    def describe(self) -> str:
        """Human-readable plan dump (see ``examples/quickstart.py``)."""
        lines = [
            f"pattern k={self.num_levels}, order={list(self.vertex_order)}, "
            f"{'vertex' if self.vertex_induced else 'edge'}-induced",
            "restrictions: "
            + (", ".join(str(r) for r in self.restrictions) or "(none)"),
        ]
        for sched in self.levels:
            lines.append(f"level {sched.level}:")
            for op in sched.ops:
                suffix = (
                    f"  -> final S_{op.final_for}" if op.final_for is not None else ""
                )
                lines.append(f"  {op}{suffix}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Static structure queries used by the hardware model
    # ------------------------------------------------------------------

    def max_set_parallelism(self) -> int:
        """Largest number of distinct ops at any level."""
        return max((s.num_ops for s in self.levels), default=0)

    def total_ops(self) -> int:
        """Total distinct set ops across all levels."""
        return sum(s.num_ops for s in self.levels)
