"""Execution-plan intermediate representation.

A compiled plan describes, for a pattern relabelled into its mining order
``u_0 .. u_{k-1}``:

* per level ``i``, the *set-operation schedule*: which partial candidate
  sets ``S_j`` (``j > i``) are updated with ``N(u_i)`` and how
  (paper Equation 1 — intersection, subtraction, anti-subtraction);
* which updates are shared between future levels (the paper notes
  ``S_1 = S_2(1) = S_3(1)`` are computed once) — expressed here through
  symbolic *state ids*: an op produces one state that may serve several
  future levels until their schedules diverge;
* the symmetry-breaking restrictions and the injectivity exclusions that
  filter candidates at each level.

Both the functional mining engine and the hardware timing models execute
this IR; the number of distinct ops at a level is exactly the set-level
parallelism available to a FINGERS PE there.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.pattern.pattern import Pattern
from repro.pattern.symmetry import Restriction

__all__ = ["OpKind", "SetOp", "LevelChain", "LevelSchedule", "ExecutionPlan"]


class OpKind(enum.Enum):
    """The set-operation kinds of paper Equation (1).

    ``INIT_COPY`` is the degenerate first materialization
    ``S_j := N(u_i)`` at level ``j``'s first connected ancestor ``i``.
    ``ANTI_SUBTRACT`` is the postponed subtraction of an earlier
    *disconnected* ancestor's neighbor list, executed right after the init
    (the paper postpones these to avoid materializing large unions).
    """

    INIT_COPY = "init"
    INTERSECT = "intersect"
    SUBTRACT = "subtract"
    ANTI_SUBTRACT = "anti_subtract"


@dataclass(frozen=True)
class SetOp:
    """One set operation in a level's schedule.

    Attributes
    ----------
    kind:
        Operation kind.
    operand_level:
        The ancestor level ``d`` whose neighbor list ``N(u_d)`` is the
        operand.  For ops executed at level ``i`` this is ``i`` except for
        ``ANTI_SUBTRACT``, whose operand is an earlier level.
    source_state:
        State id consumed (``None`` for ``INIT_COPY``).
    result_state:
        State id produced.
    serves:
        The future levels whose partial candidate sets this state currently
        stands for (more than one while schedules coincide).
    final_for:
        If not ``None``, the produced state is the fully materialized
        candidate set for that level.
    """

    kind: OpKind
    operand_level: int
    source_state: int | None
    result_state: int
    serves: tuple[int, ...]
    final_for: int | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        src = f"S#{self.source_state}" if self.source_state is not None else ""
        sym = {
            OpKind.INIT_COPY: "copy",
            OpKind.INTERSECT: "∩",
            OpKind.SUBTRACT: "−",
            OpKind.ANTI_SUBTRACT: "−*",
        }[self.kind]
        return (
            f"S#{self.result_state} = {src} {sym} N(u{self.operand_level})"
            f" [serves {list(self.serves)}]"
        )


@dataclass(frozen=True)
class LevelChain:
    """Shape analysis of one level's schedule for the batched engines.

    A level is *chain-shaped* when its ops form a single linear pipeline
    ending in the extension set, with exactly one op whose operand is the
    level's own vertex ``N(u_level)``.  Fixed-operand intersections and
    subtractions then commute with that one child-dependent op, which is
    what lets :class:`repro.mining.engine._PenultimateBatcher` and the
    frontier engine's fused terminal level hoist the fixed part out of
    the per-child loop.

    Attributes
    ----------
    level:
        The analyzed level.
    child_op_index:
        Index (into the schedule's ``ops``) of the unique op whose
        operand is ``N(u_level)`` — meaningful only when ``batchable``.
    mode:
        How the child op combines: ``"copy"`` (INIT_COPY of
        ``N(u_level)``), ``"intersect"``, or ``"subtract"`` (SUBTRACT or
        ANTI_SUBTRACT).  Empty when not batchable.
    reason:
        ``None`` when the level is batchable, otherwise a short
        human-readable explanation of which structural condition failed
        (surfaced by ``ExecutionPlan.describe`` tooling and tests).
    """

    level: int
    child_op_index: int = -1
    mode: str = ""
    reason: str | None = None

    @property
    def batchable(self) -> bool:
        """Whether the batched (hoisted) execution shape applies."""
        return self.reason is None


@dataclass(frozen=True)
class LevelSchedule:
    """All work performed at one level, right after ``u_level`` is chosen."""

    level: int
    ops: tuple[SetOp, ...]
    #: State id of the candidate set to extend from at the *next* level
    #: (``None`` at the last level, which only counts).
    extend_state: int | None

    @property
    def num_ops(self) -> int:
        """Set-level parallelism available at this level."""
        return len(self.ops)


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete compiled plan for one pattern.

    Attributes
    ----------
    pattern:
        The pattern *after* relabelling into the mining order, so pattern
        vertex ``i`` is matched at level ``i``.
    vertex_order:
        The original pattern vertex placed at each level (for reporting).
    levels:
        ``k - 1`` schedules, one per level ``0 .. k-2`` (the last level has
        no ops; its candidates are counted/listed directly).
    restrictions:
        Symmetry-breaking restrictions over levels.
    vertex_induced:
        Whether subtraction ops for non-edges were compiled in.
    num_states:
        Total number of symbolic set states.
    """

    pattern: Pattern
    vertex_order: tuple[int, ...]
    levels: tuple[LevelSchedule, ...]
    restrictions: tuple[Restriction, ...]
    vertex_induced: bool
    num_states: int

    # ------------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Pattern size ``k`` (levels ``0 .. k-1``)."""
        return self.pattern.num_vertices

    def schedule(self, level: int) -> LevelSchedule:
        """Schedule executed right after choosing ``u_level``."""
        return self.levels[level]

    def lower_bound_levels(self, level: int) -> tuple[int, ...]:
        """Earlier levels whose mapped vertex lower-bounds candidates here.

        All restrictions synthesized by the stabilizer chain have the form
        ``v_small < v_large``; at ``level == large`` the candidate must
        exceed ``v[small]``.
        """
        return tuple(
            r.smaller for r in self.restrictions if r.larger == level
        )

    def exclude_levels(self, level: int) -> tuple[int, ...]:
        """Earlier levels whose mapped vertex must be filtered out here.

        A candidate for ``u_level`` can collide with an earlier ancestor
        ``u_d`` only when ``d`` and ``level`` are non-adjacent in the
        pattern (adjacent ancestors are excluded for free because
        ``u_d not in N(u_d)``), so only those need an explicit injectivity
        check.
        """
        return tuple(
            d
            for d in range(level)
            if not self.pattern.has_edge(d, level)
        )

    def describe(self) -> str:
        """Human-readable plan dump (see ``examples/quickstart.py``)."""
        lines = [
            f"pattern k={self.num_levels}, order={list(self.vertex_order)}, "
            f"{'vertex' if self.vertex_induced else 'edge'}-induced",
            "restrictions: "
            + (", ".join(str(r) for r in self.restrictions) or "(none)"),
        ]
        for sched in self.levels:
            lines.append(f"level {sched.level}:")
            for op in sched.ops:
                suffix = (
                    f"  -> final S_{op.final_for}" if op.final_for is not None else ""
                )
                lines.append(f"  {op}{suffix}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Shape analysis consumed by the batched execution engines
    # ------------------------------------------------------------------

    def chain_info(self, level: int) -> LevelChain:
        """Classify one level's schedule for batched execution.

        The batched engines (the penultimate batcher and the frontier
        engine's fused terminal level) require the level to be a *linear
        chain*: non-empty ops, the extension set produced by the last
        op, every non-initial op consuming the previous op's result, and
        exactly one op whose operand is the level's own vertex.  The
        returned :class:`LevelChain` either marks the level batchable
        (with the child op's index and combine mode) or carries the
        reason it is not.
        """
        sched = self.levels[level]
        ops = sched.ops

        def fail(reason: str) -> LevelChain:
            return LevelChain(level=level, reason=reason)

        if not ops:
            return fail("empty schedule")
        if sched.extend_state != ops[-1].result_state:
            return fail("extension set is not the last op's result")
        produced = {op.result_state for op in ops}
        for i, op in enumerate(ops):
            if i == 0:
                if op.source_state is not None and op.source_state in produced:
                    return fail("first op sources a state produced in-level")
            elif op.source_state != ops[i - 1].result_state:
                return fail("ops do not form a linear chain")
        child_ops = [i for i, op in enumerate(ops) if op.operand_level == level]
        if len(child_ops) != 1:
            return fail(
                f"{len(child_ops)} child-dependent ops (need exactly one)"
            )
        child_idx = child_ops[0]
        mode = {
            OpKind.INIT_COPY: "copy",
            OpKind.INTERSECT: "intersect",
            OpKind.SUBTRACT: "subtract",
            OpKind.ANTI_SUBTRACT: "subtract",
        }[ops[child_idx].kind]
        if mode == "copy" and child_idx != 0:
            return fail("INIT_COPY of the level vertex is not the first op")
        return LevelChain(level=level, child_op_index=child_idx, mode=mode)

    def chain_levels(self) -> tuple[int, ...]:
        """The levels whose schedules are chain-shaped (batchable)."""
        return tuple(
            sched.level
            for sched in self.levels
            if self.chain_info(sched.level).batchable
        )

    # ------------------------------------------------------------------
    # Static structure queries used by the hardware model
    # ------------------------------------------------------------------

    def max_set_parallelism(self) -> int:
        """Largest number of distinct ops at any level."""
        return max((s.num_ops for s in self.levels), default=0)

    def total_ops(self) -> int:
        """Total distinct set ops across all levels."""
        return sum(s.num_ops for s in self.levels)
