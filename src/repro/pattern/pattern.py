"""Pattern graphs: the small subgraphs a mining job searches for.

Patterns are tiny (the paper uses 3-5 vertices) and immutable, stored as a
frozen adjacency-bitmask tuple for cheap permutation tests during
automorphism search.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["Pattern", "named_pattern", "all_named_patterns", "PATTERN_NAMES"]


class Pattern:
    """An undirected simple pattern graph on vertices ``0..k-1``.

    Parameters
    ----------
    num_vertices:
        Pattern size ``k``.
    edges:
        Iterable of ``(a, b)`` pairs over ``0..k-1``.

    Notes
    -----
    Patterns are hashable and comparable by structure, and expose the
    adjacency both as bitmasks (``adj_mask``) and neighbor tuples
    (``neighbors``).
    """

    __slots__ = ("_n", "_masks")

    def __init__(self, num_vertices: int, edges: Iterable[tuple[int, int]]) -> None:
        if num_vertices < 1:
            raise ValueError("a pattern needs at least one vertex")
        masks = [0] * num_vertices
        for a, b in edges:
            if not (0 <= a < num_vertices and 0 <= b < num_vertices):
                raise ValueError(f"edge ({a}, {b}) out of range for k={num_vertices}")
            if a == b:
                raise ValueError("patterns cannot have self loops")
            masks[a] |= 1 << b
            masks[b] |= 1 << a
        self._n = num_vertices
        self._masks = tuple(masks)

    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Pattern size ``k``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of pattern edges."""
        return sum(bin(m).count("1") for m in self._masks) // 2

    def adj_mask(self, v: int) -> int:
        """Bitmask of ``v``'s pattern neighbors."""
        return self._masks[v]

    def has_edge(self, a: int, b: int) -> bool:
        """Whether pattern edge ``{a, b}`` exists."""
        return bool(self._masks[a] >> b & 1)

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted tuple of ``v``'s pattern neighbors."""
        m = self._masks[v]
        return tuple(i for i in range(self._n) if m >> i & 1)

    def degree(self, v: int) -> int:
        """Pattern degree of ``v``."""
        return bin(self._masks[v]).count("1")

    def edges(self) -> list[tuple[int, int]]:
        """All pattern edges, each once, as ``(a, b)`` with ``a < b``."""
        return [
            (a, b)
            for a in range(self._n)
            for b in range(a + 1, self._n)
            if self.has_edge(a, b)
        ]

    def is_connected(self) -> bool:
        """Whether the pattern is connected (mining requires it)."""
        if self._n == 1:
            return True
        seen = 1
        frontier = [0]
        while frontier:
            v = frontier.pop()
            m = self._masks[v]
            for u in range(self._n):
                if m >> u & 1 and not seen >> u & 1:
                    seen |= 1 << u
                    frontier.append(u)
        return seen == (1 << self._n) - 1

    def is_clique(self) -> bool:
        """Whether the pattern is a complete graph."""
        return self.num_edges == self._n * (self._n - 1) // 2

    def relabel(self, order: Sequence[int]) -> "Pattern":
        """Return the pattern with vertex ``order[i]`` renamed to ``i``.

        ``order`` is the mining order: position ``i`` of the new pattern is
        the old vertex ``order[i]``.
        """
        if sorted(order) != list(range(self._n)):
            raise ValueError(
                f"order {order!r} is not a permutation of 0..{self._n - 1}"
            )
        inv = [0] * self._n
        for new, old in enumerate(order):
            inv[old] = new
        return Pattern(
            self._n, [(inv[a], inv[b]) for a, b in self.edges()]
        )

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._n == other._n and self._masks == other._masks

    def __hash__(self) -> int:
        return hash((self._n, self._masks))

    def __repr__(self) -> str:
        return f"Pattern(k={self._n}, edges={self.edges()})"


def _clique(k: int) -> Pattern:
    return Pattern(k, [(i, j) for i in range(k) for j in range(i + 1, k)])


#: The seven benchmark names used throughout the paper's evaluation.
#: ``3mc`` is the multi-pattern task (triangle + wedge) and is handled by
#: :func:`repro.pattern.multipattern.motif_patterns`.
PATTERN_NAMES = ["tc", "4cl", "5cl", "tt", "cyc", "dia", "3mc"]

_NAMED: dict[str, Pattern] = {
    # 3-clique (triangle).
    "tc": _clique(3),
    # 4-clique.
    "4cl": _clique(4),
    # 5-clique.
    "5cl": _clique(5),
    # Tailed triangle: triangle {0,1,2} with a tail 3 attached to 0
    # (paper Figure 1).
    "tt": Pattern(4, [(0, 1), (0, 2), (1, 2), (0, 3)]),
    # 4-cycle (vertex-induced: no chord).
    "cyc": Pattern(4, [(0, 1), (1, 2), (2, 3), (3, 0)]),
    # Diamond: 4-clique minus one edge.
    "dia": Pattern(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]),
    # Wedge (3-path), the second component of the 3-motif census.
    "wedge": Pattern(3, [(0, 1), (0, 2)]),
    # Extras used by tests and examples.
    "edge": Pattern(2, [(0, 1)]),
    "3path": Pattern(4, [(0, 1), (1, 2), (2, 3)]),
    "star3": Pattern(4, [(0, 1), (0, 2), (0, 3)]),
    "house": Pattern(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)]),
}


def all_named_patterns() -> dict[str, Pattern]:
    """Every single-pattern benchmark by name (``3mc`` excluded: it is a
    multi-pattern job).  Used by ``repro lint-plan --all`` and CI to
    statically verify the whole built-in plan corpus."""
    return dict(_NAMED)


def named_pattern(name: str) -> Pattern:
    """Look up a pattern by its benchmark name (``tc``, ``4cl``, ``tt``, ...).

    ``3mc`` is a multi-pattern job, not a single pattern; use
    :func:`repro.pattern.multipattern.motif_patterns` for it.
    """
    if name == "3mc":
        raise ValueError(
            "3mc is a multi-pattern benchmark; use motif_patterns(3) and "
            "compile_multi_plan instead"
        )
    try:
        return _NAMED[name]
    except KeyError:
        raise KeyError(
            f"unknown pattern {name!r}; known: {sorted(_NAMED)}"
        ) from None
