"""Symmetry-breaking restriction synthesis.

A pattern with a non-trivial automorphism group would otherwise be counted
``|Aut|`` times (once per automorphic relabelling of each embedding).  The
pattern-aware systems the paper builds on (GraphZero, GraphPi) break the
symmetry with pairwise restrictions ``v_i < v_j`` on the mapped input-graph
vertex ids, which both deduplicate the count and prune the search tree
early (paper Figure 1, "symmetric breaking: u1 > u2").

We synthesize restrictions with the standard stabilizer-chain scheme:

1. find the smallest position ``i`` moved by some non-identity
   automorphism;
2. for every position ``j != i`` in the orbit of ``i``, emit ``v_i < v_j``;
3. restrict the group to the stabilizer of ``i`` and repeat.

Each embedding class then has exactly one representative satisfying all
restrictions (the one whose orbit positions carry ascending vertex ids),
so ``restricted count x |Aut| == unrestricted count`` — a property the test
suite checks against a brute-force oracle for every benchmark pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pattern.automorphism import automorphisms
from repro.pattern.pattern import Pattern

__all__ = ["Restriction", "symmetry_restrictions"]


@dataclass(frozen=True, order=True)
class Restriction:
    """Require ``v[smaller] < v[larger]`` on mapped input-graph vertex ids.

    ``smaller``/``larger`` are *plan levels* (positions in the mining
    order), not raw pattern vertex ids; the compiler relabels the pattern
    before calling :func:`symmetry_restrictions`.
    """

    smaller: int
    larger: int

    def applies_at(self) -> int:
        """The level at which the restriction becomes checkable."""
        return max(self.smaller, self.larger)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"v{self.smaller} < v{self.larger}"


def symmetry_restrictions(pattern: Pattern) -> tuple[Restriction, ...]:
    """Stabilizer-chain pairwise restrictions for ``pattern``.

    The pattern must already be relabelled into its mining order (the
    restrictions refer to positions in that order).  Returns an empty tuple
    for asymmetric patterns.
    """
    group = automorphisms(pattern)
    restrictions: list[Restriction] = []
    k = pattern.num_vertices
    while len(group) > 1:
        moved = None
        for i in range(k):
            if any(perm[i] != i for perm in group):
                moved = i
                break
        assert moved is not None, "non-trivial group must move something"
        orbit = sorted({perm[moved] for perm in group})
        for j in orbit:
            if j != moved:
                restrictions.append(Restriction(smaller=moved, larger=j))
        group = [perm for perm in group if perm[moved] == moved]
    return tuple(sorted(restrictions))
