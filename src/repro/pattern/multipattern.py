"""Multi-pattern mining plans (the ``3mc`` benchmark).

The paper supports mining several patterns in one pass by merging their
search trees: "the first few tree levels are common, until the point where
different patterns diverge to separate tree trunks" (section 4).  We model
this by compiling all patterns in a *shared symbolic-state namespace*, so
set ops with identical histories get identical state ids across plans.  An
executor processes each root once, computes the shared level-0 states a
single time, and then explores each pattern's trunk; any op whose result
state is already materialized on the current path is skipped.

``motif_patterns(k)`` enumerates all connected non-isomorphic k-vertex
patterns, so ``compile_multi_plan(motif_patterns(3))`` is exactly the
paper's 3-motif-counting job (triangle + wedge).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, permutations
from typing import Sequence

from repro.pattern.compiler import compile_plan
from repro.pattern.pattern import Pattern
from repro.pattern.plan import ExecutionPlan, OpKind

__all__ = ["MultiPlan", "compile_multi_plan", "motif_patterns"]


@dataclass(frozen=True)
class MultiPlan:
    """A bundle of plans compiled in one shared state namespace.

    ``shared_prefix`` is the number of leading levels whose schedules are
    byte-identical across all plans (the merged trunk depth).  For 3-motif
    it is 1: both plans compute ``S_1 = N(u_0)`` as the same state and
    diverge when filtering level-1 candidates.
    """

    plans: tuple[ExecutionPlan, ...]
    names: tuple[str, ...]
    shared_prefix: int
    num_states: int

    @property
    def num_patterns(self) -> int:
        return len(self.plans)

    @property
    def max_levels(self) -> int:
        return max(p.num_levels for p in self.plans)


def compile_multi_plan(
    patterns: Sequence[Pattern],
    *,
    names: Sequence[str] | None = None,
    vertex_induced: bool = True,
) -> MultiPlan:
    """Compile ``patterns`` with cross-plan sharing of identical set ops.

    Sharing is achieved by re-compiling each plan and then unifying state
    ids whose defining op histories are identical (same kind, operand
    level, and unified source).  Plans keep their own schedules; executors
    dedupe at run time via the unified ids.
    """
    if not patterns:
        raise ValueError("need at least one pattern")
    compiled = [
        compile_plan(p, vertex_induced=vertex_induced) for p in patterns
    ]
    unified, num_states = _unify_states(compiled)
    prefix = _shared_prefix_depth(unified)
    if names is None:
        names = tuple(f"p{i}" for i in range(len(unified)))
    return MultiPlan(
        plans=tuple(unified),
        names=tuple(names),
        shared_prefix=prefix,
        num_states=num_states,
    )


def _unify_states(
    plans: list[ExecutionPlan],
) -> tuple[list[ExecutionPlan], int]:
    """Rewrite each plan's state ids into one shared namespace."""
    memo: dict[tuple[int | None, OpKind, int], int] = {}
    counter = 0
    out: list[ExecutionPlan] = []
    for plan in plans:
        remap: dict[int, int] = {}
        new_levels = []
        for sched in plan.levels:
            new_ops = []
            for op in sched.ops:
                src = remap[op.source_state] if op.source_state is not None else None
                key = (src, op.kind, op.operand_level)
                if key in memo:
                    new_id = memo[key]
                else:
                    new_id = counter
                    counter += 1
                    memo[key] = new_id
                remap[op.result_state] = new_id
                new_ops.append(
                    type(op)(
                        kind=op.kind,
                        operand_level=op.operand_level,
                        source_state=src,
                        result_state=new_id,
                        serves=op.serves,
                        final_for=op.final_for,
                    )
                )
            new_levels.append(
                type(sched)(
                    level=sched.level,
                    ops=tuple(new_ops),
                    extend_state=remap[sched.extend_state]
                    if sched.extend_state is not None
                    else None,
                )
            )
        out.append(
            type(plan)(
                pattern=plan.pattern,
                vertex_order=plan.vertex_order,
                levels=tuple(new_levels),
                restrictions=plan.restrictions,
                vertex_induced=plan.vertex_induced,
                num_states=counter,
            )
        )
    return out, counter


def _shared_prefix_depth(plans: list[ExecutionPlan]) -> int:
    """Number of leading levels identical (ops + extend state) in all plans."""
    depth = 0
    max_depth = min(p.num_levels - 1 for p in plans)
    for level in range(max_depth):
        first = plans[0].levels[level]
        sig = ({(o.kind, o.operand_level, o.source_state, o.result_state)
                for o in first.ops}, first.extend_state)
        same = all(
            (
                {(o.kind, o.operand_level, o.source_state, o.result_state)
                 for o in p.levels[level].ops},
                p.levels[level].extend_state,
            )
            == sig
            for p in plans[1:]
        )
        if not same:
            break
        depth += 1
    return depth


def motif_patterns(k: int) -> tuple[list[Pattern], list[str]]:
    """All connected non-isomorphic patterns on ``k`` vertices.

    Returns ``(patterns, names)``; names are ``{k}motif-{index}`` except
    for a few well-known shapes that get their conventional names.  Only
    practical for ``k <= 5`` (enumeration over all labeled graphs).
    """
    if k < 2 or k > 5:
        raise ValueError("motif enumeration supported for 2 <= k <= 5")
    all_pairs = list(combinations(range(k), 2))
    seen: set[tuple[int, ...]] = set()
    patterns: list[Pattern] = []
    for bits in range(1 << len(all_pairs)):
        edges = [all_pairs[i] for i in range(len(all_pairs)) if bits >> i & 1]
        pat = Pattern(k, edges)
        if not pat.is_connected():
            continue
        canon = _canonical_form(pat)
        if canon in seen:
            continue
        seen.add(canon)
        patterns.append(pat)
    # Sort densest-last for stable naming.
    patterns.sort(key=lambda p: (p.num_edges, _canonical_form(p)))
    names = [_motif_name(p) for p in patterns]
    return patterns, names


def _canonical_form(pattern: Pattern) -> tuple[int, ...]:
    """Lexicographically minimal adjacency-mask tuple over relabellings."""
    k = pattern.num_vertices
    best: tuple[int, ...] | None = None
    for perm in permutations(range(k)):
        relabelled = pattern.relabel(list(perm))
        masks = tuple(relabelled.adj_mask(v) for v in range(k))
        if best is None or masks < best:
            best = masks
    assert best is not None
    return best


_KNOWN_SHAPES: dict[tuple[int, ...], str] = {}


def _motif_name(pattern: Pattern) -> str:
    global _KNOWN_SHAPES
    if not _KNOWN_SHAPES:
        from repro.pattern.pattern import _NAMED  # local import to avoid cycle

        for name, pat in _NAMED.items():
            _KNOWN_SHAPES[_canonical_form(pat)] = name
    canon = _canonical_form(pattern)
    if canon in _KNOWN_SHAPES:
        return _KNOWN_SHAPES[canon]
    tag = hash(canon) & 0xFFFF
    return f"{pattern.num_vertices}motif-e{pattern.num_edges}-{tag:04x}"
