"""Set operations over sorted vertex-id lists.

Pattern-aware mining represents candidate sets and neighbor lists as
strictly increasing arrays of vertex ids, so intersection and subtraction
are one-pass merges (paper section 2.1).  This package provides:

* :mod:`repro.setops.merge` — the functional merge-based operations used
  by the reference engine and (for result values) the timing models;
* :mod:`repro.setops.segments` — fixed-length segmentation, head lists,
  and segment pairing, the substrate of segment-level parallelism
  (paper sections 3.4 and 4.2);
* :mod:`repro.setops.bitvector` — the intersect-unit datapath and the
  bitwise-OR result aggregation of paper section 4.3, validated against
  the merge primitives by the test suite;
* :mod:`repro.setops.kernels` — the size-adaptive kernel dispatch layer
  (merge / gallop / hub-bitmap) used by the engine and simulators for
  functional results; bit-identical to the merge primitives
  (docs/KERNELS.md);
* :mod:`repro.setops.segmented` — segment-aware batch kernels
  (:class:`~repro.setops.segmented.SegmentedSet`, batched
  edge-membership probes) behind the frontier engine's
  frontier-at-a-time execution (docs/KERNELS.md, "Frontier engine").
"""

from repro.setops.merge import (
    intersect,
    subtract,
    apply_op,
    lower_bound_filter,
    exclude_values,
)
from repro.setops.segments import (
    LONG_SEGMENT_LEN,
    SHORT_SEGMENT_LEN,
    segment_bounds,
    head_list,
    pair_segments,
    SegmentPairing,
    balance_loads,
    WorkItem,
)
from repro.setops.bitvector import (
    intersect_bitvector,
    aggregate_or,
    segmented_set_op,
)
from repro.setops.kernels import (
    KERNEL_NAMES,
    SEGMENT_KERNEL_NAMES,
    ENGINE_NAMES,
    KernelContext,
    KernelPolicy,
    DEFAULT_POLICY,
    intersect_adaptive,
    subtract_adaptive,
    kernel_counters,
    reset_kernel_counters,
)
from repro.setops.segmented import (
    SegmentedSet,
    gather_neighbors,
    neighbor_membership,
    intersect_neighbors,
    subtract_neighbors,
)

__all__ = [
    "intersect",
    "subtract",
    "apply_op",
    "lower_bound_filter",
    "exclude_values",
    "LONG_SEGMENT_LEN",
    "SHORT_SEGMENT_LEN",
    "segment_bounds",
    "head_list",
    "pair_segments",
    "SegmentPairing",
    "balance_loads",
    "WorkItem",
    "intersect_bitvector",
    "aggregate_or",
    "segmented_set_op",
    "KERNEL_NAMES",
    "SEGMENT_KERNEL_NAMES",
    "ENGINE_NAMES",
    "KernelContext",
    "KernelPolicy",
    "DEFAULT_POLICY",
    "intersect_adaptive",
    "subtract_adaptive",
    "kernel_counters",
    "reset_kernel_counters",
    "SegmentedSet",
    "gather_neighbors",
    "neighbor_membership",
    "intersect_neighbors",
    "subtract_neighbors",
]
