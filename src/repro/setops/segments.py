"""Segmentation, head lists, segment pairing, and load balancing.

Segment-level parallelism (paper sections 3.4 and 4.2) divides the two
inputs of one set operation into fixed-length segments — the *long* set
(usually the streamed neighbor list) into segments of ``s_l = 16`` ids and
the *short* set (usually the partial candidate set) into segments of
``s_s = 4`` — pairs overlapping segments, and spreads the pairs over the
PE's intersect units.  The *task divider* does the pairing with a binary
search of each short head against the long head list, accumulates a *load
table* (how many short segments overlap each long segment), and splits
overloaded long segments across IUs using a maximum-load threshold.

This module is the functional substrate shared by the hardware timing
model (which needs the work-item shapes and costs) and the datapath
validation tests (which replay paper Figure 4 and Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LONG_SEGMENT_LEN",
    "SHORT_SEGMENT_LEN",
    "DEFAULT_MAX_LOAD",
    "segment_bounds",
    "head_list",
    "SegmentPairing",
    "pair_segments",
    "pairing_loads",
    "WorkItem",
    "balance_loads",
]

#: Paper defaults (section 3.4): long segments of 16 ids, short of 4.
LONG_SEGMENT_LEN = 16
SHORT_SEGMENT_LEN = 4
#: Maximum short segments per work item before the task divider splits the
#: load across IUs (paper Figure 7 uses 2; we default to 3 so one item's
#: cost matches the paper's "about s_l + 3 s_s = 28 cycles" example).
DEFAULT_MAX_LOAD = 3


def segment_bounds(length: int, seg_len: int) -> list[tuple[int, int]]:
    """``(start, end)`` index ranges of each segment of a set of ``length``."""
    if seg_len < 1:
        raise ValueError("segment length must be >= 1")
    return [(s, min(s + seg_len, length)) for s in range(0, length, seg_len)]


def head_list(values: np.ndarray, seg_len: int) -> np.ndarray:
    """First element of every segment (paper: "head list")."""
    if seg_len < 1:
        raise ValueError("segment length must be >= 1")
    values = np.asarray(values)
    return values[::seg_len]


@dataclass(frozen=True)
class SegmentPairing:
    """Result of pairing a short set's segments against a long set's.

    Attributes
    ----------
    loads:
        ``loads[l]`` = number of short segments overlapping long segment
        ``l`` (the paper's load table, summed over columns).
    spans:
        Per short segment ``i``, the inclusive long-segment index range
        ``(start, end)`` it overlaps, or ``None`` when the short segment
        falls entirely outside the long set's value range.
    num_long_segments / num_short_segments:
        Segment counts of the two inputs.
    """

    loads: np.ndarray
    spans: tuple[tuple[int, int] | None, ...]
    num_long_segments: int
    num_short_segments: int

    @property
    def total_pairs(self) -> int:
        """Total (long segment, short segment) pairs to process."""
        return int(self.loads.sum())


def pair_segments(
    short: np.ndarray,
    long: np.ndarray,
    *,
    short_len: int = SHORT_SEGMENT_LEN,
    long_len: int = LONG_SEGMENT_LEN,
) -> SegmentPairing:
    """Pair overlapping segments of two sorted sets (paper Figure 7).

    Each short head is binary-searched against the long head list; short
    segment ``i`` then overlaps long segments ``pos_i - 1 .. end_i`` where
    ``end_i`` is determined by the segment's last element.  Short segments
    entirely below the long set's range pair with nothing.
    """
    short = np.asarray(short)
    long = np.asarray(long)
    n_long = max(1, -(-long.size // long_len)) if long.size else 0
    n_short = max(1, -(-short.size // short_len)) if short.size else 0
    if long.size == 0 or short.size == 0:
        return SegmentPairing(
            loads=np.zeros(n_long, dtype=np.int64),
            spans=tuple([None] * n_short),
            num_long_segments=n_long,
            num_short_segments=n_short,
        )
    long_heads = long[::long_len]
    starts = short[::short_len]
    last_idx = np.minimum(
        np.arange(1, n_short + 1) * short_len, short.size
    ) - 1
    ends_vals = short[last_idx]
    # pos = index of the long head immediately larger than the element;
    # the element then falls in long segment pos - 1.
    start_seg = np.searchsorted(long_heads, starts, side="right") - 1
    end_seg = np.searchsorted(long_heads, ends_vals, side="right") - 1
    loads = np.zeros(n_long, dtype=np.int64)
    spans: list[tuple[int, int] | None] = []
    for i in range(n_short):
        s = int(start_seg[i])
        e = int(end_seg[i])
        if e < 0:
            # Entire short segment below the long set's smallest value.
            spans.append(None)
            continue
        s = max(s, 0)
        spans.append((s, e))
        loads[s : e + 1] += 1
    return SegmentPairing(
        loads=loads,
        spans=tuple(spans),
        num_long_segments=n_long,
        num_short_segments=n_short,
    )


def pairing_loads(
    short: np.ndarray,
    long: np.ndarray,
    *,
    short_len: int = SHORT_SEGMENT_LEN,
    long_len: int = LONG_SEGMENT_LEN,
) -> np.ndarray:
    """Vectorized load table: short segments overlapping each long segment.

    Same semantics as :func:`pair_segments` (whose ``loads`` field the
    tests compare against) without materializing spans — the hot path of
    the hardware timing model.
    """
    short = np.asarray(short)
    long = np.asarray(long)
    n_long = -(-long.size // long_len) if long.size else 1
    if long.size == 0 or short.size == 0:
        return np.zeros(max(1, n_long), dtype=np.int64)
    n_short = -(-short.size // short_len)
    long_heads = long[::long_len]
    starts = short[::short_len]
    last_idx = np.minimum(np.arange(1, n_short + 1) * short_len, short.size) - 1
    ends_vals = short[last_idx]
    start_seg = np.searchsorted(long_heads, starts, side="right") - 1
    end_seg = np.searchsorted(long_heads, ends_vals, side="right") - 1
    valid = end_seg >= 0
    start_seg = np.maximum(start_seg[valid], 0)
    end_seg = end_seg[valid]
    diff = np.zeros(n_long + 1, dtype=np.int64)
    np.add.at(diff, start_seg, 1)
    np.add.at(diff, end_seg + 1, -1)
    return np.cumsum(diff[:-1])


@dataclass(frozen=True)
class WorkItem:
    """One IU assignment: a long segment with some of its paired shorts.

    ``cost(s_l, s_s)`` is the IU occupancy in cycles: the one-pass merge
    streams the whole long segment plus each paired short segment
    (paper section 4.3: "about s_l + 3 x s_s = 28" for three shorts).
    """

    long_segment: int
    num_short_segments: int

    def cost(self, long_len: int, short_len: int) -> int:
        return long_len + self.num_short_segments * short_len


def balance_loads(
    pairing: SegmentPairing,
    *,
    max_load: int = DEFAULT_MAX_LOAD,
    keep_unpaired: bool = False,
) -> list[WorkItem]:
    """Turn a load table into balanced work items (paper Figure 7).

    Long segments with zero paired shorts are omitted — except when
    ``keep_unpaired`` (the anti-subtraction case, where unpaired long
    segments pass through to the output and still occupy the datapath).
    Long segments with more than ``max_load`` shorts are split into
    multiple items so no IU receives a disproportionate share.
    """
    if max_load < 1:
        raise ValueError("max_load must be >= 1")
    items: list[WorkItem] = []
    for seg, load in enumerate(pairing.loads):
        load = int(load)
        if load == 0:
            if keep_unpaired:
                items.append(WorkItem(long_segment=seg, num_short_segments=0))
            continue
        while load > max_load:
            items.append(WorkItem(long_segment=seg, num_short_segments=max_load))
            load -= max_load
        items.append(WorkItem(long_segment=seg, num_short_segments=load))
    return items
