"""Merge-based set operations on strictly increasing id arrays.

These are the functional primitives: given the library invariant that all
inputs are sorted and duplicate-free, intersection and subtraction reduce
to ``numpy`` set routines with ``assume_unique=True`` (C-speed merges).
A pure-Python one-pass merge is also provided as the independent reference
the property-based tests compare against.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.pattern.plan import OpKind

__all__ = [
    "intersect",
    "subtract",
    "apply_op",
    "lower_bound_filter",
    "exclude_values",
    "merge_intersect_py",
    "merge_subtract_py",
]

_EMPTY = np.empty(0, dtype=np.int32)


def _as_ids(a: Sequence[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(a, dtype=np.int32)
    return arr if arr.size else _EMPTY


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a ∩ b`` for sorted unique arrays; result sorted unique."""
    a = _as_ids(a)
    b = _as_ids(b)
    if a.size == 0 or b.size == 0:
        return _EMPTY
    return np.intersect1d(a, b, assume_unique=True)


def subtract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a − b`` for sorted unique arrays; result sorted unique."""
    a = _as_ids(a)
    b = _as_ids(b)
    if a.size == 0:
        return _EMPTY
    if b.size == 0:
        return a
    return np.setdiff1d(a, b, assume_unique=True)


def apply_op(
    kind: OpKind, source: np.ndarray | None, operand: np.ndarray
) -> np.ndarray:
    """Execute one plan op functionally.

    ``INIT_COPY`` returns the operand (the fetched neighbor list);
    ``ANTI_SUBTRACT`` subtracts the *postponed* ancestor's list from the
    source (see :class:`repro.pattern.plan.OpKind`).
    """
    if kind is OpKind.INIT_COPY:
        return _as_ids(operand)
    if source is None:
        raise ValueError(f"{kind} requires a source set")
    if kind is OpKind.INTERSECT:
        return intersect(source, operand)
    if kind is OpKind.SUBTRACT or kind is OpKind.ANTI_SUBTRACT:
        return subtract(source, operand)
    raise ValueError(f"unknown op kind {kind!r}")


def lower_bound_filter(values: np.ndarray, bound: int) -> np.ndarray:
    """Keep elements strictly greater than ``bound`` (sorted input).

    This is the symmetry-breaking filter: all synthesized restrictions are
    lower bounds on later levels, so filtering is a single binary search —
    the hardware analog is pruning whole segments during head-list
    generation (paper section 4, stage 2).
    """
    values = _as_ids(values)
    cut = int(np.searchsorted(values, bound, side="right"))
    return values[cut:]


def exclude_values(values: np.ndarray, forbidden: Iterable[int]) -> np.ndarray:
    """Remove specific ids (the injectivity filter for reused ancestors).

    One vectorized mask pass: each forbidden id is located with a binary
    search and the hits are dropped together, instead of one ``np.delete``
    copy per id (which is O(k·n) and sits on every level with excludes).
    """
    values = _as_ids(values)
    if values.size == 0:
        return values
    ids = np.fromiter(forbidden, dtype=np.int64)
    if ids.size == 0:
        return values
    pos = np.searchsorted(values, ids)
    pos[pos == values.size] = 0
    hits = pos[values[pos] == ids]
    if hits.size == 0:
        return values
    keep = np.ones(values.size, dtype=bool)
    keep[hits] = False
    return values[keep]


# ----------------------------------------------------------------------
# Pure-Python reference merges (used by property tests as an oracle)
# ----------------------------------------------------------------------


def merge_intersect_py(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """One-pass merge intersection, exactly the hardware comparator walk."""
    out: list[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def merge_subtract_py(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """One-pass merge subtraction ``a − b``."""
    out: list[int] = []
    i = j = 0
    while i < len(a):
        if j >= len(b) or a[i] < b[j]:
            out.append(a[i])
            i += 1
        elif a[i] == b[j]:
            i += 1
            j += 1
        else:
            j += 1
    return out
