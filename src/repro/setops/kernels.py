"""Size-adaptive set-operation kernels with hub bitmaps.

The functional merge primitives (:mod:`repro.setops.merge`) realize every
intersection and subtraction with numpy's sort-based set routines.  That
is the right *reference*, but it is not how fast mining systems execute:
GPU pattern miners pick a binary-search intersection when one operand is
much smaller than the other, and SISA-style set algebras switch the set
*representation* (sorted list vs. bitmap) per operand.  This module is
the repository's analog — three interchangeable kernels behind one
dispatch layer:

``merge``
    The sort-based numpy path (``np.intersect1d`` / ``np.setdiff1d``
    with ``assume_unique=True``) — robust for balanced operand sizes.
``gallop``
    Binary-search probing (``np.searchsorted``) of the smaller operand
    into the larger: ``O(|small| * log |large|)``, the win when
    ``|a| << |b|`` (e.g. a shrunken candidate set against a hub's
    neighbor list).
``bitmap``
    Packed-uint64 membership bitmaps probed with shift/mask — bitwise
    AND plus popcount, mirroring the paper's result-collector bitvectors
    (section 4.3).  Backed by an optional per-run hub index over the
    top-degree vertices of a :class:`repro.graph.csr.CSRGraph`
    (:meth:`~repro.graph.csr.CSRGraph.hub_bitmap_index`), so probes
    against the heaviest neighbor lists are ``O(|source|)``.

**Contract (docs/KERNELS.md): kernel choice is functional-only.**  Every
kernel returns the bit-identical sorted unique ``int32`` array the merge
reference returns, so hardware timing models fed by these results —
segment pairing, load tables, cycle statistics — are unchanged for every
dispatch policy.  The property tests drive all kernels against the
pure-Python merge oracle, and :class:`KernelPolicy.force_kernel` is the
escape hatch that pins one kernel for oracle comparisons.

Dispatch decisions are tallied in process-wide counters
(:func:`kernel_counters`) surfaced by ``python -m repro.bench
--profile-kernels``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import sanitize
from repro.pattern.plan import OpKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.graph.csr import CSRGraph

__all__ = [
    "KernelContext",
    "KernelPolicy",
    "DEFAULT_POLICY",
    "KERNEL_NAMES",
    "SEGMENT_KERNEL_NAMES",
    "ENGINE_NAMES",
    "merge_intersect",
    "merge_subtract",
    "gallop_intersect",
    "gallop_subtract",
    "bitmap_intersect",
    "bitmap_subtract",
    "intersect_adaptive",
    "subtract_adaptive",
    "pack_bitmap",
    "unpack_bitmap",
    "popcount",
    "bitmap_and_count",
    "kernel_counters",
    "reset_kernel_counters",
]

_EMPTY = np.empty(0, dtype=np.int32)

#: The selectable kernel names (``KernelPolicy.force_kernel`` values).
KERNEL_NAMES = ("merge", "gallop", "bitmap")

#: The segmented membership-kernel names
#: (``KernelPolicy.force_segment_kernel`` values; repro.setops.segmented).
SEGMENT_KERNEL_NAMES = ("bitmap", "edgekey", "bisect")

#: The mining-engine execution models (``KernelPolicy.engine`` values).
ENGINE_NAMES = ("frontier", "recursive")


def _as_ids(a: Sequence[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(a, dtype=np.int32)
    return arr if arr.size else _EMPTY


# ----------------------------------------------------------------------
# Dispatch counters (process-wide; workers of a sharded run each keep
# their own, so --profile-kernels reports the driver process only).
# ----------------------------------------------------------------------

_COUNTERS: dict[str, int] = {}


def _tally(name: str, n: int = 1) -> None:
    # Per-process by design (see the section comment above): counters
    # are a profiling aid, never an input to results or timing.
    _COUNTERS[name] = _COUNTERS.get(name, 0) + n  # noqa: RACE001
    if sanitize.is_active():
        # Sanitizer probe: the adaptive dispatch *sequence* must be
        # identical across double-runs of the same job.
        sanitize.emit("kernel", name)


def kernel_counters() -> dict[str, int]:
    """Snapshot of per-kernel dispatch counts since the last reset.

    Keys are ``"<op>/<kernel>"`` (e.g. ``"intersect/gallop"``) plus the
    batch-counting tallies ``"batch/invocations"`` and
    ``"batch/children"``.
    """
    return dict(_COUNTERS)


def reset_kernel_counters() -> None:
    """Zero all dispatch counters."""
    _COUNTERS.clear()


# ----------------------------------------------------------------------
# The three kernels.  All take sorted duplicate-free id arrays and
# return the identical sorted unique int32 result.
# ----------------------------------------------------------------------


def merge_intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a ∩ b`` via the sort-based numpy merge (the reference kernel)."""
    a, b = _as_ids(a), _as_ids(b)
    if a.size == 0 or b.size == 0:
        return _EMPTY
    return np.intersect1d(a, b, assume_unique=True)


def merge_subtract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a − b`` via the sort-based numpy merge (the reference kernel)."""
    a, b = _as_ids(a), _as_ids(b)
    if a.size == 0:
        return _EMPTY
    if b.size == 0:
        return a
    return np.setdiff1d(a, b, assume_unique=True)


def _probe(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Boolean membership of each ``values`` element in sorted ``table``."""
    idx = np.searchsorted(table, values)
    # Out-of-range probes (value > table[-1]) clip to index 0; the
    # equality test is then False because value > table[-1] >= table[0].
    idx[idx == table.size] = 0
    return table[idx] == values


def gallop_intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a ∩ b`` by binary-searching the smaller operand into the larger.

    ``O(min * log max)`` — the size-skew kernel.  The result is read off
    the smaller operand, which is already sorted, so no re-sort happens.
    """
    a, b = _as_ids(a), _as_ids(b)
    if a.size == 0 or b.size == 0:
        return _EMPTY
    small, large = (a, b) if a.size <= b.size else (b, a)
    return small[_probe(small, large)]


def gallop_subtract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a − b`` by binary search, probing whichever side is smaller.

    When ``a`` is small its elements probe ``b`` and non-members
    survive; when ``b`` is small its elements locate their positions in
    ``a`` and those positions are masked out.
    """
    a, b = _as_ids(a), _as_ids(b)
    if a.size == 0:
        return _EMPTY
    if b.size == 0:
        return a
    if a.size <= b.size:
        return a[~_probe(a, b)]
    idx = np.searchsorted(a, b)
    in_range = idx < a.size
    pos = idx[in_range]
    hits = pos[a[pos] == b[in_range]]
    if hits.size == 0:
        return a
    keep = np.ones(a.size, dtype=bool)
    keep[hits] = False
    return a[keep]


# -- packed-uint64 bitmap representation --------------------------------

_ONE = np.uint64(1)


def pack_bitmap(ids: np.ndarray, num_bits: int | None = None) -> np.ndarray:
    """Pack sorted unique ids into a little-endian uint64 bit array.

    Bit ``i`` of the result is set iff ``i`` is present in ``ids``.
    ``num_bits`` fixes the domain width (default: ``ids[-1] + 1``).
    """
    ids = _as_ids(ids)
    if num_bits is None:
        num_bits = int(ids[-1]) + 1 if ids.size else 0
    words = np.zeros((num_bits + 63) // 64, dtype=np.uint64)
    if ids.size:
        np.bitwise_or.at(
            words, ids >> 6, _ONE << (ids & 63).astype(np.uint64)
        )
    return words


def unpack_bitmap(words: np.ndarray, num_bits: int | None = None) -> np.ndarray:
    """Inverse of :func:`pack_bitmap`: the sorted ids of all set bits."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    if num_bits is not None:
        bits = bits[:num_bits]
    return np.flatnonzero(bits).astype(np.int32)


if hasattr(np, "bitwise_count"):

    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across all words."""
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - numpy < 2.0 fallback

    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across all words (byte-LUT fallback)."""
        return int(np.unpackbits(words.view(np.uint8)).sum())


def bitmap_and_count(a_words: np.ndarray, b_words: np.ndarray) -> int:
    """``|A ∩ B|`` of two packed bitmaps: bitwise AND + popcount.

    This is the result-collector micro-operation of paper section 4.3,
    exposed for batch counting and the microbenchmarks.  Widths may
    differ; the overhang of the wider bitmap cannot intersect anything.
    """
    n = min(a_words.size, b_words.size)
    if n == 0:
        return 0
    return popcount(a_words[:n] & b_words[:n])


def _bitmap_probe(values: np.ndarray, words: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in a packed bitmap, as a boolean mask."""
    mask = np.zeros(values.size, dtype=bool)
    # values is sorted, so in-domain entries form a prefix.
    cut = int(np.searchsorted(values, words.size * 64))
    if cut:
        v = values[:cut]
        bit = (words[v >> 6] >> (v & 63).astype(np.uint64)) & _ONE
        mask[:cut] = bit.astype(bool)
    return mask


def bitmap_intersect(
    a: np.ndarray, b: np.ndarray, *, b_words: np.ndarray | None = None
) -> np.ndarray:
    """``a ∩ b`` by probing ``a`` against a packed bitmap of ``b``.

    ``b_words`` supplies a prebuilt bitmap (the hub-index fast path);
    otherwise one is packed on the fly, which only pays off when the
    bitmap is reused — the dispatch layer therefore picks this kernel
    for hub operands, while ``force_kernel="bitmap"`` exercises the
    on-the-fly path for oracle testing.
    """
    a, b = _as_ids(a), _as_ids(b)
    if a.size == 0 or b.size == 0:
        return _EMPTY
    words = pack_bitmap(b) if b_words is None else b_words
    return a[_bitmap_probe(a, words)]


def bitmap_subtract(
    a: np.ndarray, b: np.ndarray, *, b_words: np.ndarray | None = None
) -> np.ndarray:
    """``a − b`` by probing ``a`` against a packed bitmap of ``b``."""
    a, b = _as_ids(a), _as_ids(b)
    if a.size == 0:
        return _EMPTY
    if b.size == 0:
        return a
    words = pack_bitmap(b) if b_words is None else b_words
    return a[~_bitmap_probe(a, words)]


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KernelPolicy:
    """Tunable dispatch thresholds (see docs/KERNELS.md).

    Attributes
    ----------
    gallop_ratio:
        Use the gallop kernel when ``|large| >= gallop_ratio * |small|``.
    gallop_min_large:
        ...and the large operand has at least this many elements (below
        that the merge kernel's constant factor wins).
    use_hub_bitmaps:
        Enable the per-run hub-bitmap index; operands that are hub
        neighbor lists are then served by the bitmap kernel.
    hub_max_hubs / hub_min_degree / hub_memory_bytes:
        Hub-index sizing, forwarded to
        :meth:`repro.graph.csr.CSRGraph.hub_bitmap_index`.  The memory
        bound caps ``#hubs * ceil(|V|/64) * 8`` bytes.
    batch_penultimate:
        Enable the vectorized penultimate-level counting path in
        :mod:`repro.mining.engine` (recursive engine) and the fused
        terminal level of the frontier engine.
    force_kernel:
        ``"merge"``, ``"gallop"``, or ``"bitmap"`` pins every dispatch
        to one kernel (the property-test escape hatch); ``None`` selects
        adaptively.  Forcing also disables the hub index (the forced
        bitmap kernel packs operands on the fly so the oracle sees the
        standalone kernel).
    engine:
        Mining execution model: ``"frontier"`` (breadth-batched NumPy
        levels, the default) or ``"recursive"`` (the per-embedding
        oracle path).  Counting only; listing always recurses.
    frontier_budget_bytes:
        Spill budget for the frontier engine: when materializing the
        next level's embedding matrix (or a fused terminal probe) would
        exceed this many bytes, the frontier is processed in contiguous
        row chunks instead.  Any budget produces identical counts.
    force_segment_kernel:
        ``"bitmap"``, ``"edgekey"``, or ``"bisect"`` pins the segmented
        membership kernel (:mod:`repro.setops.segmented`); ``None``
        selects adaptively.
    segment_bitmap_bytes:
        Ceiling on the dense adjacency bitmap
        (:meth:`repro.graph.csr.CSRGraph.adjacency_bitmap`) the
        segmented dispatch may build; larger graphs fall back to the
        edge-key / bisect kernels.
    tuned:
        Opt into the measured-trial auto-tuner (:mod:`repro.tuning`,
        docs/TUNING.md): counting runs resolve this policy — and the
        plan's vertex order — against the persistent tuned-choice store
        for the (pattern, graph signature) at hand, falling back to
        measured trials on a cold store.  The remaining fields act as
        the *base* policy the tuner seeds its candidate grid from and
        the reference candidate trials are compared against.  Like every
        other knob, ``tuned`` is functional-only: resolved choices are
        verified bit-identical (including per-root sequences) during
        trials.

    Every policy produces bit-identical results; only speed changes.
    """

    gallop_ratio: float = 8.0
    gallop_min_large: int = 64
    use_hub_bitmaps: bool = True
    hub_max_hubs: int = 64
    hub_min_degree: int = 128
    hub_memory_bytes: int = 8 << 20
    batch_penultimate: bool = True
    force_kernel: str | None = None
    engine: str = "frontier"
    frontier_budget_bytes: int = 128 << 20
    force_segment_kernel: str | None = None
    segment_bitmap_bytes: int = 16 << 20
    tuned: bool = False

    def __post_init__(self) -> None:
        if self.force_kernel is not None and self.force_kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {self.force_kernel!r}; choose from "
                f"{KERNEL_NAMES}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINE_NAMES}"
            )
        if (
            self.force_segment_kernel is not None
            and self.force_segment_kernel not in SEGMENT_KERNEL_NAMES
        ):
            raise ValueError(
                f"unknown segment kernel {self.force_segment_kernel!r}; "
                f"choose from {SEGMENT_KERNEL_NAMES}"
            )
        if self.frontier_budget_bytes < 1:
            raise ValueError("frontier_budget_bytes must be >= 1")


#: The library-wide default policy.
DEFAULT_POLICY = KernelPolicy()


def _pick(a: np.ndarray, b: np.ndarray, policy: KernelPolicy) -> str:
    if policy.force_kernel is not None:
        return policy.force_kernel
    small = min(a.size, b.size)
    large = max(a.size, b.size)
    if large >= policy.gallop_min_large and large >= policy.gallop_ratio * max(
        1, small
    ):
        return "gallop"
    return "merge"


def intersect_adaptive(
    a: np.ndarray,
    b: np.ndarray,
    policy: KernelPolicy = DEFAULT_POLICY,
    *,
    b_words: np.ndarray | None = None,
) -> np.ndarray:
    """``a ∩ b`` through the dispatch layer (see :class:`KernelPolicy`).

    ``b_words`` is the hub-index bitmap of ``b`` when the caller has
    one; it wins the dispatch outright (probing is ``O(|a|)``).
    """
    if policy.force_kernel is None and b_words is not None:
        _tally("intersect/bitmap")
        return bitmap_intersect(a, b, b_words=b_words)
    kernel = _pick(a, b, policy)
    _tally(f"intersect/{kernel}")
    if kernel == "gallop":
        return gallop_intersect(a, b)
    if kernel == "bitmap":
        return bitmap_intersect(a, b)
    return merge_intersect(a, b)


def subtract_adaptive(
    a: np.ndarray,
    b: np.ndarray,
    policy: KernelPolicy = DEFAULT_POLICY,
    *,
    b_words: np.ndarray | None = None,
) -> np.ndarray:
    """``a − b`` through the dispatch layer (see :class:`KernelPolicy`)."""
    if policy.force_kernel is None and b_words is not None:
        _tally("subtract/bitmap")
        return bitmap_subtract(a, b, b_words=b_words)
    kernel = _pick(a, b, policy)
    _tally(f"subtract/{kernel}")
    if kernel == "gallop":
        return gallop_subtract(a, b)
    if kernel == "bitmap":
        return bitmap_subtract(a, b)
    return merge_subtract(a, b)


class KernelContext:
    """Per-run dispatcher binding a graph and its hub-bitmap index.

    The execution engines (functional engine, hardware PEs, software
    cores) create one context per run and route every plan op through
    :meth:`apply_op`.  Passing the operand's *vertex* lets the context
    recognize hub neighbor lists and serve them from packed bitmaps.
    The hub index is built lazily on the first hub-sized operand, so
    runs that never touch a hub pay nothing.
    """

    __slots__ = ("graph", "policy", "_hub", "_hub_ready")

    def __init__(
        self, graph: "CSRGraph", policy: KernelPolicy | None = None
    ) -> None:
        self.graph = graph
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self._hub = None
        self._hub_ready = False

    def _hub_words(self, vertex: int | None) -> np.ndarray | None:
        """The packed neighbor bitmap of ``vertex``, if it is a hub."""
        policy = self.policy
        if (
            vertex is None
            or not policy.use_hub_bitmaps
            or policy.force_kernel is not None
            or policy.hub_max_hubs <= 0
        ):
            return None
        if not self._hub_ready:
            self._hub = self.graph.hub_bitmap_index(
                max_hubs=policy.hub_max_hubs,
                min_degree=policy.hub_min_degree,
                memory_bytes=policy.hub_memory_bytes,
            )
            self._hub_ready = True
        return self._hub.words_for(vertex) if self._hub is not None else None

    def intersect(
        self, source: np.ndarray, operand: np.ndarray, vertex: int | None = None
    ) -> np.ndarray:
        return intersect_adaptive(
            source, operand, self.policy, b_words=self._hub_words(vertex)
        )

    def subtract(
        self, source: np.ndarray, operand: np.ndarray, vertex: int | None = None
    ) -> np.ndarray:
        return subtract_adaptive(
            source, operand, self.policy, b_words=self._hub_words(vertex)
        )

    def apply_op(
        self,
        kind: OpKind,
        source: np.ndarray | None,
        operand: np.ndarray,
        *,
        vertex: int | None = None,
    ) -> np.ndarray:
        """Adaptive analog of :func:`repro.setops.merge.apply_op`.

        Bit-identical to the merge reference for every policy — only
        the kernel executing the op changes.
        """
        if kind is OpKind.INIT_COPY:
            _tally("copy")
            return _as_ids(operand)
        if source is None:
            raise ValueError(f"{kind} requires a source set")
        if kind is OpKind.INTERSECT:
            return self.intersect(source, operand, vertex)
        if kind is OpKind.SUBTRACT or kind is OpKind.ANTI_SUBTRACT:
            return self.subtract(source, operand, vertex)
        raise ValueError(f"unknown op kind {kind!r}")
