"""Segment-aware set-operation kernels for the frontier engine.

The recursive engine applies each plan op to *one* candidate set at a
time (:mod:`repro.setops.kernels`).  The frontier engine instead carries
thousands of per-embedding candidate sets as a single
:class:`SegmentedSet` — one flat ``values`` array plus ``offsets``
marking each row's slice, the struct-of-arrays layout of the paper's
segment-level parallelism (sections 3.4/4.2, :mod:`repro.setops.segments`)
— and needs every op as *one* vectorized pass over the concatenation.

Intersections and subtractions against per-row neighbor lists reduce to
batched edge-membership queries ``value in N(owner)``, served by three
interchangeable kernels:

``bitmap``
    Probe a dense packed adjacency matrix
    (:meth:`repro.graph.csr.CSRGraph.adjacency_bitmap`) with shift/mask —
    ``O(1)`` per query, the win whenever the bitmap fits the policy's
    byte budget.
``edgekey``
    Binary-search ``owner * |V| + value`` keys in the sorted edge-key
    table (:meth:`repro.graph.csr.CSRGraph.edge_keys`) —
    ``O(log |E|)`` per query, no dense storage.
``bisect``
    Lockstep vectorized binary search of each query inside its owner's
    CSR slice — ``O(log max_degree)`` per query with *no* auxiliary
    table, the fallback for small batches where building/loading a
    table cannot amortize.

**Contract (docs/KERNELS.md): kernel choice is functional-only.**  Every
kernel returns the identical membership mask, so counts, dispatch-traced
results, and the timing models are unchanged for every policy.  The
dispatch decision is a pure function of the query-batch size, the graph
shape, and the policy — never of cache warm-up state — so the sanitizer's
double-run dispatch traces stay bit-identical.  Decisions are tallied via
:func:`repro.setops.kernels._tally` under ``"seg_<op>/<kernel>"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.setops.kernels import (
    DEFAULT_POLICY,
    SEGMENT_KERNEL_NAMES,
    KernelPolicy,
    _tally,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.graph.csr import CSRGraph

__all__ = [
    "SegmentedSet",
    "SEGMENT_KERNEL_NAMES",
    "gather_neighbors",
    "neighbor_membership",
    "intersect_neighbors",
    "subtract_neighbors",
    "compress",
    "pick_segment_kernel",
]

_EMPTY_VALUES = np.empty(0, dtype=np.int32)
_EMPTY_OFFSETS = np.zeros(1, dtype=np.int64)

#: Below this many queries the per-query ``O(log max_degree)`` bisect
#: kernel beats loading the edge-key table into cache.
_EDGEKEY_MIN_QUERIES = 2048


@dataclass(frozen=True)
class SegmentedSet:
    """Many sorted candidate sets in one flat array.

    ``values`` concatenates the rows; row ``r`` is
    ``values[offsets[r]:offsets[r + 1]]`` (``offsets`` has ``rows + 1``
    int64 entries, starting at 0).  Rows are sorted strictly-increasing
    id lists, exactly like single candidate sets, so every scalar-set
    invariant holds per row.
    """

    values: np.ndarray
    offsets: np.ndarray

    @property
    def rows(self) -> int:
        return self.offsets.size - 1

    @property
    def total(self) -> int:
        return int(self.offsets[-1])

    @property
    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    def row(self, r: int) -> np.ndarray:
        """One row's values (a view)."""
        return self.values[self.offsets[r] : self.offsets[r + 1]]

    def row_ids(self) -> np.ndarray:
        """The owning row index of every element of ``values``."""
        return np.repeat(
            np.arange(self.rows, dtype=np.int64), self.lengths
        )

    def take_rows(self, rows: np.ndarray) -> "SegmentedSet":
        """Gather a new segmented set whose row ``i`` is ``self`` row
        ``rows[i]`` (rows may repeat — this is the frontier expansion
        primitive)."""
        starts = self.offsets[:-1][rows]
        lens = self.lengths[rows]
        values, offsets = _gather(self.values, starts, lens)
        return SegmentedSet(values, offsets)

    def slice_rows(self, a: int, b: int) -> "SegmentedSet":
        """Rows ``a:b`` as a segmented set (cheap views)."""
        lo, hi = int(self.offsets[a]), int(self.offsets[b])
        return SegmentedSet(
            self.values[lo:hi], self.offsets[a : b + 1] - lo
        )

    @staticmethod
    def empty(rows: int = 0) -> "SegmentedSet":
        return SegmentedSet(
            _EMPTY_VALUES, np.zeros(rows + 1, dtype=np.int64)
        )


def _gather(
    values: np.ndarray, starts: np.ndarray, lens: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``values[starts[i]:starts[i]+lens[i]]`` slices."""
    lens = np.asarray(lens, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(lens)))
    total = int(offsets[-1])
    if total == 0:
        return values[:0], offsets
    pos = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets[:-1], lens)
        + np.repeat(np.asarray(starts, dtype=np.int64), lens)
    )
    return values[pos], offsets


def gather_neighbors(graph: "CSRGraph", vertices: np.ndarray) -> SegmentedSet:
    """Row ``i`` = ``N(vertices[i])`` — the segmented INIT_COPY."""
    vertices = np.asarray(vertices)
    starts = graph.indptr[vertices]
    lens = graph.indptr[vertices + 1] - starts
    values, offsets = _gather(graph.indices, starts, lens)
    return SegmentedSet(values, offsets)


def compress(seg: SegmentedSet, keep: np.ndarray) -> SegmentedSet:
    """Filter a segmented set by a per-element boolean mask.

    Row boundaries are recomputed with one cumulative sum, so the cost
    is ``O(total)`` regardless of how many rows empty out.
    """
    kept_before = np.concatenate(
        ([0], np.cumsum(keep, dtype=np.int64))
    )
    return SegmentedSet(seg.values[keep], kept_before[seg.offsets])


# ----------------------------------------------------------------------
# Batched edge membership — the three kernels
# ----------------------------------------------------------------------


def pick_segment_kernel(
    graph: "CSRGraph", num_queries: int, policy: KernelPolicy
) -> str:
    """Choose the membership kernel for one query batch.

    Pure in (graph shape, batch size, policy): the decision never reads
    whether a table is already cached, so sanitized double runs see the
    same dispatch trace.
    """
    if policy.force_segment_kernel is not None:
        return policy.force_segment_kernel
    if graph.adjacency_bitmap_bytes() <= policy.segment_bitmap_bytes:
        return "bitmap"
    if num_queries >= _EDGEKEY_MIN_QUERIES:
        return "edgekey"
    return "bisect"


def _bitmap_membership(
    graph: "CSRGraph", values: np.ndarray, owners: np.ndarray
) -> np.ndarray:
    words = graph.adjacency_bitmap()
    if words.size == 0:
        return np.zeros(values.size, dtype=bool)
    flat = words.ravel()
    idx = owners.astype(np.int64) * words.shape[1] + (values >> 6)
    bit = (flat[idx] >> (values & 63).astype(np.uint64)) & np.uint64(1)
    return bit.astype(bool)


def _edgekey_membership(
    graph: "CSRGraph", values: np.ndarray, owners: np.ndarray
) -> np.ndarray:
    table = graph.edge_keys()
    if table.size == 0:
        return np.zeros(values.size, dtype=bool)
    keys = owners.astype(np.int64) * graph.num_vertices + values
    idx = np.searchsorted(table, keys)
    idx[idx == table.size] = 0
    return table[idx] == keys


def _bisect_membership(
    graph: "CSRGraph", values: np.ndarray, owners: np.ndarray
) -> np.ndarray:
    indices = graph.indices
    if indices.size == 0:
        return np.zeros(values.size, dtype=bool)
    lo = graph.indptr[owners].copy()
    end = graph.indptr[np.asarray(owners) + 1]
    hi = end.copy()
    # Lockstep binary search: every lane halves its own CSR slice until
    # it converges on the insertion point of its query value.
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        less = indices[np.minimum(mid, indices.size - 1)] < values
        go_right = active & less
        go_left = active & ~less
        lo[go_right] = mid[go_right] + 1
        hi[go_left] = mid[go_left]
    hit = np.zeros(values.size, dtype=bool)
    in_range = lo < end
    hit[in_range] = indices[lo[in_range]] == values[in_range]
    return hit


_MEMBERSHIP = {
    "bitmap": _bitmap_membership,
    "edgekey": _edgekey_membership,
    "bisect": _bisect_membership,
}


def neighbor_membership(
    graph: "CSRGraph",
    values: np.ndarray,
    owners: np.ndarray,
    policy: KernelPolicy = DEFAULT_POLICY,
    *,
    op: str = "member",
) -> np.ndarray:
    """Boolean mask: ``values[i] in N(owners[i])``, batched.

    ``op`` labels the dispatch tally (``"seg_<op>/<kernel>"``) so the
    profiling counters distinguish intersect/subtract/fused probes.
    """
    if values.size == 0:
        return np.zeros(0, dtype=bool)
    kernel = pick_segment_kernel(graph, int(values.size), policy)
    _tally(f"seg_{op}/{kernel}")
    return _MEMBERSHIP[kernel](graph, values, owners)


def intersect_neighbors(
    source: SegmentedSet,
    graph: "CSRGraph",
    vertices: np.ndarray,
    policy: KernelPolicy = DEFAULT_POLICY,
) -> SegmentedSet:
    """Per-row ``source[r] ∩ N(vertices[r])`` in one pass."""
    owners = np.repeat(vertices, source.lengths)
    keep = neighbor_membership(
        graph, source.values, owners, policy, op="intersect"
    )
    return compress(source, keep)


def subtract_neighbors(
    source: SegmentedSet,
    graph: "CSRGraph",
    vertices: np.ndarray,
    policy: KernelPolicy = DEFAULT_POLICY,
) -> SegmentedSet:
    """Per-row ``source[r] − N(vertices[r])`` in one pass."""
    owners = np.repeat(vertices, source.lengths)
    member = neighbor_membership(
        graph, source.values, owners, policy, op="subtract"
    )
    return compress(source, ~member)
