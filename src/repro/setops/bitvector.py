"""The intersect-unit datapath and result aggregation (paper section 4.3).

FINGERS uses a *single* hardware unit type — a merge-based intersector —
for all three set operations, exploiting ``A − B = A − (A ∩ B)``:

* every IU always computes the intersection of its two input segments and
  emits a *bitvector*;
* for intersection and anti-subtraction the bitvector is indexed by the
  **long** segment's elements; for subtraction by the **short** segment's
  (padded with 1s);
* the result collector receives (bitvector, segment) pairs round-robin;
  pairs for the same segment are combined with bitwise OR — correct for
  intersection because ``A ∩ (B1 ∪ B2) = (A ∩ B1) ∪ (A ∩ B2)`` and for
  (anti-)subtraction because ``A − B1 − B2 = (A − B1) ∩ (A − B2)`` keeps
  exactly the positions that are 0 in *both* bitvectors.

:func:`segmented_set_op` replays this whole pipeline functionally; the
property-based tests assert it is extensionally equal to the plain merges
in :mod:`repro.setops.merge`, which is the architecture's correctness
argument.
"""

from __future__ import annotations

import numpy as np

from repro.setops.merge import merge_intersect_py
from repro.setops.segments import (
    LONG_SEGMENT_LEN,
    SHORT_SEGMENT_LEN,
    pair_segments,
    segment_bounds,
)

__all__ = ["intersect_bitvector", "aggregate_or", "segmented_set_op"]


def intersect_bitvector(
    index_segment: np.ndarray, other_segment: np.ndarray, width: int
) -> np.ndarray:
    """One IU pass: mark which ``index_segment`` elements are in the other.

    Returns a boolean vector of length ``width``; positions beyond the
    segment's actual length are padded with 1s (the paper pads subtraction
    bitvectors with 1s so phantom elements are never emitted; for
    intersection the padding is harmless because those positions carry no
    element).
    """
    hits = set(merge_intersect_py(list(index_segment), list(other_segment)))
    bits = np.ones(width, dtype=bool)
    for i, v in enumerate(index_segment):
        bits[i] = v in hits
    return bits


def aggregate_or(bitvectors: list[np.ndarray]) -> np.ndarray:
    """The result collector's combine step: bitwise OR of same-segment results."""
    if not bitvectors:
        raise ValueError("nothing to aggregate")
    out = bitvectors[0].copy()
    for bv in bitvectors[1:]:
        if bv.shape != out.shape:
            raise ValueError("bitvectors for one segment must share a width")
        out |= bv
    return out


def segmented_set_op(
    op: str,
    a: np.ndarray,
    b: np.ndarray,
    *,
    short_len: int = SHORT_SEGMENT_LEN,
    long_len: int = LONG_SEGMENT_LEN,
) -> np.ndarray:
    """Compute ``a ∩ b`` or ``a − b`` through the segmented IU pipeline.

    ``a`` is the semantic left operand (for subtraction the result is a
    subset of ``a``).  Roles are chosen by size as in the hardware: the
    longer input streams as the *long* set.  When ``op == "subtract"`` and
    ``a`` is the long input, this is exactly the paper's anti-subtraction
    flow (unpaired long segments pass through).
    """
    if op not in ("intersect", "subtract"):
        raise ValueError(f"unknown op {op!r}")
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if op == "intersect" and (a.size == 0 or b.size == 0):
        return np.empty(0, dtype=np.int64)
    if op == "subtract" and a.size == 0:
        return np.empty(0, dtype=np.int64)
    if b.size == 0:
        return a.copy() if op == "subtract" else np.empty(0, dtype=np.int64)

    a_is_long = a.size >= b.size
    long_set, short_set = (a, b) if a_is_long else (b, a)
    pairing = pair_segments(short_set, long_set, short_len=short_len, long_len=long_len)
    long_segs = segment_bounds(long_set.size, long_len)
    short_segs = segment_bounds(short_set.size, short_len)

    if op == "intersect" or (op == "subtract" and a_is_long):
        # Bitvector indexed by the long segment; one OR-accumulated
        # bitvector per long segment.
        acc: dict[int, list[np.ndarray]] = {}
        for si, span in enumerate(pairing.spans):
            if span is None:
                continue
            s_lo, s_hi = short_segs[si]
            s_vals = short_set[s_lo:s_hi]
            for li in range(span[0], span[1] + 1):
                l_lo, l_hi = long_segs[li]
                bv = intersect_bitvector(long_set[l_lo:l_hi], s_vals, long_len)
                # Clear the pad bits: only real elements may be marked.
                bv[l_hi - l_lo :] = False
                acc.setdefault(li, []).append(bv)
        out: list[int] = []
        for li, (l_lo, l_hi) in enumerate(long_segs):
            seg_vals = long_set[l_lo:l_hi]
            if li in acc:
                bits = aggregate_or(acc[li])[: l_hi - l_lo]
            else:
                bits = np.zeros(l_hi - l_lo, dtype=bool)
            if op == "intersect":
                out.extend(int(v) for v, bit in zip(seg_vals, bits) if bit)
            else:  # anti-subtraction: keep long elements NOT intersected
                out.extend(int(v) for v, bit in zip(seg_vals, bits) if not bit)
        return np.asarray(out, dtype=np.int64)

    # Ordinary subtraction: a is the short input; bitvector indexed by the
    # short segment, 1-padded, elements with 0 survive.
    acc_short: dict[int, list[np.ndarray]] = {}
    for si, span in enumerate(pairing.spans):
        if span is None:
            continue
        s_lo, s_hi = short_segs[si]
        s_vals = short_set[s_lo:s_hi]
        for li in range(span[0], span[1] + 1):
            l_lo, l_hi = long_segs[li]
            bv = intersect_bitvector(s_vals, long_set[l_lo:l_hi], short_len)
            acc_short.setdefault(si, []).append(bv)
    out = []
    for si, (s_lo, s_hi) in enumerate(short_segs):
        seg_vals = short_set[s_lo:s_hi]
        if si in acc_short:
            bits = aggregate_or(acc_short[si])[: s_hi - s_lo]
        else:
            bits = np.zeros(s_hi - s_lo, dtype=bool)
        out.extend(int(v) for v, bit in zip(seg_vals, bits) if not bit)
    return np.asarray(out, dtype=np.int64)
