"""Runtime determinism sanitizer (``REPRO_SANITIZE=1``).

The static Tier-C analyzer (:mod:`repro.analysis.dataflow`) proves the
*absence* of whole classes of nondeterminism — but only for the code
shapes it can see.  The sanitizer is the dynamic cross-check: run the
same job twice in one process with lightweight probes armed, record an
event trace from each run, and require the two traces to be
**bit-identical**.  Any dependence on set/dict iteration order, RNG
state leakage, or address-dependent hashing shows up as the first
diverging event, with enough context to find the seam.

Probes live at the documented determinism seams and cost one module
attribute read when the sanitizer is off:

* set-op kernel dispatch (:func:`repro.setops.kernels._tally`) — the
  adaptive kernel choice sequence;
* result merging (:func:`repro.core.result.merge_run_results`) — the
  section/scalar key orders that feed merged stats;
* shard fan-out (:func:`repro.parallel.pool.run_shards`) — the shard
  contents handed to workers;
* RNG construction (:mod:`repro.graph.generators`) — seed and call
  order of every generator;
* host-clock reads on measurement paths — *presence only*: the event
  carries no value, so wall-time jitter never diverges a trace, but a
  run that reads the clock a different number of times does.

Two runs of the same cell also assert result equality (count, counts,
cycles) — the sanitizer subsumes a plain double-run check.

This module deliberately depends on nothing inside ``repro`` (stdlib +
numpy only), so every package — including :mod:`repro.setops` at the
bottom of the import graph — can probe without cycles.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

__all__ = [
    "SanitizerError",
    "Trace",
    "TraceEvent",
    "add_probe_hook",
    "capture",
    "compare_traces",
    "emit",
    "emit_clock",
    "env_enabled",
    "is_active",
    "payload_digest",
    "remove_probe_hook",
    "suspended",
]

_ENV_VAR = "REPRO_SANITIZE"

#: Fast-path flag: probes check this before paying for a digest.
_ACTIVE = False
_EVENTS: list["TraceEvent"] | None = None

#: While set, probes are silenced entirely (no trace events, no hook
#: notifications) — see :func:`suspended`.
_SUSPENDED = False

#: Probe-hook bus: listeners that observe every probe firing (kind,
#: label) without a capture being armed.  The fault-injection framework
#: (:mod:`repro.resilience.faults`) rides this bus to count seam
#: traffic while a fault plan is installed.
_PROBE_HOOKS: list[Any] = []

_NO_PAYLOAD = object()


@dataclass(frozen=True)
class TraceEvent:
    """One probe firing: a kind, a seam label, and a payload digest.

    ``digest`` is empty for presence-only events (clock reads).
    """

    kind: str
    label: str
    digest: str

    def render(self) -> str:
        suffix = f" {self.digest[:12]}" if self.digest else ""
        return f"{self.kind}:{self.label}{suffix}"


@dataclass
class Trace:
    """The ordered event stream of one sanitized execution."""

    events: list[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def digest(self) -> str:
        h = hashlib.sha256()
        for ev in self.events:
            h.update(ev.kind.encode())
            h.update(b"\x1f")
            h.update(ev.label.encode())
            h.update(b"\x1f")
            h.update(ev.digest.encode())
            h.update(b"\x1e")
        return h.hexdigest()[:16]


class SanitizerError(RuntimeError):
    """Two sanitized executions of the same job diverged."""


def env_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests sanitized execution."""
    return os.environ.get(_ENV_VAR, "").strip() not in ("", "0")


def is_active() -> bool:
    """Whether probes should fire: a :func:`capture` is recording, or a
    probe hook (e.g. an installed fault plan) is listening — and probes
    are not :func:`suspended`."""
    if _SUSPENDED:
        return False
    return _ACTIVE or bool(_PROBE_HOOKS)


def add_probe_hook(hook: Any) -> None:
    """Subscribe ``hook(kind, label)`` to every probe firing.

    Hooks fire outside captures too (they arm :func:`is_active`), and
    must be cheap, deterministic, and free of probe calls themselves.
    """
    if hook not in _PROBE_HOOKS:
        _PROBE_HOOKS.append(hook)


def remove_probe_hook(hook: Any) -> None:
    """Unsubscribe a hook; unknown hooks are ignored."""
    try:
        _PROBE_HOOKS.remove(hook)
    except ValueError:
        pass


def payload_digest(payload: Any) -> str:
    """Stable content digest of a probe payload.

    NumPy arrays hash dtype, shape, and raw bytes; containers hash
    their elements **in iteration order** — on purpose: iteration-order
    nondeterminism is one of the defect classes the sanitizer exists to
    catch, so a dict probe must not sort the keys away.
    """
    h = hashlib.sha256()
    _feed(h, payload)
    return h.hexdigest()[:16]


def _feed(h: "hashlib._Hash", payload: Any) -> None:
    if isinstance(payload, np.ndarray):
        h.update(b"nd")
        h.update(str(payload.dtype).encode())
        h.update(str(payload.shape).encode())
        h.update(np.ascontiguousarray(payload).tobytes())
    elif isinstance(payload, dict):
        h.update(b"{")
        for key, value in payload.items():
            _feed(h, key)
            h.update(b":")
            _feed(h, value)
        h.update(b"}")
    elif isinstance(payload, (list, tuple)):
        h.update(b"[")
        for item in payload:
            _feed(h, item)
            h.update(b",")
        h.update(b"]")
    elif isinstance(payload, bytes):
        h.update(b"b")
        h.update(payload)
    else:
        h.update(repr(payload).encode())


def emit(kind: str, label: str, payload: Any = _NO_PAYLOAD) -> None:
    """Record one probe event (and notify probe hooks).

    Trace recording still requires an armed :func:`capture`; hooks see
    every firing regardless.
    """
    if _SUSPENDED:
        return
    for hook in _PROBE_HOOKS:
        hook(kind, label)
    if not _ACTIVE or _EVENTS is None:
        return
    digest = "" if payload is _NO_PAYLOAD else payload_digest(payload)
    _EVENTS.append(TraceEvent(kind=kind, label=label, digest=digest))


def emit_clock(label: str) -> None:
    """Record a host-clock read — presence only, never the value."""
    emit("clock", label)


@contextmanager
def capture() -> Iterator[Trace]:
    """Arm the probes and record every event until exit.

    Captures do not nest: the double-run comparator owns the trace, and
    a silently re-entered capture would interleave two runs' events.
    """
    global _ACTIVE, _EVENTS
    if _ACTIVE:
        raise RuntimeError("sanitizer captures do not nest")
    trace = Trace()
    _EVENTS = trace.events
    _ACTIVE = True
    try:
        yield trace
    finally:
        _ACTIVE = False
        _EVENTS = None


@contextmanager
def suspended() -> Iterator[None]:
    """Silence every probe (trace events *and* hook notifications).

    The auto-tuner (:mod:`repro.tuning`) wraps its measured trials in
    this: trial executions are measurement scaffolding that runs only
    when the tuned-choice store is cold, so under a sanitized double-run
    they would diverge the cold trace from the warm one.  Suspension
    nests inside a :func:`capture` and restores the prior state on exit;
    the resolved choice itself executes fully probed.
    """
    global _SUSPENDED
    prior = _SUSPENDED
    _SUSPENDED = True
    try:
        yield
    finally:
        _SUSPENDED = prior


def compare_traces(
    first: Trace, second: Trace, *, limit: int = 5
) -> list[str]:
    """Describe the divergences between two traces (empty = identical).

    Reports the first ``limit`` event-level mismatches plus any length
    mismatch; identical traces return ``[]``.
    """
    problems: list[str] = []
    if len(first) != len(second):
        problems.append(
            f"event counts differ: {len(first)} vs {len(second)}"
        )
    for i, (a, b) in enumerate(zip(first.events, second.events)):
        if a != b:
            problems.append(
                f"event {i} diverged: {a.render()} vs {b.render()}"
            )
            if sum(p.startswith("event ") for p in problems) >= limit:
                problems.append("... further divergences elided")
                break
    return problems
