"""Software (multi-core CPU) mining models.

The paper's section 3.5 observes that the three levels of fine-grained
parallelism "could also be used in software frameworks", but that
fine-grained workload distribution on general-purpose cores pays thread
launching and cooperation overheads, and leaves the study as future
work.  This package takes that study up with the same methodology as the
hardware layer: a cycle-approximate model of a multi-core CPU running
the *same* execution plans, with

* a configurable core model (merge throughput, SIMD width, per-task
  scheduling overhead — the software analog of FlexMiner's comparator);
* two scheduling granularities: ``tree`` (one task per search-tree root,
  the classic embarrassingly-parallel decomposition) and ``branch``
  (aDFS-style branch-level tasks with work stealing);
* a work-stealing scheduler with explicit steal latencies, so the
  paper's "diminishing returns" argument is measurable.

The models share the memory system (:mod:`repro.hw.cache`,
:mod:`repro.hw.memory`) and must reproduce the reference engine's counts
exactly, like every other executor in this repository.
"""

from repro.sw.config import SoftwareConfig
from repro.sw.miner import (
    SoftwareMiner,
    SoftwareResult,
    merge_software_results,
    simulate_software,
)

__all__ = [
    "SoftwareConfig",
    "SoftwareMiner",
    "simulate_software",
    "SoftwareResult",
    "merge_software_results",
]
