"""Configuration for the multi-core software mining model.

Cost defaults are calibrated against the published hardware/software
gap: FlexMiner (ISCA 2021) reports roughly an order of magnitude over
AutoMine/GraphZero-class CPU frameworks, which the defaults reproduce on
the mid-size analogs.  Concretely: ~2 cycles per merged element for the
branchy scalar merge loop (SIMD, cited by the paper via Inoue et al.
[28], can be enabled by raising ``elements_per_cycle``), ~100 cycles of
software bookkeeping per tree-extension task (allocation, iterator and
queue management — the overhead the paper says makes fine-grained
software parallelism pay "diminishing returns"), and a cache-transfer
latency per steal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import scaled_bytes

__all__ = ["SoftwareConfig"]


@dataclass(frozen=True)
class SoftwareConfig:
    """A multi-core CPU running pattern-aware mining in software.

    Attributes
    ----------
    num_cores:
        Worker cores.
    granularity:
        ``"tree"`` — one schedulable task per search-tree root (the
        coarse decomposition FlexMiner's software baselines use);
        ``"branch"`` — every tree-extension task is stealable
        (aDFS-style branch-level parallelism in software).
    elements_per_cycle:
        Merge throughput of one core (SIMD factor; 1.0 = scalar).
    task_overhead_cycles:
        Software scheduling cost per executed task (queue operations,
        function dispatch) — the overhead the paper says diminishes
        returns for fine granularities.
    steal_overhead_cycles:
        Latency of stealing a task from a remote deque (cross-core cache
        transfer).
    llc_bytes:
        Shared last-level cache, scaled like the accelerator caches.
    """

    num_cores: int = 8
    granularity: str = "tree"
    elements_per_cycle: float = 0.5
    task_overhead_cycles: int = 100
    steal_overhead_cycles: int = 200
    llc_bytes: int = scaled_bytes(32 * 1024 * 1024)
    frequency_ghz: float = 2.5

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be positive")
        if self.granularity not in ("tree", "branch"):
            raise ValueError("granularity must be 'tree' or 'branch'")
        if self.elements_per_cycle <= 0:
            raise ValueError("elements_per_cycle must be positive")

    @property
    def design_name(self) -> str:
        return f"SW-{self.num_cores}core-{self.granularity}"
