"""Cycle-approximate multi-core software miner with work stealing.

Each core executes the plan IR task by task, exactly like the hardware
PEs (it reuses :class:`repro.hw.pe.BasePE`'s traversal, including its
size-adaptive set-op dispatch — functional results only, the cost model
below is untouched; see docs/KERNELS.md), but with
software costs: merges at ``elements_per_cycle``, a per-task scheduling
overhead, and — under branch granularity — a steal latency whenever an
idle core takes work from another core's deque.  Steals take the
*oldest* (shallowest) task, the classic work-first stealing policy that
moves the largest subtrees.

This quantifies the paper's section 3.5 claim: branch-level parallelism
helps software too (it fixes the tree-granularity load imbalance on
power-law graphs), but the per-task overheads put a floor under how fine
software can slice the work, which is exactly the gap the FINGERS
hardware closes.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.core.result import RunResult, merge_run_results
from repro.graph.csr import CSRGraph
from repro.hw.cache import SectoredLRUCache
from repro.hw.config import MemoryConfig
from repro.hw.memory import DRAMModel
from repro.hw.pe import BasePE, Task
from repro.sw.config import SoftwareConfig

__all__ = [
    "SoftwareMiner",
    "SoftwareResult",
    "simulate_software",
    "merge_software_results",
]

#: LLC hit latency in core cycles (deeper hierarchy than the
#: accelerator's dedicated shared cache).
_LLC_HIT_LATENCY = 40


class _Core(BasePE):
    """One CPU worker: strict DFS locally, stealable deque of tasks."""

    def __init__(self, core_id, graph, plans, config, memcfg, llc, dram):
        super().__init__(core_id, graph, plans, memcfg, llc, dram)
        self.config = config
        self.steals = 0

    def _fetch_shared(self, v: int, now: float) -> float:  # override latency
        self.stats.neighbor_fetches += 1
        hit = self.shared_cache.access(v, self._list_bytes(v))
        if hit:
            return now + _LLC_HIT_LATENCY
        done = self.dram.access(now, self._list_bytes(v))
        return done + _LLC_HIT_LATENCY

    def step(self) -> float:
        group = self._stack.pop()
        t0 = self.now
        for task in group:
            fetch_done = self.now
            for v in self._task_operand_vertices(task):
                fetch_done = max(fetch_done, self._fetch_shared(v, self.now))
            self.stats.stall_cycles += max(0.0, fetch_done - self.now)
            self.now = fetch_done
            executed = self._execute_ops(task)
            compute = 0.0
            for _, source, operand in executed:
                src_len = source.size if source is not None else 0
                compute += (src_len + operand.size) / self.config.elements_per_cycle
            self.now += compute + self.config.task_overhead_cycles
            self.stats.tasks += 1
            self.stats.compute_cycles += compute
            self.stats.overhead_cycles += self.config.task_overhead_cycles
            self._spawn_children(task, group_size=1)
        self.stats.busy_cycles += self.now - t0
        return self.now

    # -- stealing interface ---------------------------------------------

    def steal_from(self, victim: "_Core", now: float) -> bool:
        """Take the victim's oldest task group; returns success.

        Only victims with *surplus* work (two or more queued groups) are
        eligible: stealing a core's last group would just bounce it
        between idle thieves (each steal defers execution by the steal
        latency) without anyone ever running it.
        """
        if len(victim._stack) < 2:
            return False
        group = victim._stack.pop(0)
        self._stack.append(group)
        self.now = max(self.now, now) + self.config.steal_overhead_cycles
        self.steals += 1
        return True

    @property
    def queue_depth(self) -> int:
        return len(self._stack)


#: Software runs produce the unified result type; the old name survives
#: as an alias (``core_stats``, ``llc``, ``total_steals``, ... resolve
#: through :class:`repro.core.result.RunResult`'s compatibility surface).
SoftwareResult = RunResult


def merge_software_results(
    results: Sequence[RunResult],
) -> RunResult:
    """Combine per-shard software runs with exact semantics.

    Alias of :func:`repro.core.result.merge_run_results`: counts,
    traffic counters, and steals sum; core stats concatenate; ``cycles``
    is the slowest shard's makespan.
    """
    return merge_run_results(results)


class SoftwareMiner:
    """Driver: schedules roots over cores, with optional work stealing."""

    def __init__(
        self,
        graph: CSRGraph,
        plans: Sequence,
        config: SoftwareConfig,
        memcfg: MemoryConfig | None = None,
    ) -> None:
        self.graph = graph
        self.plans = list(plans)
        self.config = config
        base_mem = memcfg or MemoryConfig()
        self.memcfg = base_mem.with_shared_cache(config.llc_bytes)

    def run(self, roots: Iterable[int] | None = None) -> SoftwareResult:
        llc = SectoredLRUCache(self.memcfg.shared_cache_bytes, name="llc")
        dram = DRAMModel(self.memcfg)
        cores = [
            _Core(i, self.graph, self.plans, self.config, self.memcfg, llc, dram)
            for i in range(self.config.num_cores)
        ]
        root_iter = iter(
            range(self.graph.num_vertices) if roots is None else roots
        )
        heap: list[tuple[float, int]] = []
        for core in cores:
            root = next(root_iter, None)
            if root is None:
                break
            core.assign_root(int(root), 0.0)
            heapq.heappush(heap, (core.now, core.pe_id))

        allow_steal = self.config.granularity == "branch"
        finish = [0.0] * len(cores)
        while heap:
            now, cid = heapq.heappop(heap)
            core = cores[cid]
            if core.has_work():
                core.step()
                heapq.heappush(heap, (core.now, cid))
                continue
            root = next(root_iter, None)
            if root is not None:
                core.assign_root(int(root), core.now)
                heapq.heappush(heap, (core.now, cid))
                continue
            if allow_steal:
                victim = max(
                    (c for c in cores if c.pe_id != cid),
                    key=lambda c: c.queue_depth,
                    default=None,
                )
                if victim is not None and core.steal_from(victim, now):
                    heapq.heappush(heap, (core.now, cid))
                    continue
                if any(c.has_work() for c in cores):
                    # Nothing stealable right now, but a busy core will
                    # push children shortly: poll again after a steal
                    # latency (bounded spinning, as a real scheduler does).
                    core.now = max(core.now, now) + self.config.steal_overhead_cycles
                    heapq.heappush(heap, (core.now, cid))
                    continue
            finish[cid] = core.now

        counts = [0] * len(self.plans)
        for core in cores:
            for i, c in enumerate(core.counts):
                counts[i] += c
        stats = [core.stats for core in cores]
        return RunResult(
            backend="software",
            design=self.config.design_name,
            cycles=max(finish) if finish else 0.0,
            counts=tuple(counts),
            units=tuple(stats),
            unit_finish_times=tuple(finish),
            sections={"llc": llc.stats, "dram": dram.stats},
            scalars={
                "num_cores": len(cores),
                "total_steals": sum(core.steals for core in cores),
            },
        )


def simulate_software(
    graph: CSRGraph,
    workload,
    config: SoftwareConfig,
    *,
    roots: Iterable[int] | None = None,
    jobs: int | None = None,
    shards: int | None = None,
) -> RunResult:
    """Run one mining job on the software model.

    Accepts the same workload specs as :func:`repro.hw.api.simulate`.
    ``jobs``/``shards`` select the sharded model (one cold miner per
    root shard, exact merges, makespan = max over shards) with the same
    determinism contract as the chip simulator — see
    docs/PARALLELISM.md.  Delegates to the registered ``software``
    backend (:mod:`repro.core.backends`).
    """
    from repro.core.backend import get_backend

    return get_backend("software").run(
        graph, workload, config, roots=roots, jobs=jobs, shards=shards
    )
