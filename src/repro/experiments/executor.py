"""Resumable sweep executor.

Drives every cell of an expanded sweep through the registry's cached
runner (:func:`repro.bench.runner.run_backend_cached`) — the exact same
code path as ``python -m repro.bench`` and the single-run CLI — and
appends one :class:`~repro.experiments.store.ResultRow` per executed
cell.  Resumption is keyed on :meth:`Backend.cache_key`: a cell whose
full cache identity (graph contents, config signature, schedule, roots,
execution model) already has a row in the target run is skipped without
touching the simulator, so re-running a finished sweep performs zero
recomputation.

Each row records two layers of observability alongside the result:
wall time plus the run-cache hit/miss deltas for the cell, and — for
functional cells — the set-op kernel dispatch-counter deltas
(docs/KERNELS.md).  This module sits outside the simulation packages,
so reading the host clock here is deliberate and lint-clean; modelled
``cycles`` never depend on it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Callable, Mapping

from repro import sanitize as _sanitize
from repro.bench.runner import run_backend_cached, runner_stats
from repro.bench.workloads import roots_for
from repro.core.backend import Backend, config_signature, get_backend
from repro.core.provenance import environment_provenance
from repro.experiments.spec import Cell, SweepSpec
from repro.experiments.store import ResultRow, ResultStore
from repro.graph.datasets import load_dataset
from repro.setops.kernels import kernel_counters

__all__ = ["SweepOutcome", "run_sweep", "sanitized_cell_check"]


@dataclass(frozen=True)
class SweepOutcome:
    """What one :func:`run_sweep` call did."""

    run: str
    executed: int
    resumed: int
    rows: tuple[ResultRow, ...]

    @property
    def total(self) -> int:
        return self.executed + self.resumed


def _counter_delta(before: Mapping[str, int], after: Mapping[str, int]):
    delta = {
        key: after[key] - before.get(key, 0)
        for key in after
        if after[key] != before.get(key, 0)
    }
    return delta


def sanitized_cell_check(
    backend: Backend,
    graph: object,
    cell: Cell,
    config: object,
    roots,
) -> None:
    """Run one cell twice with sanitizer probes armed and compare.

    Both executions call ``backend.run`` directly — deliberately
    *bypassing* the memo/disk caches: a cached second run would record
    zero kernel events and trivially "match".  Raises
    :class:`repro.sanitize.SanitizerError` on any trace divergence or
    result mismatch.
    """
    traces: list[_sanitize.Trace] = []
    results = []
    for _ in range(2):
        with _sanitize.capture() as trace:
            results.append(
                backend.run(
                    graph, cell.pattern, config,
                    roots=roots, schedule=cell.schedule, jobs=cell.jobs,
                )
            )
        traces.append(trace)
    problems = _sanitize.compare_traces(traces[0], traces[1])
    first, second = results
    if (
        first.count != second.count
        or tuple(first.counts) != tuple(second.counts)
        or first.cycles != second.cycles
    ):
        problems.append(
            "results differ: count {} vs {}, cycles {} vs {}".format(
                first.count, second.count, first.cycles, second.cycles
            )
        )
    if problems:
        raise _sanitize.SanitizerError(
            "sanitized double-run of cell ({}, {}, {}) diverged:\n  ".format(
                cell.pattern, cell.graph, cell.backend
            )
            + "\n  ".join(problems)
        )


def run_sweep(
    spec: SweepSpec,
    *,
    store: ResultStore | None = None,
    run: str | None = None,
    resume: bool = True,
    disk: bool | None = None,
    graphs: Mapping[str, object] | None = None,
    progress: Callable[[Cell, str], None] | None = None,
    sanitize: bool | None = None,
) -> SweepOutcome:
    """Execute every cell of ``spec`` into ``store`` under run ``run``
    (default: the spec's name).

    ``resume=True`` (the default) skips cells whose cache identity is
    already in the run.  ``disk`` is forwarded to the cached runner
    (``None`` = the process-wide :func:`repro.bench.runner.configure`
    setting).  ``graphs`` maps graph names to preloaded/synthetic
    :class:`~repro.graph.csr.CSRGraph` objects, bypassing the dataset
    catalog — used by tests and library callers.  ``progress`` receives
    ``(cell, "run" | "resume")`` per cell.

    ``sanitize`` arms the runtime determinism sanitizer
    (:mod:`repro.sanitize`): every *executed* cell is first run twice,
    uncached, and the two probe traces must be bit-identical.  ``None``
    defers to the ``REPRO_SANITIZE`` environment variable.  Resumed
    cells are not re-checked.
    """
    store = store if store is not None else ResultStore()
    sanitizing = sanitize if sanitize is not None else _sanitize.env_enabled()
    run_name = run or spec.name
    cells = spec.expand()
    seen = store.keys(run_name) if resume else set()
    shared_provenance = environment_provenance()

    loaded: dict[str, object] = dict(graphs or {})
    executed = 0
    resumed = 0
    rows: list[ResultRow] = []
    for cell in cells:
        if cell.graph not in loaded:
            loaded[cell.graph] = load_dataset(cell.graph)
        graph = loaded[cell.graph]
        backend = get_backend(cell.backend)
        config = spec.config_for(cell)
        roots = roots_for(cell.graph, graph)
        cell_key = backend.cache_key(
            graph, cell.pattern, config,
            roots=roots, schedule=cell.schedule,
            model="single-chip" if cell.jobs is None else "sharded",
        )
        if cell_key in seen:
            resumed += 1
            if progress is not None:
                progress(cell, "resume")
            continue

        if sanitizing:
            sanitized_cell_check(backend, graph, cell, config, roots)

        stats_before = runner_stats()
        kernels_before = kernel_counters()
        # Presence-only probe: a clock read *inside* a sanitized capture
        # means measurement code leaked onto a simulated path.
        _sanitize.emit_clock("experiments.executor.run_sweep")
        start = time.perf_counter()
        result = run_backend_cached(
            backend, graph, cell.graph, cell.pattern, config,
            roots=roots, schedule=cell.schedule, jobs=cell.jobs, disk=disk,
        )
        wall_time = time.perf_counter() - start
        stats_after = runner_stats()
        kernels_after = kernel_counters()

        row = ResultRow(
            run=run_name,
            cell_key=cell_key,
            pattern=cell.pattern,
            graph=cell.graph,
            backend=cell.backend,
            policy=cell.policy,
            jobs=cell.jobs,
            schedule=cell.schedule,
            workload=result.workload,
            config_signature=config_signature(config),
            count=result.count,
            counts=tuple(int(c) for c in result.counts),
            cycles=float(result.cycles),
            wall_time_s=wall_time,
            dispatch=_counter_delta(kernels_before, kernels_after),
            cache={
                "memo_hits": stats_after.memo_hits - stats_before.memo_hits,
                "disk_hits": stats_after.disk_hits - stats_before.disk_hits,
                "simulate_calls": (
                    stats_after.simulate_calls - stats_before.simulate_calls
                ),
            },
            provenance={
                **shared_provenance,
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
            },
        )
        store.append(row)
        seen.add(cell_key)
        rows.append(row)
        executed += 1
        if progress is not None:
            progress(cell, "run")
    return SweepOutcome(
        run=run_name, executed=executed, resumed=resumed, rows=tuple(rows)
    )
