"""Resumable sweep executor.

Drives every cell of an expanded sweep through the registry's cached
runner (:func:`repro.bench.runner.run_backend_cached`) — the exact same
code path as ``python -m repro.bench`` and the single-run CLI — and
appends one :class:`~repro.experiments.store.ResultRow` per executed
cell.  Resumption is keyed on :meth:`Backend.cache_key`: a cell whose
full cache identity (graph contents, config signature, schedule, roots,
execution model) already has a row in the target run is skipped without
touching the simulator, so re-running a finished sweep performs zero
recomputation.

Each row records two layers of observability alongside the result:
wall time plus the run-cache hit/miss deltas for the cell, and — for
functional cells — the set-op kernel dispatch-counter deltas
(docs/KERNELS.md).  This module sits outside the simulation packages,
so reading the host clock here is deliberate and lint-clean; modelled
``cycles`` never depend on it.

Failure isolation (docs/RESILIENCE.md): by default a cell that raises
does not abort the sweep — the exception becomes a structured
``status="failed"`` row (type, message, traceback digest, attempt
count, provenance) and the remaining cells keep running.
``retry_failed=True`` (CLI: ``repro exp run --retry-failed``) resumes a
run by re-executing only the cells whose *latest* row is a failure;
everything that succeeded stays resumed.  Sanitizer divergence
(:class:`repro.sanitize.SanitizerError`) is never isolated — a
determinism violation poisons the whole run, not one cell.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Callable, Mapping

from repro import sanitize as _sanitize
from repro.bench.runner import run_backend_cached, runner_stats
from repro.bench.workloads import roots_for
from repro.core.backend import Backend, config_signature, get_backend
from repro.core.provenance import environment_provenance
from repro.errors import CellFailed
from repro.experiments.spec import Cell, SweepSpec
from repro.experiments.store import ResultRow, ResultStore
from repro.graph.datasets import load_dataset
from repro.parallel import pool as _pool
from repro.resilience import faults
from repro.setops.kernels import kernel_counters

__all__ = ["SweepOutcome", "run_sweep", "sanitized_cell_check"]


@dataclass(frozen=True)
class SweepOutcome:
    """What one :func:`run_sweep` call did.

    ``executed`` counts successful cell measurements; ``failed`` counts
    cells isolated into failure rows (both appear in ``rows``).
    """

    run: str
    executed: int
    resumed: int
    rows: tuple[ResultRow, ...]
    failed: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.resumed + self.failed


def _counter_delta(before: Mapping[str, int], after: Mapping[str, int]):
    delta = {
        key: after[key] - before.get(key, 0)
        for key in after
        if after[key] != before.get(key, 0)
    }
    return delta


def sanitized_cell_check(
    backend: Backend,
    graph: object,
    cell: Cell,
    config: object,
    roots,
) -> None:
    """Run one cell twice with sanitizer probes armed and compare.

    Both executions call ``backend.run`` directly — deliberately
    *bypassing* the memo/disk caches: a cached second run would record
    zero kernel events and trivially "match".  Raises
    :class:`repro.sanitize.SanitizerError` on any trace divergence or
    result mismatch.
    """
    traces: list[_sanitize.Trace] = []
    results = []
    for _ in range(2):
        with _sanitize.capture() as trace:
            results.append(
                backend.run(
                    graph, cell.pattern, config,
                    roots=roots, schedule=cell.schedule, jobs=cell.jobs,
                )
            )
        traces.append(trace)
    problems = _sanitize.compare_traces(traces[0], traces[1])
    first, second = results
    if (
        first.count != second.count
        or tuple(first.counts) != tuple(second.counts)
        or first.cycles != second.cycles
    ):
        problems.append(
            "results differ: count {} vs {}, cycles {} vs {}".format(
                first.count, second.count, first.cycles, second.cycles
            )
        )
    if problems:
        raise _sanitize.SanitizerError(
            "sanitized double-run of cell ({}, {}, {}) diverged:\n  ".format(
                cell.pattern, cell.graph, cell.backend
            )
            + "\n  ".join(problems)
        )


def _error_record(exc: BaseException, attempt: int) -> dict:
    """The structured ``error`` column of a failure row.

    The full traceback is reduced to a digest: enough to tell two
    distinct failures apart (and to match a known one) without writing
    machine-specific paths into a store that is diffed in git.
    """
    tb = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return {
        "type": type(exc).__name__,
        "message": str(exc)[:500],
        "traceback_digest": hashlib.sha256(tb.encode("utf-8")).hexdigest()[
            :16
        ],
        "attempt": attempt,
    }


def run_sweep(
    spec: SweepSpec,
    *,
    store: ResultStore | None = None,
    run: str | None = None,
    resume: bool = True,
    disk: bool | None = None,
    graphs: Mapping[str, object] | None = None,
    progress: Callable[[Cell, str], None] | None = None,
    sanitize: bool | None = None,
    isolate: bool = True,
    retry_failed: bool = False,
) -> SweepOutcome:
    """Execute every cell of ``spec`` into ``store`` under run ``run``
    (default: the spec's name).

    ``resume=True`` (the default) skips cells whose cache identity is
    already in the run.  ``disk`` is forwarded to the cached runner
    (``None`` = the process-wide :func:`repro.bench.runner.configure`
    setting).  ``graphs`` maps graph names to preloaded/synthetic
    :class:`~repro.graph.csr.CSRGraph` objects, bypassing the dataset
    catalog — used by tests and library callers.  ``progress`` receives
    ``(cell, "run" | "resume" | "fail")`` per cell.

    ``sanitize`` arms the runtime determinism sanitizer
    (:mod:`repro.sanitize`): every *executed* cell is first run twice,
    uncached, and the two probe traces must be bit-identical.  ``None``
    defers to the ``REPRO_SANITIZE`` environment variable.  Resumed
    cells are not re-checked.

    ``isolate=True`` (the default) converts a failing cell into a
    structured failure row instead of aborting the sweep;
    ``isolate=False`` raises :class:`repro.errors.CellFailed` at the
    first failing cell.  ``retry_failed=True`` narrows resumption: only
    cells whose latest row is ``"failed"`` are re-executed (successful
    cells stay resumed).  A sanitizer divergence always propagates —
    isolation is for execution failures, not determinism violations.
    """
    store = store if store is not None else ResultStore()
    sanitizing = sanitize if sanitize is not None else _sanitize.env_enabled()
    run_name = run or spec.name
    cells = spec.expand()
    if resume:
        statuses = store.statuses(run_name)
        if retry_failed:
            seen = {k for k, s in statuses.items() if s == "ok"}
        else:
            seen = set(statuses)
    else:
        seen = set()
    prior_failures = store.failure_counts(run_name) if resume else {}
    shared_provenance = environment_provenance()

    loaded: dict[str, object] = dict(graphs or {})
    executed = 0
    resumed = 0
    failed = 0
    rows: list[ResultRow] = []
    for cell in cells:
        if cell.graph not in loaded:
            loaded[cell.graph] = load_dataset(cell.graph)
        graph = loaded[cell.graph]
        backend = get_backend(cell.backend)
        config = spec.config_for(cell)
        roots = roots_for(cell.graph, graph)
        cell_key = backend.cache_key(
            graph, cell.pattern, config,
            roots=roots, schedule=cell.schedule,
            model="single-chip" if cell.jobs is None else "sharded",
        )
        if cell_key in seen:
            resumed += 1
            if progress is not None:
                progress(cell, "resume")
            continue

        # Prior failed rows drive the fault attempt counter, so an
        # injected transient:cell fault clears on a later
        # --retry-failed pass while fail:cell stays permanent.
        attempt = prior_failures.get(cell_key, 0)
        stats_before = runner_stats()
        kernels_before = kernel_counters()
        retry_before = _pool.retry_stats()
        # Presence-only probe: a clock read *inside* a sanitized capture
        # means measurement code leaked onto a simulated path.
        _sanitize.emit_clock("experiments.executor.run_sweep")
        start = time.perf_counter()
        try:
            if faults.plan_active():
                faults.inject("cell", cell_key, attempt)
            if sanitizing:
                sanitized_cell_check(backend, graph, cell, config, roots)
            result = run_backend_cached(
                backend, graph, cell.graph, cell.pattern, config,
                roots=roots, schedule=cell.schedule, jobs=cell.jobs,
                disk=disk,
            )
        except _sanitize.SanitizerError:
            # Determinism violations poison the run; never isolate.
            raise
        except Exception as exc:
            wall_time = time.perf_counter() - start
            label = f"{cell.pattern}/{cell.graph}/{cell.backend}"
            if not isolate:
                raise CellFailed(label, attempts=attempt + 1) from exc
            row = ResultRow(
                run=run_name,
                cell_key=cell_key,
                pattern=cell.pattern,
                graph=cell.graph,
                backend=cell.backend,
                policy=cell.policy,
                jobs=cell.jobs,
                schedule=cell.schedule,
                config_signature=config_signature(config),
                wall_time_s=wall_time,
                status="failed",
                error=_error_record(exc, attempt + 1),
                provenance={
                    **shared_provenance,
                    "timestamp": datetime.now(timezone.utc).isoformat(
                        timespec="seconds"
                    ),
                },
            )
            store.append(row)
            seen.add(cell_key)
            prior_failures[cell_key] = attempt + 1
            rows.append(row)
            failed += 1
            if progress is not None:
                progress(cell, "fail")
            continue
        wall_time = time.perf_counter() - start
        stats_after = runner_stats()
        kernels_after = kernel_counters()
        retry_delta = _pool.retry_stats().delta(retry_before)

        row = ResultRow(
            run=run_name,
            cell_key=cell_key,
            pattern=cell.pattern,
            graph=cell.graph,
            backend=cell.backend,
            policy=cell.policy,
            jobs=cell.jobs,
            schedule=cell.schedule,
            workload=result.workload,
            config_signature=config_signature(config),
            count=result.count,
            counts=tuple(int(c) for c in result.counts),
            cycles=float(result.cycles),
            wall_time_s=wall_time,
            retry=retry_delta.as_dict() if retry_delta.recovered else {},
            dispatch=_counter_delta(kernels_before, kernels_after),
            cache={
                "memo_hits": stats_after.memo_hits - stats_before.memo_hits,
                "disk_hits": stats_after.disk_hits - stats_before.disk_hits,
                "simulate_calls": (
                    stats_after.simulate_calls - stats_before.simulate_calls
                ),
            },
            provenance={
                **shared_provenance,
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
            },
        )
        store.append(row)
        seen.add(cell_key)
        rows.append(row)
        executed += 1
        if progress is not None:
            progress(cell, "run")
    return SweepOutcome(
        run=run_name, executed=executed, resumed=resumed, rows=tuple(rows),
        failed=failed,
    )
