"""The schema'd result store: versioned JSONL, one file per run.

Every measurement the experiment executor (or the legacy-results
migration) produces becomes one :class:`ResultRow` appended to
``<store>/<run>.jsonl``.  Rows are self-describing: each line carries
``schema`` (:data:`STORE_SCHEMA_VERSION`) plus full provenance — git
hash, config signature, hostname, python/numpy versions, timestamp — so
any number in a generated report traces back to the commit and machine
that produced it (docs/BENCHMARKS.md, "Row schema").

Append-only JSONL keeps the store diff-friendly in git and makes the
executor interrupt-safe: a killed sweep has complete rows for every
finished cell and nothing else.  Readers skip lines from a *newer*
schema (forward-compatibly) and malformed lines rather than failing the
whole run file.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.paths import store_dir
from repro.experiments.spec import NAME_RE

__all__ = ["ResultRow", "ResultStore", "STORE_SCHEMA_VERSION"]

#: Bump when a row field changes meaning; readers ignore newer rows.
STORE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ResultRow:
    """One (cell, measurement) record.

    ``cell_key`` is the backend's full cache key
    (:meth:`repro.core.backend.Backend.cache_key`) — graph contents,
    config signature, schedule, roots, execution model — which is what
    makes resume exact: a row exists iff that cache identity was run.
    ``metrics`` holds higher-is-better figures (speedups); ``extras``
    holds informational values excluded from regression checks.

    ``status`` is ``"ok"`` for a measurement and ``"failed"`` for a
    cell the executor isolated after an exception; failed rows carry a
    structured ``error`` record (exception type, message, traceback
    digest, attempt number — docs/RESILIENCE.md, "Sweep failure rows")
    and zeroed measurement fields.  The *last* row per ``cell_key``
    wins, so ``--retry-failed`` re-runs append a fresh ``ok`` row that
    supersedes the failure without rewriting history.  ``retry`` holds
    the cell's :class:`repro.resilience.retry.RetryStats` delta when
    shard-level recovery engaged (empty otherwise).
    """

    run: str
    cell_key: str
    pattern: str
    graph: str
    backend: str
    policy: str = "default"
    jobs: int | None = None
    schedule: str = "dynamic"
    workload: str = ""
    config_signature: str = ""
    count: int = 0
    counts: tuple[int, ...] = ()
    cycles: float = 0.0
    wall_time_s: float = 0.0
    status: str = "ok"
    error: dict = field(default_factory=dict)
    retry: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    dispatch: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def identity(self) -> tuple:
        """The join key for cross-run diffs: *what* was measured,
        independent of *when* or *on which commit*."""
        return (
            self.pattern, self.graph, self.backend,
            self.policy, self.jobs, self.schedule,
        )

    def to_json(self) -> str:
        record = dataclasses.asdict(self)
        record["counts"] = list(self.counts)
        record["schema"] = STORE_SCHEMA_VERSION
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "ResultRow | None":
        """Parse one store line; ``None`` for malformed or newer-schema
        rows (the store is append-only and read forward-compatibly)."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict):
            return None
        if record.pop("schema", None) not in range(
            1, STORE_SCHEMA_VERSION + 1
        ):
            return None
        names = {f.name for f in dataclasses.fields(cls)}
        if not {"run", "cell_key"} <= record.keys():
            return None
        kwargs = {k: v for k, v in record.items() if k in names}
        kwargs["counts"] = tuple(kwargs.get("counts", ()))
        try:
            return cls(**kwargs)
        except TypeError:
            return None


class ResultStore:
    """Filesystem-backed run store rooted at ``benchmarks/results/store``
    (override via the constructor or ``$REPRO_RESULTS_DIR``)."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else store_dir()

    def _path(self, run: str) -> Path:
        if not NAME_RE.match(run):
            raise ValueError(
                f"run name {run!r} must match {NAME_RE.pattern}"
            )
        return self.root / f"{run}.jsonl"

    def runs(self) -> list[str]:
        """Sorted names of every run present in the store."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    def append(self, rows: "list[ResultRow] | ResultRow") -> None:
        """Append rows to their runs' files (creating the store lazily)."""
        if isinstance(rows, ResultRow):
            rows = [rows]
        self.root.mkdir(parents=True, exist_ok=True)
        by_run: dict[str, list[ResultRow]] = {}
        for row in rows:
            by_run.setdefault(row.run, []).append(row)
        for run, run_rows in by_run.items():
            with self._path(run).open("a", encoding="utf-8") as handle:
                for row in run_rows:
                    handle.write(row.to_json() + "\n")

    def load(self, run: str) -> list[ResultRow]:
        """All readable rows of one run (malformed/newer lines skipped)."""
        path = self._path(run)
        if not path.exists():
            raise FileNotFoundError(
                f"run {run!r} not found in store {self.root} "
                f"(known runs: {', '.join(self.runs()) or 'none'})"
            )
        rows = []
        for line in path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            row = ResultRow.from_json(line)
            if row is not None:
                rows.append(row)
        return rows

    def keys(self, run: str) -> set[str]:
        """The cache identities already measured in one run (empty set
        for an absent run — resuming into a fresh run is not an error)."""
        try:
            return {row.cell_key for row in self.load(run)}
        except FileNotFoundError:
            return set()

    def statuses(self, run: str) -> dict[str, str]:
        """Last-row-wins status per cell identity (empty for an absent
        run).  This is what resume decisions read: a cell whose latest
        row is ``"failed"`` is complete for a normal resume but
        outstanding for ``--retry-failed``."""
        try:
            return {row.cell_key: row.status for row in self.load(run)}
        except FileNotFoundError:
            return {}

    def failure_counts(self, run: str) -> dict[str, int]:
        """How many failed rows each cell identity has accumulated —
        the executor's per-cell attempt counter across invocations."""
        counts: dict[str, int] = {}
        try:
            rows = self.load(run)
        except FileNotFoundError:
            return counts
        for row in rows:
            if row.status == "failed":
                counts[row.cell_key] = counts.get(row.cell_key, 0) + 1
        return counts

    def has(self, run: str, cell_key: str) -> bool:
        return cell_key in self.keys(run)

    def delete(self, run: str) -> bool:
        """Remove one run file; returns whether it existed."""
        path = self._path(run)
        if path.exists():
            path.unlink()
            return True
        return False
