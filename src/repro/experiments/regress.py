"""Regression detection: diff a run against a named baseline.

Rows are joined on :meth:`ResultRow.identity` — (pattern, graph,
backend, policy, jobs, schedule) — and compared field by field under
the thresholds documented in docs/BENCHMARKS.md:

* **counts** are exact: any mismatch is a regression (a wrong count is
  a correctness bug, never noise);
* **cycles** are deterministic model outputs, compared under the tight
  ``cycle_threshold`` (default 1.25×) — slower is a regression, faster
  past the same threshold is reported as an improvement;
* **wall time** is host-noise-prone, compared under the looser
  ``wall_threshold`` (default 1.5×);
* **metrics** are higher-is-better figures (speedups): falling below
  ``baseline / cycle_threshold`` regresses.

Cells present on one side only are informational — sweeps legitimately
grow and shrink.  Cells whose latest row is a failure
(``status="failed"``, docs/RESILIENCE.md) carry no measurement and are
excluded from comparison with an INFO finding — a failed cell is
diagnosed by ``repro exp run --retry-failed``, not by diffing zeroes.
``DiffReport.exit_code`` is nonzero iff at least one regression
survived, which is what CI and ``repro exp diff`` propagate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.experiments.store import ResultRow

__all__ = ["DiffReport", "Finding", "diff_runs"]

REGRESSION = "regression"
IMPROVEMENT = "improvement"
INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One observation from a baseline/current comparison."""

    severity: str
    cell: str
    message: str

    def render(self) -> str:
        return f"[{self.severity.upper():11s}] {self.cell}: {self.message}"


@dataclass(frozen=True)
class DiffReport:
    """Outcome of :func:`diff_runs`."""

    baseline: str
    current: str
    compared: int
    findings: tuple[Finding, ...]

    @property
    def regressions(self) -> tuple[Finding, ...]:
        return tuple(
            f for f in self.findings if f.severity == REGRESSION
        )

    @property
    def exit_code(self) -> int:
        """0 when no regression was found, 1 otherwise (the CLI's and
        CI's pass/fail signal)."""
        return 1 if self.regressions else 0

    def render(self) -> str:
        lines = [
            f"diff: {self.current} vs baseline {self.baseline} "
            f"({self.compared} cells compared)"
        ]
        lines += [f.render() for f in self.findings]
        verdict = (
            f"FAIL: {len(self.regressions)} regression(s)"
            if self.regressions else "OK: no regressions"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _cell_label(identity: tuple) -> str:
    pattern, graph, backend, policy, jobs, schedule = identity
    parts = [pattern, graph, backend]
    if policy != "default":
        parts.append(policy)
    if schedule != "dynamic":
        parts.append(schedule)
    if jobs is not None:
        parts.append(f"jobs={jobs}")
    return "/".join(parts)


def _latest_by_identity(rows: Iterable[ResultRow]) -> dict[tuple, ResultRow]:
    # Append-only stores can hold re-runs of one cell; the newest row
    # (file order) is the run's current word on that cell.
    latest: dict[tuple, ResultRow] = {}
    for row in rows:
        latest[row.identity()] = row
    return latest


def diff_runs(
    baseline_rows: Iterable[ResultRow],
    current_rows: Iterable[ResultRow],
    *,
    baseline: str = "baseline",
    current: str = "current",
    cycle_threshold: float = 1.25,
    wall_threshold: float = 1.5,
) -> DiffReport:
    """Compare two runs' rows; see the module docstring for the policy."""
    if cycle_threshold <= 1.0 or wall_threshold <= 1.0:
        raise ValueError("thresholds are ratios and must be > 1.0")
    base_all = _latest_by_identity(baseline_rows)
    curr_all = _latest_by_identity(current_rows)
    # A cell whose latest row is a failure has no measurement to
    # compare; keep it out of the join (and say so for the current run).
    base = {k: r for k, r in base_all.items() if r.ok}
    curr = {k: r for k, r in curr_all.items() if r.ok}
    findings: list[Finding] = []
    compared = 0

    for identity in sorted(set(curr_all) - set(curr), key=str):
        err = curr_all[identity].error
        findings.append(Finding(
            INFO, _cell_label(identity),
            "currently failed ({}); excluded from comparison".format(
                err.get("type", "unknown error")
            ),
        ))

    for identity in sorted(set(base) - set(curr_all), key=str):
        findings.append(Finding(
            INFO, _cell_label(identity), "present only in baseline"
        ))
    for identity in sorted(set(curr) - set(base), key=str):
        findings.append(Finding(
            INFO, _cell_label(identity), "new cell (no baseline)"
        ))

    for identity in sorted(set(base) & set(curr), key=str):
        b, c = base[identity], curr[identity]
        cell = _cell_label(identity)
        compared += 1
        if b.counts and c.counts and b.counts != c.counts:
            findings.append(Finding(
                REGRESSION, cell,
                f"count mismatch: baseline {b.counts} != current {c.counts}",
            ))
        if b.cycles > 0 and c.cycles > 0:
            ratio = c.cycles / b.cycles
            if ratio > cycle_threshold:
                findings.append(Finding(
                    REGRESSION, cell,
                    f"cycles {b.cycles:,.0f} -> {c.cycles:,.0f} "
                    f"({ratio:.2f}x > {cycle_threshold:.2f}x threshold)",
                ))
            elif ratio < 1.0 / cycle_threshold:
                findings.append(Finding(
                    IMPROVEMENT, cell,
                    f"cycles {b.cycles:,.0f} -> {c.cycles:,.0f} "
                    f"({1 / ratio:.2f}x faster)",
                ))
        if b.wall_time_s > 0 and c.wall_time_s > 0:
            ratio = c.wall_time_s / b.wall_time_s
            if ratio > wall_threshold:
                findings.append(Finding(
                    REGRESSION, cell,
                    f"wall time {b.wall_time_s:.4g}s -> {c.wall_time_s:.4g}s "
                    f"({ratio:.2f}x > {wall_threshold:.2f}x threshold)",
                ))
            elif ratio < 1.0 / wall_threshold:
                findings.append(Finding(
                    IMPROVEMENT, cell,
                    f"wall time {b.wall_time_s:.4g}s -> {c.wall_time_s:.4g}s "
                    f"({1 / ratio:.2f}x faster)",
                ))
        for key in sorted(set(b.metrics) & set(c.metrics)):
            bv, cv = b.metrics[key], c.metrics[key]
            if bv <= 0 or cv <= 0:
                continue
            if cv < bv / cycle_threshold:
                findings.append(Finding(
                    REGRESSION, cell,
                    f"metric {key}: {bv:.4g} -> {cv:.4g} "
                    f"(below baseline/{cycle_threshold:.2f})",
                ))
            elif cv > bv * cycle_threshold:
                findings.append(Finding(
                    IMPROVEMENT, cell,
                    f"metric {key}: {bv:.4g} -> {cv:.4g}",
                ))
    return DiffReport(
        baseline=baseline,
        current=current,
        compared=compared,
        findings=tuple(findings),
    )
