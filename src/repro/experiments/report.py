"""Report generation: markdown + HTML views of a stored run.

Rendering is a pure function of the stored rows — no clocks, no
environment reads — so reports regenerate byte-identically from the
same store (the golden-file tests rely on this).  Each report carries:

* the full result table per (pattern, graph, backend, policy) cell,
* wall-clock speedups against the ``functional``/``default`` cell of
  the same (pattern, graph) — the paper's reference engine,
* modelled-cycle speedups of ``fingers`` over ``flexminer`` where both
  were swept, and
* a provenance table: git hash, config signature, host, interpreter and
  numpy versions, and timestamp for **every** row (docs/BENCHMARKS.md).

``write_report`` is one of the two modules allowed to write under
``benchmarks/results/`` (the STORE001 lint rule funnels everything else
through the store).
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Iterable, Sequence

from repro.bench.paths import reports_dir
from repro.experiments.store import ResultRow, ResultStore

__all__ = ["render_html", "render_markdown", "render_text", "write_report"]


def _sorted(rows: Iterable[ResultRow]) -> list[ResultRow]:
    return sorted(
        rows, key=lambda r: (r.identity(), r.provenance.get("timestamp", ""))
    )


def _partition(rows: Iterable[ResultRow]) -> tuple[list[ResultRow], list[ResultRow]]:
    """``(ok_rows, current_failures)`` for one run's rows.

    Measurement tables render only ``ok`` rows.  A cell counts as
    *currently* failed when its **latest** row (store file order) is a
    failure — a failure superseded by a later ``--retry-failed``
    success disappears from the failure table, matching resume
    semantics.  All-ok stores partition to ``(rows, [])``, keeping the
    pre-resilience reports byte-identical.
    """
    rows = list(rows)
    latest: dict[str, ResultRow] = {}
    for row in rows:
        latest[row.cell_key] = row
    failures = _sorted(r for r in latest.values() if not r.ok)
    return _sorted(r for r in rows if r.ok), failures


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def _cell_name(row: ResultRow) -> str:
    parts = [row.pattern, row.graph, row.backend]
    if row.policy != "default":
        parts.append(row.policy)
    if row.schedule != "dynamic":
        parts.append(row.schedule)
    if row.jobs is not None:
        parts.append(f"jobs={row.jobs}")
    return "/".join(parts)


def _result_table(rows: Sequence[ResultRow]) -> tuple[list[str], list[list[str]]]:
    header = [
        "pattern", "graph", "backend", "policy", "jobs", "schedule",
        "count", "cycles", "wall s",
    ]
    body = [
        [
            row.pattern, row.graph, row.backend, row.policy,
            "-" if row.jobs is None else str(row.jobs), row.schedule,
            f"{row.count:,}", f"{row.cycles:,.0f}", _fmt(row.wall_time_s),
        ]
        for row in rows
    ]
    return header, body


def _speedup_rows(rows: Sequence[ResultRow]) -> list[list[str]]:
    reference = {
        (r.pattern, r.graph): r
        for r in rows
        if r.backend == "functional" and r.policy == "default"
        and r.jobs is None and r.schedule == "dynamic"
    }
    body = []
    for row in rows:
        ref = reference.get((row.pattern, row.graph))
        if ref is None or row is ref:
            continue
        if ref.wall_time_s <= 0 or row.wall_time_s <= 0:
            continue
        body.append([
            _cell_name(row), _fmt(ref.wall_time_s), _fmt(row.wall_time_s),
            f"{ref.wall_time_s / row.wall_time_s:.2f}",
        ])
    return body


def _policy_speedup_rows(rows: Sequence[ResultRow]) -> list[list[str]]:
    """Wall-clock speedups of every non-baseline policy against the
    baseline *policy* of the same (pattern, graph, backend, jobs,
    schedule) cell — the engine-comparison view (``make bench-engine``).

    The baseline policy is ``recursive`` when the run swept one (the
    engine sweeps name their oracle cell that), else ``legacy``, else
    ``default``.  Empty when the run swept a single policy, so classic
    single-policy reports are unchanged.
    """
    by_policy: dict[str, dict[tuple, ResultRow]] = {}
    for r in rows:
        key = (r.pattern, r.graph, r.backend, r.jobs, r.schedule)
        by_policy.setdefault(r.policy, {})[key] = r
    if len(by_policy) < 2:
        return []
    base_name = next(
        (n for n in ("recursive", "legacy", "default") if n in by_policy),
        None,
    )
    if base_name is None:
        return []
    baseline = by_policy[base_name]
    body = []
    for row in rows:
        if row.policy == base_name:
            continue
        ref = baseline.get((row.pattern, row.graph, row.backend, row.jobs,
                            row.schedule))
        if ref is None or ref.wall_time_s <= 0 or row.wall_time_s <= 0:
            continue
        body.append([
            _cell_name(row), base_name, _fmt(ref.wall_time_s),
            _fmt(row.wall_time_s),
            f"{ref.wall_time_s / row.wall_time_s:.2f}",
        ])
    return body


def _cycle_speedup_rows(rows: Sequence[ResultRow]) -> list[list[str]]:
    def pick(backend):
        return {
            (r.pattern, r.graph): r
            for r in rows
            if r.backend == backend and r.policy == "default"
            and r.cycles > 0
        }

    ours, baseline = pick("fingers"), pick("flexminer")
    body = []
    for key in sorted(set(ours) & set(baseline)):
        f, x = ours[key], baseline[key]
        body.append([
            f"{key[0]}/{key[1]}", f"{f.cycles:,.0f}", f"{x.cycles:,.0f}",
            f"{x.cycles / f.cycles:.2f}",
        ])
    return body


def _provenance_rows(rows: Sequence[ResultRow]) -> list[list[str]]:
    body = []
    for row in rows:
        p = row.provenance
        body.append([
            _cell_name(row),
            p.get("git_hash", "unknown"),
            row.config_signature,
            p.get("hostname", "?"),
            f"py {p.get('python', '?')} / np {p.get('numpy', '?')}",
            p.get("timestamp", "?"),
        ])
    return body


def _failure_rows(failures: Sequence[ResultRow]) -> list[list[str]]:
    return [
        [
            _cell_name(row),
            row.error.get("type", "?"),
            row.error.get("message", ""),
            str(row.error.get("attempt", "?")),
            row.provenance.get("timestamp", "?"),
        ]
        for row in failures
    ]


_SPEEDUP_HEADER = ["cell", "functional wall s", "wall s", "speedup"]
_POLICY_SPEEDUP_HEADER = ["cell", "baseline policy", "baseline wall s",
                          "wall s", "speedup"]
_FAILURE_HEADER = ["cell", "error", "message", "attempt", "timestamp"]
_CYCLES_HEADER = ["pattern/graph", "fingers cycles", "flexminer cycles",
                  "speedup"]
_PROVENANCE_HEADER = ["cell", "git hash", "config signature", "host",
                      "versions", "timestamp"]


def _md_table(header: list[str], body: list[list[str]]) -> str:
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in body]
    return "\n".join(lines)


def render_markdown(rows: Iterable[ResultRow], *, run: str) -> str:
    """The markdown report for one run's rows (pure; byte-stable)."""
    rows, failures = _partition(rows)
    parts = [f"# Sweep report: {run}", "", f"{len(rows)} result rows.", ""]
    if failures:
        parts[-2] = (
            f"{len(rows)} result rows; "
            f"{len(failures)} cell(s) currently failed."
        )
    header, body = _result_table(rows)
    parts += ["## Results", "", _md_table(header, body), ""]
    if failures:
        parts += [
            "## Failures", "",
            _md_table(_FAILURE_HEADER, _failure_rows(failures)), "",
        ]
    speedups = _speedup_rows(rows)
    if speedups:
        parts += [
            "## Wall-clock speedup vs functional/default", "",
            _md_table(_SPEEDUP_HEADER, speedups), "",
        ]
    policy_speedups = _policy_speedup_rows(rows)
    if policy_speedups:
        parts += [
            "## Wall-clock speedup vs baseline policy", "",
            _md_table(_POLICY_SPEEDUP_HEADER, policy_speedups), "",
        ]
    cycles = _cycle_speedup_rows(rows)
    if cycles:
        parts += [
            "## Modelled cycles: fingers vs flexminer", "",
            _md_table(_CYCLES_HEADER, cycles), "",
        ]
    parts += [
        "## Provenance", "",
        _md_table(_PROVENANCE_HEADER, _provenance_rows(rows)), "",
    ]
    return "\n".join(parts)


def _text_table(header: list[str], body: list[list[str]]) -> str:
    widths = [
        max(len(header[i]), *(len(row[i]) for row in body)) if body
        else len(header[i])
        for i in range(len(header))
    ]

    def line(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(header), rule] + [line(row) for row in body])


def render_text(rows: Iterable[ResultRow], *, run: str) -> str:
    """The plain-text report for one run's rows (pure; byte-stable).

    The terminal-facing sibling of :func:`render_markdown` — same
    sections, fixed-width tables.  This view replaced the retired
    ``python -m repro.bench --out`` .txt emitter: text artifacts now
    regenerate from stored rows like every other format
    (``repro exp report <run> --format txt``).
    """
    rows, failures = _partition(rows)
    summary = f"{len(rows)} result rows."
    if failures:
        summary = (
            f"{len(rows)} result rows; "
            f"{len(failures)} cell(s) currently failed."
        )
    parts = [f"=== Sweep report: {run} ===", "", summary, ""]
    header, body = _result_table(rows)
    parts += ["-- Results --", "", _text_table(header, body), ""]
    if failures:
        parts += [
            "-- Failures --", "",
            _text_table(_FAILURE_HEADER, _failure_rows(failures)), "",
        ]
    speedups = _speedup_rows(rows)
    if speedups:
        parts += [
            "-- Wall-clock speedup vs functional/default --", "",
            _text_table(_SPEEDUP_HEADER, speedups), "",
        ]
    policy_speedups = _policy_speedup_rows(rows)
    if policy_speedups:
        parts += [
            "-- Wall-clock speedup vs baseline policy --", "",
            _text_table(_POLICY_SPEEDUP_HEADER, policy_speedups), "",
        ]
    cycles = _cycle_speedup_rows(rows)
    if cycles:
        parts += [
            "-- Modelled cycles: fingers vs flexminer --", "",
            _text_table(_CYCLES_HEADER, cycles), "",
        ]
    parts += [
        "-- Provenance --", "",
        _text_table(_PROVENANCE_HEADER, _provenance_rows(rows)), "",
    ]
    return "\n".join(parts)


def _html_table(header: list[str], body: list[list[str]]) -> str:
    head = "".join(f"<th>{html.escape(h)}</th>" for h in header)
    rows_html = "".join(
        "<tr>" + "".join(f"<td>{html.escape(c)}</td>" for c in row) + "</tr>"
        for row in body
    )
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{rows_html}</tbody></table>"
    )


def render_html(rows: Iterable[ResultRow], *, run: str) -> str:
    """The HTML report for one run's rows (pure; byte-stable)."""
    rows, failures = _partition(rows)
    summary = f"{len(rows)} result rows."
    if failures:
        summary = (
            f"{len(rows)} result rows; "
            f"{len(failures)} cell(s) currently failed."
        )
    sections = [
        f"<h1>Sweep report: {html.escape(run)}</h1>",
        f"<p>{summary}</p>",
        "<h2>Results</h2>",
        _html_table(*_result_table(rows)),
    ]
    if failures:
        sections += [
            "<h2>Failures</h2>",
            _html_table(_FAILURE_HEADER, _failure_rows(failures)),
        ]
    speedups = _speedup_rows(rows)
    if speedups:
        sections += [
            "<h2>Wall-clock speedup vs functional/default</h2>",
            _html_table(_SPEEDUP_HEADER, speedups),
        ]
    policy_speedups = _policy_speedup_rows(rows)
    if policy_speedups:
        sections += [
            "<h2>Wall-clock speedup vs baseline policy</h2>",
            _html_table(_POLICY_SPEEDUP_HEADER, policy_speedups),
        ]
    cycles = _cycle_speedup_rows(rows)
    if cycles:
        sections += [
            "<h2>Modelled cycles: fingers vs flexminer</h2>",
            _html_table(_CYCLES_HEADER, cycles),
        ]
    sections += [
        "<h2>Provenance</h2>",
        _html_table(_PROVENANCE_HEADER, _provenance_rows(rows)),
    ]
    style = (
        "body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "th,td{border:1px solid #999;padding:4px 8px;text-align:left}"
        "th{background:#eee}"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>Sweep report: {html.escape(run)}</title>"
        f"<style>{style}</style></head><body>"
        + "".join(sections) + "</body></html>"
    )


def write_report(
    store: ResultStore,
    run: str,
    *,
    out_dir: Path | str | None = None,
    formats: Sequence[str] = ("md", "html"),
) -> list[Path]:
    """Render one run to ``<out_dir>/<run>.{md,html}`` (default:
    ``benchmarks/results/reports/``) and return the written paths."""
    rows = store.load(run)
    out = Path(out_dir) if out_dir is not None else reports_dir(create=True)
    out.mkdir(parents=True, exist_ok=True)
    renderers = {"md": render_markdown, "html": render_html,
                 "txt": render_text}
    unknown = set(formats) - set(renderers)
    if unknown:
        raise ValueError(f"unknown report formats: {sorted(unknown)}")
    written = []
    for fmt in formats:
        path = out / f"{run}.{fmt}"
        path.write_text(renderers[fmt](rows, run=run), encoding="utf-8")
        written.append(path)
    return written
