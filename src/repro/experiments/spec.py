"""Declarative sweep specifications.

A sweep is the cross product *patterns × graphs × backends × schedules ×
jobs* (plus a kernel-policy axis applied to the ``functional`` backend
only, since no other backend executes Python set-op kernels).  Specs are
plain dicts — typically loaded from a TOML or JSON file — validated in
one pass that gathers **every** problem before raising, then expanded
into a deterministic, duplicate-free list of :class:`Cell` rows.  The
same spec always expands to the same matrix in the same order, which is
what makes resuming a sweep well-defined (docs/BENCHMARKS.md).

TOML layout (see ``examples/sweeps/smoke.toml``)::

    [sweep]
    name     = "smoke"
    patterns = ["tc"]
    graphs   = ["As"]
    backends = ["functional", "fingers"]

    [configs.fingers]        # per-backend config overrides
    num_pes = 1

    [[kernel_policies]]      # optional extra functional-only axis
    name = "legacy"
    force_kernel = "merge"
    batch_penultimate = false
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.workload import resolve_workload
from repro.graph.datasets import bench_graph_names, dataset_names
from repro.setops.kernels import KernelPolicy

__all__ = ["Cell", "SpecError", "SweepSpec", "load_spec", "load_spec_file"]

#: Sweep/run names double as store file stems, so they are restricted to
#: filesystem-safe characters.
NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_SCHEDULES = ("dynamic", "static_interleave", "static_block")

#: The policy label for "whatever the backend's default configuration
#: does" — present in every sweep, never user-definable.
DEFAULT_POLICY = "default"


class SpecError(ValueError):
    """A sweep spec failed validation.

    ``problems`` lists every issue found (validation does not stop at
    the first), so one round trip fixes a whole spec file.
    """

    def __init__(self, problems: Sequence[str]):
        self.problems = list(problems)
        super().__init__(
            "invalid sweep spec:\n" + "\n".join(f"  - {p}" for p in problems)
        )


@dataclass(frozen=True)
class Cell:
    """One point of the expanded run matrix."""

    pattern: str
    graph: str
    backend: str
    policy: str = DEFAULT_POLICY
    jobs: int | None = None
    schedule: str = "dynamic"

    @property
    def label(self) -> str:
        """Human-readable cell identifier used in progress output."""
        parts = [self.pattern, self.graph, self.backend]
        if self.policy != DEFAULT_POLICY:
            parts.append(self.policy)
        if self.schedule != "dynamic":
            parts.append(self.schedule)
        if self.jobs is not None:
            parts.append(f"jobs={self.jobs}")
        return "/".join(parts)


@dataclass(frozen=True)
class SweepSpec:
    """A validated sweep: construct via :func:`load_spec`, not directly.

    ``jobs`` uses ``0`` for the single-chip (unsharded) model, matching
    the TOML surface where ``None`` cannot be written.
    """

    name: str
    description: str = ""
    patterns: tuple[str, ...] = ()
    graphs: tuple[str, ...] = ()
    backends: tuple[str, ...] = ()
    jobs: tuple[int, ...] = (0,)
    schedules: tuple[str, ...] = ("dynamic",)
    configs: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    kernel_policies: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict
    )

    def expand(self) -> list[Cell]:
        """The deterministic run matrix.

        Iteration order is patterns → graphs → backends → policies →
        schedules → jobs, exactly as written in the spec; the kernel
        policy axis contributes ``default`` plus every named policy for
        ``functional`` cells and only ``default`` elsewhere.
        """
        cells = []
        for pattern in self.patterns:
            for graph in self.graphs:
                for backend in self.backends:
                    policies = [DEFAULT_POLICY]
                    if backend == "functional":
                        policies += list(self.kernel_policies)
                    for policy in policies:
                        for schedule in self.schedules:
                            for jobs in self.jobs:
                                cells.append(Cell(
                                    pattern=pattern,
                                    graph=graph,
                                    backend=backend,
                                    policy=policy,
                                    jobs=None if jobs == 0 else jobs,
                                    schedule=schedule,
                                ))
        return cells

    def config_for(self, cell: Cell):
        """Build the backend config object for one cell: per-backend
        overrides from ``configs``, plus the cell's kernel policy for
        functional cells."""
        from repro.core.backend import get_backend

        backend = get_backend(cell.backend)
        overrides = dict(self.configs.get(cell.backend, {}))
        if cell.backend == "functional" and cell.policy != DEFAULT_POLICY:
            policy = KernelPolicy(**self.kernel_policies[cell.policy])
            overrides["kernels"] = policy
        return backend.config_type(**overrides)


def _check_names(problems, label, values, known, *, hint=""):
    for value in values:
        if value not in known:
            problems.append(
                f"{label} {value!r} is not known{hint}"
            )


def load_spec(
    data: Mapping[str, Any],
    *,
    available_graphs: Sequence[str] | None = None,
) -> SweepSpec:
    """Validate a spec document (the parsed TOML/JSON dict) and return a
    :class:`SweepSpec`.

    Collects every problem and raises one :class:`SpecError`; a returned
    spec is guaranteed to expand and execute without name errors.
    ``available_graphs`` overrides the dataset catalog (tests inject
    synthetic graphs through the executor's ``graphs=`` mapping).
    """
    from repro.core.backend import backend_names, get_backend

    problems: list[str] = []
    known_keys = {"sweep", "configs", "kernel_policies"}
    for key in data:
        if key not in known_keys:
            problems.append(f"unknown top-level section {key!r}")
    sweep = data.get("sweep")
    if not isinstance(sweep, Mapping):
        raise SpecError(problems + ["missing [sweep] section"])

    sweep_keys = {
        "name", "description", "patterns", "graphs", "backends",
        "jobs", "schedules",
    }
    for key in sweep:
        if key not in sweep_keys:
            problems.append(f"unknown [sweep] key {key!r}")

    name = sweep.get("name", "")
    if not (isinstance(name, str) and NAME_RE.match(name)):
        problems.append(
            f"sweep.name {name!r} must match {NAME_RE.pattern} "
            "(it names store files)"
        )

    def _strings(key, *, required):
        values = sweep.get(key, [])
        if not isinstance(values, (list, tuple)) or not all(
            isinstance(v, str) for v in values
        ):
            problems.append(f"sweep.{key} must be a list of strings")
            return ()
        if required and not values:
            problems.append(f"sweep.{key} must be non-empty")
        return tuple(values)

    patterns = _strings("patterns", required=True)
    graphs = _strings("graphs", required=True)
    backends = _strings("backends", required=True)

    for pattern in patterns:
        try:
            resolve_workload(pattern)
        except (KeyError, ValueError) as exc:
            problems.append(f"pattern {pattern!r}: {exc}")
    graph_catalog = tuple(
        available_graphs
        if available_graphs is not None
        else dataset_names() + bench_graph_names()
    )
    _check_names(
        problems, "graph", graphs, graph_catalog,
        hint=f" (available: {', '.join(graph_catalog)})",
    )
    _check_names(
        problems, "backend", backends, backend_names(),
        hint=f" (registered: {', '.join(backend_names())})",
    )

    jobs = sweep.get("jobs", [0])
    if not isinstance(jobs, (list, tuple)) or not all(
        isinstance(j, int) and not isinstance(j, bool) and j >= 0
        for j in jobs
    ) or not jobs:
        problems.append(
            "sweep.jobs must be a non-empty list of ints >= 0 "
            "(0 = unsharded single-chip model)"
        )
        jobs = (0,)
    schedules = sweep.get("schedules", ["dynamic"]) or ["dynamic"]
    for schedule in schedules:
        if schedule not in _SCHEDULES:
            problems.append(
                f"schedule {schedule!r} is not one of {', '.join(_SCHEDULES)}"
            )

    configs = data.get("configs", {})
    clean_configs: dict[str, dict[str, Any]] = {}
    if not isinstance(configs, Mapping):
        problems.append("[configs] must be a table of backend names")
        configs = {}
    for backend_name, overrides in configs.items():
        if backend_name not in backends:
            problems.append(
                f"[configs.{backend_name}] does not match a swept backend"
            )
            continue
        config_type = get_backend(backend_name).config_type
        valid = {f.name for f in dataclasses.fields(config_type)}
        for key in overrides:
            if key not in valid:
                problems.append(
                    f"[configs.{backend_name}] unknown field {key!r} "
                    f"(valid: {', '.join(sorted(valid))})"
                )
        clean_configs[backend_name] = dict(overrides)

    policies = data.get("kernel_policies", [])
    clean_policies: dict[str, dict[str, Any]] = {}
    if not isinstance(policies, Sequence) or isinstance(policies, str):
        problems.append("kernel_policies must be an array of tables")
        policies = []
    if policies and "functional" not in backends:
        problems.append(
            "kernel_policies requires the 'functional' backend "
            "(no other backend runs the Python set-op kernels)"
        )
    policy_fields = {f.name for f in dataclasses.fields(KernelPolicy)}
    for entry in policies:
        if not isinstance(entry, Mapping) or "name" not in entry:
            problems.append("each [[kernel_policies]] entry needs a 'name'")
            continue
        policy_name = entry["name"]
        if policy_name == DEFAULT_POLICY or policy_name in clean_policies:
            problems.append(
                f"kernel policy name {policy_name!r} is reserved or repeated"
            )
            continue
        overrides = {k: v for k, v in entry.items() if k != "name"}
        for key in overrides:
            if key not in policy_fields:
                problems.append(
                    f"kernel policy {policy_name!r}: unknown field {key!r} "
                    f"(valid: {', '.join(sorted(policy_fields))})"
                )
        clean_policies[policy_name] = overrides

    if problems:
        raise SpecError(problems)
    return SweepSpec(
        name=name,
        description=str(sweep.get("description", "")),
        patterns=patterns,
        graphs=graphs,
        backends=backends,
        jobs=tuple(jobs),
        schedules=tuple(schedules),
        configs=clean_configs,
        kernel_policies=clean_policies,
    )


def load_spec_file(
    path: Path | str,
    *,
    available_graphs: Sequence[str] | None = None,
) -> SweepSpec:
    """Load and validate a ``.toml`` or ``.json`` sweep file.

    TOML needs Python >= 3.11 (stdlib ``tomllib``; this repo adds no
    third-party dependencies) — on older interpreters a
    :class:`SpecError` points at the JSON equivalent.
    """
    path = Path(path)
    if path.suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError:  # Python < 3.11
            raise SpecError([
                f"cannot read {path.name}: TOML specs need Python >= 3.11 "
                "(tomllib); convert the spec to .json or pass a dict to "
                "load_spec()"
            ]) from None
        with path.open("rb") as handle:
            data = tomllib.load(handle)
    elif path.suffix == ".json":
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        raise SpecError([
            f"unsupported spec format {path.suffix!r} (use .toml or .json)"
        ])
    return load_spec(data, available_graphs=available_graphs)
