"""One-time migration of the legacy ad-hoc result files into the store.

Before the store existed, perf evidence lived in three shapes under
``benchmarks/results/``: the hand-rolled ``BENCH_kernels.json`` (kernel
end-to-end + microbenchmark timings), the ``fig10_overall.txt`` speedup
grid, and the ``ablation_*.txt`` fixed-width tables.  This module
parses each into :class:`~repro.experiments.store.ResultRow` records so
they become the first named baselines (``kernels-baseline``,
``fig10-baseline``, ``ablations-baseline``) that ``repro exp diff``
checks against.

Migrated rows are reconstructions, not fresh measurements: their
``cell_key`` is a synthetic ``migrated:`` digest of the row identity
(stable across re-migrations), and their provenance records the source
file.  Timing columns land in ``wall_time_s``/``cycles``; speedup-style
columns land in ``metrics`` (higher-is-better, regression-checked);
everything else is kept in ``extras`` for the record.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.paths import results_dir
from repro.core.provenance import environment_provenance
from repro.experiments.store import ResultRow, ResultStore

__all__ = [
    "migrate_ablation_tables",
    "migrate_fig10_grid",
    "migrate_kernels_json",
    "migrate_legacy_results",
]

KERNELS_RUN = "kernels-baseline"
FIG10_RUN = "fig10-baseline"
ABLATIONS_RUN = "ablations-baseline"


def _provenance(source: str) -> dict:
    return {
        **environment_provenance(),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "source": source,
    }


def _migrated_key(run: str, identity: tuple) -> str:
    digest = hashlib.sha256(
        json.dumps([run, list(map(str, identity))]).encode()
    ).hexdigest()[:32]
    return f"migrated:{digest}"


def _row(run: str, source: str, **fields) -> ResultRow:
    row = ResultRow(
        run=run, cell_key="", provenance=_provenance(source), **fields
    )
    return dataclasses.replace(
        row, cell_key=_migrated_key(run, row.identity())
    )


def migrate_kernels_json(path: Path) -> list[ResultRow]:
    """``BENCH_kernels.json`` → rows under ``kernels-baseline``.

    Each ``end_to_end`` entry becomes two functional-backend rows (the
    adaptive policy with its speedup metric, and the legacy forced-merge
    policy it was measured against); each ``micro`` entry becomes one
    row keyed (op, shape, kernel)."""
    data = json.loads(path.read_text(encoding="utf-8"))
    rows: list[ResultRow] = []
    for key, entry in sorted(data.get("end_to_end", {}).items()):
        pattern = key.split("/", 1)[1] if "/" in key else key
        graph = entry.get("graph", "unknown")
        count = int(entry.get("count", 0))
        common = dict(
            pattern=pattern, graph=graph, backend="functional",
            workload=pattern, count=count, counts=(count,),
            extras={"smoke": bool(entry.get("smoke", False))},
        )
        rows.append(_row(
            KERNELS_RUN, path.name, policy="adaptive",
            wall_time_s=float(entry["adaptive_seconds"]),
            metrics={"speedup_vs_legacy": float(entry["speedup"])},
            **common,
        ))
        rows.append(_row(
            KERNELS_RUN, path.name, policy="legacy",
            wall_time_s=float(entry["legacy_seconds"]),
            **common,
        ))
    for key, entry in sorted(data.get("micro", {}).items()):
        op, kernel, shape = (key.split("/") + ["?", "?"])[:3]
        rows.append(_row(
            KERNELS_RUN, path.name,
            pattern=op, graph=shape, backend="functional", policy=kernel,
            wall_time_s=float(entry["mean_seconds"]),
            extras={
                "size_a": entry.get("size_a"), "size_b": entry.get("size_b"),
            },
        ))
    return rows


def _parse_fixed_width(text: str):
    """Parse one format_table/format_grid block: (title, headers, rows)
    where rows are (label, {column: cell-string}) in file order.

    Column extents come from the dashes ruler, which is the only line
    guaranteed to contain no spaces inside a column."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    title = lines[0]
    header_line, ruler = lines[1], lines[2]
    spans = []
    start = None
    for i, ch in enumerate(ruler + " "):
        if ch == "-" and start is None:
            start = i
        elif ch != "-" and start is not None:
            spans.append((start, i))
            start = None
    headers = [header_line[a:b].strip() or header_line[a:].strip()
               for a, b in spans]
    body = []
    for line in lines[3:]:
        if "=" in line and not line[spans[0][0]:spans[0][1]].strip():
            continue  # trailing "overall geomean = ..." style summary
        if line.startswith("overall "):
            continue
        cells = [line[a:b].strip() if a < len(line) else ""
                 for a, b in spans]
        body.append((cells[0], dict(zip(headers[1:], cells[1:]))))
    return title, headers, body


def _number(cell: str) -> float | None:
    try:
        return float(cell.replace(",", ""))
    except ValueError:
        return None


def migrate_fig10_grid(path: Path) -> list[ResultRow]:
    """``fig10_overall.txt`` → one row per (pattern, graph) cell with the
    FINGERS-over-FlexMiner speedup as a regression-checked metric."""
    _, headers, body = _parse_fixed_width(path.read_text(encoding="utf-8"))
    rows = []
    for pattern, cells in body:
        for graph in headers[1:]:
            value = _number(cells.get(graph, ""))
            if value is None or graph == "geomean":
                continue
            rows.append(_row(
                FIG10_RUN, path.name,
                pattern=pattern, graph=graph, backend="fingers",
                workload=pattern,
                metrics={"speedup_vs_flexminer": value},
            ))
    return rows


def migrate_ablation_tables(paths: list[Path]) -> list[ResultRow]:
    """``ablation_*.txt`` → rows under ``ablations-baseline``: the table
    stem is the pattern, the first column the graph-axis label; cycles
    columns map to ``cycles``, speedup/scaling columns to ``metrics``,
    the rest to ``extras``."""
    rows = []
    for path in sorted(paths):
        _, headers, body = _parse_fixed_width(
            path.read_text(encoding="utf-8")
        )
        for label, cells in body:
            cycles = 0.0
            metrics: dict[str, float] = {}
            extras: dict[str, float] = {}
            for column, cell in cells.items():
                value = _number(cell)
                if value is None:
                    continue
                slug = column.lower().replace(" ", "_")
                if slug == "cycles":
                    cycles = value
                elif "speedup" in slug or "scaling" in slug:
                    metrics[slug] = value
                else:
                    extras[slug] = value
            rows.append(_row(
                ABLATIONS_RUN, path.name,
                pattern=path.stem, graph=label, backend="fingers",
                cycles=cycles, metrics=metrics, extras=extras,
            ))
    return rows


def migrate_legacy_results(
    source: Path | str | None = None,
    store: ResultStore | None = None,
    *,
    force: bool = False,
) -> dict[str, int]:
    """Migrate every recognised legacy file under ``source`` (default:
    the canonical results dir) into ``store``.

    Runs already present are left untouched unless ``force=True``
    (which replaces them).  Returns ``{run: rows-written}``."""
    source = Path(source) if source is not None else results_dir()
    store = store if store is not None else ResultStore()
    existing = set(store.runs())
    written: dict[str, int] = {}

    batches: list[tuple[str, list[ResultRow]]] = []
    kernels = source / "BENCH_kernels.json"
    if kernels.exists():
        batches.append((KERNELS_RUN, migrate_kernels_json(kernels)))
    fig10 = source / "fig10_overall.txt"
    if fig10.exists():
        batches.append((FIG10_RUN, migrate_fig10_grid(fig10)))
    ablations = sorted(source.glob("ablation_*.txt"))
    if ablations:
        batches.append((ABLATIONS_RUN, migrate_ablation_tables(ablations)))

    for run, rows in batches:
        if run in existing:
            if not force:
                written[run] = 0
                continue
            store.delete(run)
        store.append(rows)
        written[run] = len(rows)
    return written
