"""Experiment orchestration: declarative sweeps, a provenance-carrying
result store, and regression-checked reports.

This package turns "run the benchmarks and eyeball the text files" into
a closed loop (docs/BENCHMARKS.md):

1. **Describe** a sweep declaratively — patterns × graphs × backends ×
   schedules × jobs (× kernel policies for the functional backend) — in
   TOML/JSON/dict form, validated by :func:`load_spec` into a
   deterministic run matrix.
2. **Execute** it resumably with :func:`run_sweep`: every cell goes
   through the same cached-runner path as the paper figures, cells
   already in the store are skipped by cache identity, and each row
   records wall time, dispatch counters, and full provenance (git hash,
   config signature, host, versions, timestamp).
3. **Report** with :func:`write_report` (markdown + HTML) and **guard**
   with :func:`diff_runs`, which compares a run against a named
   baseline and yields a nonzero exit code on regression.

CLI surface: ``repro exp run/report/diff/list/migrate`` and
``make bench-sweep``.  Typical library use::

    from repro.experiments import ResultStore, load_spec, run_sweep

    spec = load_spec({"sweep": {"name": "smoke", "patterns": ["tc"],
                                "graphs": ["As"],
                                "backends": ["functional", "fingers"]}})
    outcome = run_sweep(spec, store=ResultStore())
    print(outcome.executed, outcome.resumed)
"""

from repro.experiments.executor import SweepOutcome, run_sweep
from repro.experiments.migrate import migrate_legacy_results
from repro.experiments.regress import DiffReport, Finding, diff_runs
from repro.experiments.report import (
    render_html,
    render_markdown,
    render_text,
    write_report,
)
from repro.experiments.spec import (
    Cell,
    SpecError,
    SweepSpec,
    load_spec,
    load_spec_file,
)
from repro.experiments.store import (
    STORE_SCHEMA_VERSION,
    ResultRow,
    ResultStore,
)

__all__ = [
    "Cell",
    "DiffReport",
    "Finding",
    "ResultRow",
    "ResultStore",
    "SpecError",
    "SweepOutcome",
    "SweepSpec",
    "diff_runs",
    "load_spec",
    "load_spec_file",
    "migrate_legacy_results",
    "render_html",
    "render_markdown",
    "render_text",
    "run_sweep",
    "write_report",
]
