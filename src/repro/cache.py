"""Persistent, versioned result cache.

Simulation results are deterministic functions of (graph contents,
workload, design configuration, root set, execution model), so they can
be memoized on disk across processes: a repeated figure sweep then costs
file reads instead of hours of event-loop simulation.

Layout and guarantees
---------------------

* **Location**: ``$REPRO_CACHE_DIR`` if set, else
  ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  Created lazily.
* **Keys**: SHA-256 over a canonical rendering of the request parts
  plus :data:`SCHEMA_VERSION`.  Graphs are fingerprinted by their full
  CSR byte contents and root sets by their full ``int64`` array hash —
  *never* by summaries that can collide (see docs/PARALLELISM.md for
  the exact key schema).
* **Entries**: one pickle file per key, holding
  ``{"schema": ..., "key": ..., "value": ...}``.  Written atomically
  (temp file + ``os.replace``) so concurrent writers and crashes never
  publish a torn entry.
* **Invalidation**: bumping :data:`SCHEMA_VERSION` (done whenever a
  timing model changes observable results) orphans every old entry;
  corrupted, truncated, unreadable, or mismatched entries are treated
  as misses and recomputed — never raised.
* **Failure accounting** (docs/RESILIENCE.md): the cache is an
  accelerator, never a correctness dependency, so I/O failures stay
  silent at the call site — but they are *counted*
  (:class:`CacheCounters`: ``write_failures``, ``quarantined``) and
  surfaced by ``python -m repro cache info``.  Unreadable entries are
  moved into ``<cache>/quarantine/`` for forensics instead of being
  destroyed; ``python -m repro cache doctor`` scans the whole cache,
  quarantines what cannot be loaded, and reports.

``python -m repro cache {info,clear,path,doctor}`` inspects and
maintains the cache from the shell.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

import numpy as np

from repro.graph.csr import CSRGraph
from repro.resilience import faults

__all__ = [
    "SCHEMA_VERSION",
    "CacheCounters",
    "DiskCache",
    "cache_dir",
    "default_cache",
    "disk_memoize",
    "graph_fingerprint",
    "make_key",
    "roots_fingerprint",
]

#: Bump whenever any simulator/engine change alters results for the same
#: inputs; every existing cache entry then misses and is recomputed.
SCHEMA_VERSION = 1

_ENTRY_SUFFIX = ".pkl"

#: Subdirectory (inside the cache) holding unreadable entries moved
#: aside for forensics; excluded from ``entries()`` by construction
#: (the glob is non-recursive).
_QUARANTINE_DIR = "quarantine"


def cache_dir() -> Path:
    """Resolve the cache directory (without creating it)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content hash of a graph's full CSR arrays."""
    h = hashlib.sha256()
    h.update(graph.indptr.tobytes())
    h.update(b"|")
    h.update(graph.indices.tobytes())
    return h.hexdigest()


def roots_fingerprint(roots: Iterable[int] | None) -> str:
    """Hash of the *entire* root array (``"all"`` for the full-graph
    default).

    Summaries like ``(len, first, last)`` collide between different root
    sets and silently return the wrong memoized result; hashing the full
    array cannot.
    """
    if roots is None:
        return "all"
    arr = np.asarray(list(roots), dtype=np.int64)
    h = hashlib.sha256(arr.tobytes())
    return f"{arr.size}:{h.hexdigest()}"


def make_key(**parts: Any) -> str:
    """Canonical cache key: SHA-256 over sorted ``repr``-rendered parts.

    Every value must render deterministically (strings, numbers, and
    dataclass ``repr``s do).  The schema version is always mixed in.
    """
    canon = [f"schema={SCHEMA_VERSION}"]
    for name in sorted(parts):
        canon.append(f"{name}={parts[name]!r}")
    return hashlib.sha256("\x1f".join(canon).encode("utf-8")).hexdigest()


@dataclass
class CacheCounters:
    """Hit/miss and failure accounting for one :class:`DiskCache`.

    ``errors`` counts every anomaly (read and write); the finer-grained
    ``write_failures`` (swallowed ``put`` I/O errors) and
    ``quarantined`` (unreadable entries moved aside) exist so a run
    whose cache silently stopped persisting is visible in
    ``repro cache info`` instead of just mysteriously slow.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    write_failures: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "write_failures": self.write_failures,
            "quarantined": self.quarantined,
        }


class DiskCache:
    """A directory of atomically-written pickle entries."""

    def __init__(self, directory: Path | str | None = None) -> None:
        self.directory = Path(directory) if directory else cache_dir()
        self.counters = CacheCounters()

    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{_ENTRY_SUFFIX}"

    def quarantine_dir(self) -> Path:
        """Where unreadable entries are moved for post-mortem."""
        return self.directory / _QUARANTINE_DIR

    def _quarantine(self, path: Path) -> bool:
        """Move an unreadable entry aside; fall back to deletion.

        Returns whether the bytes were preserved.  Either way the entry
        stops shadowing its key.
        """
        try:
            qdir = self.quarantine_dir()
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            self.counters.quarantined += 1
            return True
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return False

    def get(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)``; corrupt entries count as misses and are
        quarantined, stale/foreign entries are dropped."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            if (
                isinstance(entry, dict)
                and entry.get("schema") == SCHEMA_VERSION
                and entry.get("key") == key
            ):
                self.counters.hits += 1
                return True, entry["value"]
            # Stale schema or foreign entry under our name: not corrupt,
            # just obsolete — drop it without keeping the bytes.
            self.counters.errors += 1
            path.unlink(missing_ok=True)
        except FileNotFoundError:
            pass
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.counters.errors += 1
            self._quarantine(path)
        self.counters.misses += 1
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Atomically publish ``value`` under ``key``; I/O failures are
        swallowed (the cache is an accelerator, never a correctness
        dependency) but counted in ``counters.write_failures``."""
        entry = {"schema": SCHEMA_VERSION, "key": key, "value": value}
        data = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        if faults.plan_active():
            # Fault site "cache": a `corrupt` rule models a torn write
            # that slipped past the atomic rename (docs/RESILIENCE.md).
            data = faults.corrupt_bytes("cache", key, data)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=_ENTRY_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, self._path(key))
            except BaseException:
                os.unlink(tmp)
                raise
            self.counters.stores += 1
        except OSError:
            self.counters.errors += 1
            self.counters.write_failures += 1

    # ------------------------------------------------------------------

    def entries(self) -> list[Path]:
        """Entry files currently on disk (excluding in-flight temps)."""
        if not self.directory.is_dir():
            return []
        return sorted(
            p
            for p in self.directory.glob(f"*{_ENTRY_SUFFIX}")
            if not p.name.startswith(".tmp-")
        )

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for p in self.entries():
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------

    def quarantined_entries(self) -> list[Path]:
        """Files previously moved into the quarantine directory."""
        qdir = self.quarantine_dir()
        if not qdir.is_dir():
            return []
        return sorted(qdir.glob(f"*{_ENTRY_SUFFIX}"))

    def purge_quarantine(self) -> int:
        """Delete quarantined files; returns how many were removed."""
        removed = 0
        for p in self.quarantined_entries():
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def doctor(self) -> dict[str, int]:
        """Full-cache health scan (``python -m repro cache doctor``).

        Loads and validates every entry: readable and current counts as
        ``ok``; readable but schema-stale or key-mismatched counts as
        ``stale`` and is deleted; unreadable counts as ``corrupt`` and
        is quarantined.  Returns the tally (plus ``quarantine_backlog``,
        the number of previously quarantined files awaiting review).
        """
        report = {
            "checked": 0, "ok": 0, "stale": 0, "corrupt": 0,
            "quarantined": 0,
        }
        for path in self.entries():
            report["checked"] += 1
            key = path.name[: -len(_ENTRY_SUFFIX)]
            try:
                with open(path, "rb") as fh:
                    entry = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError, ValueError):
                report["corrupt"] += 1
                if self._quarantine(path):
                    report["quarantined"] += 1
                continue
            if (
                isinstance(entry, dict)
                and entry.get("schema") == SCHEMA_VERSION
                and entry.get("key") == key
            ):
                report["ok"] += 1
            else:
                report["stale"] += 1
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
        report["quarantine_backlog"] = len(self.quarantined_entries())
        return report


# ----------------------------------------------------------------------

_DEFAULT: DiskCache | None = None


def default_cache() -> DiskCache:
    """Process-wide cache bound to the *currently resolved* directory.

    Re-resolves ``REPRO_CACHE_DIR`` on every call so tests (and callers
    that retarget the environment variable) always hit the directory
    they configured; counters persist as long as the directory does not
    change.
    """
    global _DEFAULT
    resolved = cache_dir()
    if _DEFAULT is None or _DEFAULT.directory != resolved:
        _DEFAULT = DiskCache(resolved)
    return _DEFAULT


def disk_memoize(key: str, compute: Callable[[], Any], *, enabled: bool = True) -> Any:
    """``compute()`` memoized on the default disk cache."""
    if not enabled:
        return compute()
    cache = default_cache()
    hit, value = cache.get(key)
    if hit:
        return value
    value = compute()
    cache.put(key, value)
    return value
