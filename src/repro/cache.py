"""Persistent, versioned result cache.

Simulation results are deterministic functions of (graph contents,
workload, design configuration, root set, execution model), so they can
be memoized on disk across processes: a repeated figure sweep then costs
file reads instead of hours of event-loop simulation.

Layout and guarantees
---------------------

* **Location**: ``$REPRO_CACHE_DIR`` if set, else
  ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  Created lazily.
* **Keys**: SHA-256 over a canonical rendering of the request parts
  plus :data:`SCHEMA_VERSION`.  Graphs are fingerprinted by their full
  CSR byte contents and root sets by their full ``int64`` array hash —
  *never* by summaries that can collide (see docs/PARALLELISM.md for
  the exact key schema).
* **Entries**: one pickle file per key, holding
  ``{"schema": ..., "key": ..., "value": ...}``.  Written atomically
  (temp file + ``os.replace``) so concurrent writers and crashes never
  publish a torn entry.
* **Invalidation**: bumping :data:`SCHEMA_VERSION` (done whenever a
  timing model changes observable results) orphans every old entry;
  corrupted, truncated, unreadable, or mismatched entries are treated
  as misses, deleted best-effort, and recomputed — never raised.

``python -m repro cache {info,clear,path}`` inspects and clears the
cache from the shell.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "SCHEMA_VERSION",
    "CacheCounters",
    "DiskCache",
    "cache_dir",
    "default_cache",
    "disk_memoize",
    "graph_fingerprint",
    "make_key",
    "roots_fingerprint",
]

#: Bump whenever any simulator/engine change alters results for the same
#: inputs; every existing cache entry then misses and is recomputed.
SCHEMA_VERSION = 1

_ENTRY_SUFFIX = ".pkl"


def cache_dir() -> Path:
    """Resolve the cache directory (without creating it)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content hash of a graph's full CSR arrays."""
    h = hashlib.sha256()
    h.update(graph.indptr.tobytes())
    h.update(b"|")
    h.update(graph.indices.tobytes())
    return h.hexdigest()


def roots_fingerprint(roots: Iterable[int] | None) -> str:
    """Hash of the *entire* root array (``"all"`` for the full-graph
    default).

    Summaries like ``(len, first, last)`` collide between different root
    sets and silently return the wrong memoized result; hashing the full
    array cannot.
    """
    if roots is None:
        return "all"
    arr = np.asarray(list(roots), dtype=np.int64)
    h = hashlib.sha256(arr.tobytes())
    return f"{arr.size}:{h.hexdigest()}"


def make_key(**parts: Any) -> str:
    """Canonical cache key: SHA-256 over sorted ``repr``-rendered parts.

    Every value must render deterministically (strings, numbers, and
    dataclass ``repr``s do).  The schema version is always mixed in.
    """
    canon = [f"schema={SCHEMA_VERSION}"]
    for name in sorted(parts):
        canon.append(f"{name}={parts[name]!r}")
    return hashlib.sha256("\x1f".join(canon).encode("utf-8")).hexdigest()


@dataclass
class CacheCounters:
    """Hit/miss accounting for one :class:`DiskCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0


class DiskCache:
    """A directory of atomically-written pickle entries."""

    def __init__(self, directory: Path | str | None = None) -> None:
        self.directory = Path(directory) if directory else cache_dir()
        self.counters = CacheCounters()

    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{_ENTRY_SUFFIX}"

    def get(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)``; corrupt or mismatched entries count as
        misses and are removed best-effort."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            if (
                isinstance(entry, dict)
                and entry.get("schema") == SCHEMA_VERSION
                and entry.get("key") == key
            ):
                self.counters.hits += 1
                return True, entry["value"]
            # Stale schema or foreign entry under our name: drop it.
            self.counters.errors += 1
            path.unlink(missing_ok=True)
        except FileNotFoundError:
            pass
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.counters.errors += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        self.counters.misses += 1
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Atomically publish ``value`` under ``key``; I/O failures are
        swallowed (the cache is an accelerator, never a correctness
        dependency)."""
        entry = {"schema": SCHEMA_VERSION, "key": key, "value": value}
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=_ENTRY_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                os.unlink(tmp)
                raise
            self.counters.stores += 1
        except OSError:
            self.counters.errors += 1

    # ------------------------------------------------------------------

    def entries(self) -> list[Path]:
        """Entry files currently on disk (excluding in-flight temps)."""
        if not self.directory.is_dir():
            return []
        return sorted(
            p
            for p in self.directory.glob(f"*{_ENTRY_SUFFIX}")
            if not p.name.startswith(".tmp-")
        )

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for p in self.entries():
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# ----------------------------------------------------------------------

_DEFAULT: DiskCache | None = None


def default_cache() -> DiskCache:
    """Process-wide cache bound to the *currently resolved* directory.

    Re-resolves ``REPRO_CACHE_DIR`` on every call so tests (and callers
    that retarget the environment variable) always hit the directory
    they configured; counters persist as long as the directory does not
    change.
    """
    global _DEFAULT
    resolved = cache_dir()
    if _DEFAULT is None or _DEFAULT.directory != resolved:
        _DEFAULT = DiskCache(resolved)
    return _DEFAULT


def disk_memoize(key: str, compute: Callable[[], Any], *, enabled: bool = True) -> Any:
    """``compute()`` memoized on the default disk cache."""
    if not enabled:
        return compute()
    cache = default_cache()
    hit, value = cache.get(key)
    if hit:
        return value
    value = compute()
    cache.put(key, value)
    return value
