"""The shared exception taxonomy of the execution layers.

Every failure the pool, cache, executor, and CLI can surface is sorted
into exactly one of two top-level families (docs/RESILIENCE.md):

* :class:`RetryableError` — transient by contract.  Re-running the same
  work is expected to succeed and, because every execution path is a
  deterministic function of its inputs, **must** produce the identical
  result.  The retry machinery in :mod:`repro.parallel.pool` and the
  ``--retry-failed`` sweep path act only on this family.
* :class:`FatalError` — deterministic by contract.  Retrying reproduces
  the same failure (bad arguments, exhausted retry budgets, broken
  invariants), so the error propagates to the caller immediately.

Anything that is neither (a worker raising ``KeyError`` from a logic
bug, say) is deliberately *not* wrapped: an unclassified exception is a
defect report and must keep its original type and traceback.

Subclasses double-inherit stdlib types where the pre-taxonomy code
raised them (``ConfigError`` is a ``ValueError``), so existing callers
catching the stdlib type keep working.

This module depends on nothing inside ``repro`` so every package — the
pool at the bottom of the import graph included — can raise taxonomy
errors without cycles.
"""

from __future__ import annotations

__all__ = [
    "CellFailed",
    "ConfigError",
    "FatalError",
    "InjectedFault",
    "PoolDegradedWarning",
    "ReproError",
    "RetryExhausted",
    "RetryableError",
    "ShardTimeout",
    "WorkerCrash",
]


class ReproError(Exception):
    """Root of every taxonomy error raised by the execution layers."""


# ----------------------------------------------------------------------
# Fatal family: retrying reproduces the failure.
# ----------------------------------------------------------------------


class FatalError(ReproError):
    """Deterministic failure — retrying cannot help."""


class ConfigError(FatalError, ValueError):
    """Invalid arguments or configuration (``jobs=0``, bad spec, ...).

    Also a :class:`ValueError`: pre-taxonomy callers that catch the
    stdlib type keep working.
    """


class RetryExhausted(FatalError):
    """A shard kept failing retryably past the policy's attempt budget.

    ``__cause__`` carries the last underlying failure; ``attempts`` is
    how many were made.
    """

    def __init__(self, message: str, *, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class CellFailed(FatalError):
    """One sweep cell failed and isolation was disabled.

    With isolation on (the executor default) a failing cell becomes a
    structured error row instead; this exception is the
    ``isolate=False`` escape hatch and the type recorded in that row.
    """

    def __init__(self, label: str, *, attempts: int = 1) -> None:
        super().__init__(f"cell {label!r} failed (attempt {attempts})")
        self.label = label
        self.attempts = attempts


# ----------------------------------------------------------------------
# Retryable family: re-execution is expected to succeed, and the
# determinism contract guarantees the retried result is bit-identical.
# ----------------------------------------------------------------------


class RetryableError(ReproError):
    """Transient failure — the retry machinery may re-run the work."""


class ShardTimeout(RetryableError):
    """A shard exceeded the per-shard collection timeout.

    The pool abandons the (possibly hung) worker, rebuilds, and re-runs
    the shard.
    """

    def __init__(self, message: str, *, timeout_s: float | None = None) -> None:
        super().__init__(message)
        self.timeout_s = timeout_s


class WorkerCrash(RetryableError):
    """A worker process died mid-shard (``BrokenProcessPool``).

    Raised only after the rebuild/retry budget is spent; until then the
    crash is absorbed by the pool's recovery loop.
    """


class InjectedFault(RetryableError):
    """A fault planted by :mod:`repro.resilience.faults` fired.

    Transient injections are retryable by construction; the ``fail``
    kind re-fires on every attempt, modelling a permanently broken cell.
    """

    def __init__(self, message: str, *, kind: str = "transient") -> None:
        super().__init__(message)
        self.kind = kind


# ----------------------------------------------------------------------
# Warnings
# ----------------------------------------------------------------------


class PoolDegradedWarning(RuntimeWarning):
    """The process pool degraded to serial in-process execution.

    Emitted once per cause: either the host cannot create worker
    processes at all, or repeated pool deaths exhausted the rebuild
    budget.  Results are unaffected (the serial path is identical by
    construction); only the wall clock suffers.  ``reason`` carries the
    structured cause.
    """

    def __init__(self, message: str, *, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason
