"""Fault-tolerant process-pool plumbing shared by every parallel path.

``run_shards`` maps a module-level worker function over a list of root
chunks on a :class:`concurrent.futures.ProcessPoolExecutor`.  The large
read-only payload (graph, plans, configuration) is shipped to each
worker exactly once via the pool initializer instead of once per chunk,
which keeps pickling overhead proportional to the worker count rather
than the chunk count.  Chunks are handed out one at a time
(``chunksize=1``), so the pool schedules them dynamically: a worker that
drew a cheap chunk immediately picks up the next one, absorbing
power-law skew that degree-aware chunking alone cannot fully predict.

Results are returned **in submission (chunk) order** regardless of
completion order — a requirement of the determinism contract
(``docs/PARALLELISM.md``).

Shard-level recovery (docs/RESILIENCE.md)
-----------------------------------------

A dead worker, a hung shard, or a transient exception no longer kills
the whole run.  Under a :class:`~repro.resilience.retry.RetryPolicy`
(default: :meth:`RetryPolicy.current`, overridable per call or via
``REPRO_RETRY``), the driver

* retries shards that raise :class:`repro.errors.RetryableError`, with
  capped exponential backoff and seeded jitter between rounds;
* applies a per-shard collection timeout (``policy.timeout_s``) and
  treats an overrun as a :class:`~repro.errors.ShardTimeout`;
* rebuilds the pool when it breaks (``BrokenProcessPool`` after a
  worker crash) or when a hung worker is abandoned, salvaging every
  already-completed shard result;
* degrades gracefully to in-process serial execution once the pool has
  died ``policy.max_pool_rebuilds`` times (or cannot be created at
  all), with a one-time structured
  :class:`~repro.errors.PoolDegradedWarning`.

Because every worker is a deterministic function of ``(payload,
shard)``, retries are **invisible in results**: a run that absorbed
crashes is bit-identical to a fault-free run.  All recovery events are
accounted in a structured :class:`~repro.resilience.retry.RetryStats`
(per call via ``stats=``, cumulatively via :func:`retry_stats`) that
flows into :class:`repro.core.result.RunResult` and the experiment
store.  A shard that keeps failing retryably past ``max_attempts``
raises :class:`~repro.errors.RetryExhausted`; non-retryable worker
exceptions propagate unchanged — they are defect reports, not noise.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro import sanitize
from repro.errors import (
    ConfigError,
    PoolDegradedWarning,
    RetryExhausted,
    RetryableError,
    ShardTimeout,
    WorkerCrash,
)
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy, RetryStats

__all__ = [
    "pool_unavailable_reason",
    "reset_retry_stats",
    "retry_stats",
    "run_shards",
]

# Worker-process globals installed by the pool initializer.
_WORKER: Callable[[Any, Any], Any] | None = None
_PAYLOAD: Any = None

_POOL_FAILURE: str | None = None
_WARNED = False
_WARNED_DEGRADED = False

#: Process-cumulative recovery accounting (parent side only); snapshot
#: via :func:`retry_stats`, e.g. for per-cell deltas in the executor.
_TOTALS = RetryStats()


def retry_stats() -> RetryStats:
    """Immutable snapshot of the cumulative recovery counters."""
    return _TOTALS.snapshot()


def reset_retry_stats() -> None:
    global _TOTALS  # noqa: RACE001 - driver-side counter reset only
    _TOTALS = RetryStats()


def _initializer(worker: Callable[[Any, Any], Any], payload: Any) -> None:
    # Installing per-process state is this function's entire job: each
    # worker gets its own copy on purpose, and the parent never reads
    # these names back.
    global _WORKER, _PAYLOAD  # noqa: RACE001 - intentional per-process state
    _WORKER = worker
    _PAYLOAD = payload
    # Arm worker-only fault kinds (crash/hang) in this process.
    faults.mark_worker()


def _invoke(task: "tuple[int, Any]") -> Any:
    attempt, shard = task
    assert _WORKER is not None, "pool worker used before initialization"
    if faults.plan_active():
        faults.inject("pool", faults.token_for(shard), attempt)
    return _WORKER(_PAYLOAD, shard)


def pool_unavailable_reason() -> str | None:
    """Why the last pool attempt fell back to serial (None = no failure)."""
    return _POOL_FAILURE


def _warn_unavailable(reason: str) -> None:
    global _WARNED  # noqa: RACE001 - advisory warn-once latch
    if _WARNED:
        return
    _WARNED = True
    warnings.warn(
        PoolDegradedWarning(
            f"process pool unavailable ({reason}); running shards serially",
            reason=reason,
        ),
        stacklevel=4,
    )


def _warn_degraded(reason: str) -> None:
    global _WARNED_DEGRADED  # noqa: RACE001 - advisory warn-once latch
    if _WARNED_DEGRADED:
        return
    _WARNED_DEGRADED = True
    warnings.warn(
        PoolDegradedWarning(
            f"process pool degraded to serial execution ({reason}); "
            "results are unaffected, only the wall clock",
            reason=reason,
        ),
        stacklevel=4,
    )


def _serial_one(
    worker: Callable[[Any, Any], Any],
    payload: Any,
    shard: Any,
    index: int,
    policy: RetryPolicy,
    stats: RetryStats,
) -> Any:
    """One shard, in-process, with the same retry semantics as the pool.

    Worker-only fault kinds (crash/hang) never fire here, so serial
    degradation always makes progress.
    """
    attempt = 0
    while True:
        stats.attempts += 1
        try:
            if faults.plan_active():
                faults.inject("pool", faults.token_for(shard), attempt)
            return worker(payload, shard)
        except RetryableError as exc:
            stats.transient_errors += 1
            attempt += 1
            if attempt >= policy.max_attempts:
                stats.exhausted += 1
                raise RetryExhausted(
                    f"shard {index} still failing after {attempt} "
                    f"attempt(s): {exc}",
                    attempts=attempt,
                ) from exc
            stats.retries += 1
            delay = policy.backoff_s(attempt - 1, token=str(index))
            if delay > 0:
                stats.backoff_s += delay
                time.sleep(delay)


def _serial_remaining(
    worker: Callable[[Any, Any], Any],
    payload: Any,
    shards: Sequence[Any],
    pending: Sequence[int],
    results: list,
    policy: RetryPolicy,
    stats: RetryStats,
) -> list:
    for i in pending:
        results[i] = _serial_one(worker, payload, shards[i], i, policy, stats)
    return results


def _reap(executor: ProcessPoolExecutor, *, kill: bool) -> None:
    """Shut an executor down without waiting on hung or dead workers."""
    executor.shutdown(wait=False, cancel_futures=True)
    if not kill:
        return
    # Abandoned (possibly hung) workers would otherwise linger; the
    # process handles are an implementation detail, so reap defensively.
    procs = getattr(executor, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except (OSError, ValueError, AttributeError):
            pass


def _bump_attempt(
    index: int,
    attempts: list[int],
    policy: RetryPolicy,
    stats: RetryStats,
    cause: BaseException,
) -> None:
    """Account one failed attempt; raise once the budget is spent."""
    attempts[index] += 1
    if attempts[index] >= policy.max_attempts:
        stats.exhausted += 1
        raise RetryExhausted(
            f"shard {index} still failing after {attempts[index]} "
            f"attempt(s): {cause}",
            attempts=attempts[index],
        ) from cause


def _run_pool(
    worker: Callable[[Any, Any], Any],
    payload: Any,
    shards: Sequence[Any],
    jobs: int,
    policy: RetryPolicy,
    stats: RetryStats,
) -> list:
    global _POOL_FAILURE  # noqa: RACE001 - advisory latch only
    n = len(shards)
    results: list[Any] = [None] * n
    attempts = [0] * n
    pending = list(range(n))
    rebuilds = 0
    round_no = 0
    while pending:
        if rebuilds > policy.max_pool_rebuilds:
            # Graceful degradation: the pool keeps dying, so finish the
            # remaining shards in-process.  Identical results by
            # construction; crash/hang faults are worker-only.
            stats.serial_fallbacks += 1
            _warn_degraded(
                f"pool died {rebuilds} time(s), past the rebuild budget "
                f"of {policy.max_pool_rebuilds}"
            )
            return _serial_remaining(
                worker, payload, shards, pending, results, policy, stats
            )
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)),
                initializer=_initializer,
                initargs=(worker, payload),
            )
        except (OSError, PermissionError, RuntimeError) as exc:
            _POOL_FAILURE = f"{type(exc).__name__}: {exc}"
            _warn_unavailable(_POOL_FAILURE)
            return _serial_remaining(
                worker, payload, shards, pending, results, policy, stats
            )
        retry_next: list[int] = []
        broken = False
        try:
            stats.attempts += len(pending)
            futures = [
                (i, executor.submit(_invoke, (attempts[i], shards[i])))
                for i in pending
            ]
            for i, fut in futures:
                if broken:
                    # The pool is already condemned; salvage whatever
                    # finished cleanly and requeue the rest.
                    if (
                        fut.done()
                        and not fut.cancelled()
                        and fut.exception() is None
                    ):
                        results[i] = fut.result()
                    else:
                        _bump_attempt(
                            i, attempts, policy, stats,
                            WorkerCrash(f"pool broke under shard {i}"),
                        )
                        retry_next.append(i)
                    continue
                try:
                    results[i] = fut.result(timeout=policy.timeout_s)
                except (_FutureTimeout, TimeoutError):
                    stats.timeouts += 1
                    broken = True
                    _bump_attempt(
                        i, attempts, policy, stats,
                        ShardTimeout(
                            f"shard {i} exceeded the {policy.timeout_s}s "
                            "collection timeout",
                            timeout_s=policy.timeout_s,
                        ),
                    )
                    retry_next.append(i)
                except BrokenProcessPool as exc:
                    stats.crashes += 1
                    broken = True
                    _bump_attempt(
                        i, attempts, policy, stats,
                        WorkerCrash(f"worker died mid-shard: {exc}"),
                    )
                    retry_next.append(i)
                except RetryableError as exc:
                    stats.transient_errors += 1
                    _bump_attempt(i, attempts, policy, stats, exc)
                    retry_next.append(i)
                # Any other exception is a worker defect: propagate
                # unchanged (the finally below reaps the pool).
        finally:
            _reap(executor, kill=broken)
        if broken:
            rebuilds += 1
            stats.pool_rebuilds += 1
        pending = retry_next
        if pending:
            stats.retries += len(pending)
            delay = policy.backoff_s(round_no)
            if delay > 0:
                stats.backoff_s += delay
                time.sleep(delay)
            round_no += 1
    return results


def run_shards(
    worker: Callable[[Any, Any], Any],
    payload: Any,
    shards: Sequence[Any],
    jobs: int,
    *,
    policy: RetryPolicy | None = None,
    stats: RetryStats | None = None,
) -> list:
    """Evaluate ``worker(payload, shard)`` for every shard, in order.

    ``jobs`` is the maximum number of worker processes; ``jobs <= 1``
    (or a single shard) runs serially in-process.  ``worker`` must be a
    module-level function and ``payload``/shards/results picklable.

    ``policy`` selects the recovery behaviour (default:
    :meth:`RetryPolicy.current`, i.e. ``REPRO_RETRY`` or the
    documented defaults); ``stats`` — when given — accumulates this
    call's :class:`RetryStats` in place.  Recovery never changes
    results (see the module docstring); it only changes whether a
    result arrives at all.
    """
    if jobs < 1:
        raise ConfigError("jobs must be >= 1")
    shards = list(shards)
    if sanitize.is_active():
        # Sanitizer probe: shard *contents and order* are part of the
        # determinism contract (results return in submission order).
        # The pool/serial mode and any retries are deliberately not
        # recorded — all modes produce identical results by
        # construction, so recovery must not diverge a trace.
        sanitize.emit("pool", f"run_shards[{len(shards)}]", shards)
    eff_policy = policy if policy is not None else RetryPolicy.current()
    local = RetryStats()
    try:
        if jobs <= 1 or len(shards) <= 1:
            return [
                _serial_one(worker, payload, shard, i, eff_policy, local)
                for i, shard in enumerate(shards)
            ]
        if _POOL_FAILURE is not None:
            # A previous attempt failed (e.g. no process support);
            # don't retry every call.
            return _serial_remaining(
                worker, payload, shards, range(len(shards)),
                [None] * len(shards), eff_policy, local,
            )
        return _run_pool(worker, payload, shards, jobs, eff_policy, local)
    finally:
        _TOTALS.add(local)
        if stats is not None:
            stats.add(local)
