"""Process-pool plumbing shared by every parallel execution path.

``run_shards`` maps a module-level worker function over a list of root
chunks on a :class:`concurrent.futures.ProcessPoolExecutor`.  The large
read-only payload (graph, plans, configuration) is shipped to each
worker exactly once via the pool initializer instead of once per chunk,
which keeps pickling overhead proportional to the worker count rather
than the chunk count.  Chunks are handed out one at a time
(``chunksize=1``), so the pool schedules them dynamically: a worker that
drew a cheap chunk immediately picks up the next one, absorbing
power-law skew that degree-aware chunking alone cannot fully predict.

Results are returned **in submission (chunk) order** regardless of
completion order — a requirement of the determinism contract
(``docs/PARALLELISM.md``).

Sandboxed or restricted environments sometimes cannot create the
semaphores/processes a pool needs; in that case ``run_shards`` falls
back to in-process serial execution with a one-time warning.  The
results are identical by construction, only the wall clock differs.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro import sanitize

__all__ = ["run_shards", "pool_unavailable_reason"]

# Worker-process globals installed by the pool initializer.
_WORKER: Callable[[Any, Any], Any] | None = None
_PAYLOAD: Any = None

_POOL_FAILURE: str | None = None
_WARNED = False


def _initializer(worker: Callable[[Any, Any], Any], payload: Any) -> None:
    # Installing per-process state is this function's entire job: each
    # worker gets its own copy on purpose, and the parent never reads
    # these names back.
    global _WORKER, _PAYLOAD  # noqa: RACE001 - intentional per-process state
    _WORKER = worker
    _PAYLOAD = payload


def _invoke(shard: Any) -> Any:
    assert _WORKER is not None, "pool worker used before initialization"
    return _WORKER(_PAYLOAD, shard)


def pool_unavailable_reason() -> str | None:
    """Why the last pool attempt fell back to serial (None = no failure)."""
    return _POOL_FAILURE


def _serial(
    worker: Callable[[Any, Any], Any], payload: Any, shards: Sequence[Any]
) -> list[Any]:
    return [worker(payload, shard) for shard in shards]


def run_shards(
    worker: Callable[[Any, Any], Any],
    payload: Any,
    shards: Sequence[Any],
    jobs: int,
) -> list[Any]:
    """Evaluate ``worker(payload, shard)`` for every shard, in order.

    ``jobs`` is the maximum number of worker processes; ``jobs <= 1`` (or
    a single shard) runs serially in-process.  ``worker`` must be a
    module-level function and ``payload``/shards/results picklable.
    """
    # The failure latch is advisory (skip doomed pool retries, warn
    # once).  A worker-side write only affects that process's latch;
    # shard results are unaffected either way.
    global _POOL_FAILURE, _WARNED  # noqa: RACE001 - advisory latch only
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    shards = list(shards)
    if sanitize.is_active():
        # Sanitizer probe: shard *contents and order* are part of the
        # determinism contract (results return in submission order).
        # The pool/serial mode is deliberately not recorded — the two
        # produce identical results by construction.
        sanitize.emit("pool", f"run_shards[{len(shards)}]", shards)
    if jobs <= 1 or len(shards) <= 1:
        return _serial(worker, payload, shards)
    if _POOL_FAILURE is not None:
        # A previous attempt failed (e.g. no process support); don't
        # retry every call.
        return _serial(worker, payload, shards)
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(shards)),
            initializer=_initializer,
            initargs=(worker, payload),
        ) as executor:
            return list(executor.map(_invoke, shards, chunksize=1))
    except (OSError, PermissionError, BrokenProcessPool, RuntimeError) as exc:
        _POOL_FAILURE = f"{type(exc).__name__}: {exc}"
        if not _WARNED:
            _WARNED = True
            warnings.warn(
                "process pool unavailable "
                f"({_POOL_FAILURE}); running shards serially",
                RuntimeWarning,
                stacklevel=2,
            )
        return _serial(worker, payload, shards)
