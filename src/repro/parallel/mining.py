"""Compatibility wrappers for the reference-engine parallel helpers.

The implementations moved to :mod:`repro.core.sharded` alongside the
backend-generic sharded driver, so all host-parallel dispatch lives in
one module.  These wrappers keep the historical entry points; imports
are deferred to call time because ``repro.core.sharded`` imports this
package's chunking/pool machinery.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.csr import CSRGraph
from repro.pattern.plan import ExecutionPlan
from repro.setops.kernels import KernelPolicy

__all__ = [
    "per_root_counts_parallel",
    "count_embeddings_parallel",
    "list_embeddings_parallel",
]


def per_root_counts_parallel(
    graph: CSRGraph,
    plan: ExecutionPlan,
    roots: Iterable[int] | None,
    jobs: int,
    *,
    kernels: KernelPolicy | None = None,
) -> list[tuple[int, int]]:
    """``(root, count)`` pairs in serial root order, computed on ``jobs``
    worker processes."""
    from repro.core.sharded import per_root_counts_parallel as _impl

    return _impl(graph, plan, roots, jobs, kernels=kernels)


def count_embeddings_parallel(
    graph: CSRGraph,
    plan: ExecutionPlan,
    roots: Iterable[int] | None,
    jobs: int,
    *,
    kernels: KernelPolicy | None = None,
) -> int:
    """Total embedding count, sharded over ``jobs`` worker processes."""
    from repro.core.sharded import count_embeddings_parallel as _impl

    return _impl(graph, plan, roots, jobs, kernels=kernels)


def list_embeddings_parallel(
    graph: CSRGraph,
    plan: ExecutionPlan,
    roots: Iterable[int] | None,
    limit: int | None,
    jobs: int,
    *,
    kernels: KernelPolicy | None = None,
) -> list[tuple[int, ...]]:
    """Embeddings in serial order; ``limit`` truncates after the merge."""
    from repro.core.sharded import list_embeddings_parallel as _impl

    return _impl(graph, plan, roots, limit, jobs, kernels=kernels)
