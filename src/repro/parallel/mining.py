"""Host-parallel drivers for the reference mining engine.

The engine's results are associative over roots: counts add, and
embedding lists concatenate in root order.  Because
:func:`repro.parallel.chunking.shard_roots` produces chunks that are
contiguous in root order, merging per-chunk results in chunk order
reproduces the serial output *exactly* — same totals, same embedding
tuples, same ordering — for every worker count.  (The engine path may
therefore over-decompose freely for load balancing, unlike the sharded
simulator model whose decomposition is part of its timing semantics.)
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.graph.csr import CSRGraph
from repro.mining import engine
from repro.parallel.chunking import engine_num_chunks, shard_roots
from repro.parallel.pool import run_shards
from repro.pattern.plan import ExecutionPlan

__all__ = [
    "per_root_counts_parallel",
    "count_embeddings_parallel",
    "list_embeddings_parallel",
]


def _count_worker(
    payload: dict[str, Any], chunk: list[int]
) -> list[tuple[int, int]]:
    return list(
        engine.per_root_counts(payload["graph"], payload["plan"], roots=chunk)
    )


def _list_worker(
    payload: dict[str, Any], chunk: list[int]
) -> list[tuple[int, ...]]:
    return engine.list_embeddings(
        payload["graph"], payload["plan"], roots=chunk, limit=payload["limit"]
    )


def _chunked(
    graph: CSRGraph, roots: Iterable[int] | None, jobs: int
) -> list[list[int]]:
    root_list = list(roots) if roots is not None else None
    n = graph.num_vertices if root_list is None else len(root_list)
    return shard_roots(graph, root_list, engine_num_chunks(n, jobs))


def per_root_counts_parallel(
    graph: CSRGraph,
    plan: ExecutionPlan,
    roots: Iterable[int] | None,
    jobs: int,
) -> list[tuple[int, int]]:
    """``(root, count)`` pairs in serial root order, computed on ``jobs``
    worker processes."""
    chunks = _chunked(graph, roots, jobs)
    payload = {"graph": graph, "plan": plan}
    parts = run_shards(_count_worker, payload, chunks, jobs)
    return [pair for part in parts for pair in part]


def count_embeddings_parallel(
    graph: CSRGraph,
    plan: ExecutionPlan,
    roots: Iterable[int] | None,
    jobs: int,
) -> int:
    """Total embedding count, sharded over ``jobs`` worker processes."""
    return sum(
        count for _, count in per_root_counts_parallel(graph, plan, roots, jobs)
    )


def list_embeddings_parallel(
    graph: CSRGraph,
    plan: ExecutionPlan,
    roots: Iterable[int] | None,
    limit: int | None,
    jobs: int,
) -> list[tuple[int, ...]]:
    """Embeddings in serial order; ``limit`` truncates after the merge.

    Each worker also stops at ``limit`` locally (it can never contribute
    more than ``limit`` surviving embeddings), so dense graphs don't
    enumerate unboundedly just to be truncated at the end.
    """
    chunks = _chunked(graph, roots, jobs)
    payload = {"graph": graph, "plan": plan, "limit": limit}
    parts = run_shards(_list_worker, payload, chunks, jobs)
    out = [emb for part in parts for emb in part]
    if limit is not None:
        del out[limit:]
    return out
