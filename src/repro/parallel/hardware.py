"""Host-parallel drivers for the chip and software simulators.

Unlike the reference engine, a timing simulation is *not* associative
over roots: PEs couple through the shared cache's LRU state, the DRAM
channel, and the NoC, so replaying the single-chip event loop in
parallel would require a full parallel-discrete-event simulation.
Instead, ``jobs=`` selects the **sharded (multi-chip) model**: the root
set is cut into shards (a pure function of the graph and roots — never
of the worker count), every shard is simulated on its own cold chip
instance, and the shard results are merged with exact semantics
(counts and traffic counters sum; makespan is the max over shards).

Because each shard simulation is deterministic and the decomposition is
jobs-independent, ``jobs=1`` and ``jobs=N`` produce bit-for-bit
identical merged results; the worker count only changes the wall clock.
See ``docs/PARALLELISM.md`` for the full contract and for how the
sharded model relates to the default single-chip model.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.graph.csr import CSRGraph
from repro.hw.chip import ChipResult, merge_chip_results, run_chip
from repro.hw.config import FingersConfig, FlexMinerConfig, MemoryConfig
from repro.parallel.chunking import default_num_shards, shard_roots
from repro.parallel.pool import run_shards
from repro.pattern.plan import ExecutionPlan

__all__ = ["sharded_run_chip", "sharded_software_run", "resolve_shards"]


def resolve_shards(
    graph: CSRGraph,
    roots: Iterable[int] | None,
    num_shards: int | None,
) -> list[list[int]]:
    """The shard decomposition the sharded model will use.

    Exposed so callers (e.g. the result cache) can key on the effective
    shard count without running anything.
    """
    root_list = (
        list(range(graph.num_vertices)) if roots is None else list(roots)
    )
    if num_shards is None:
        num_shards = default_num_shards(len(root_list))
    return shard_roots(graph, root_list, num_shards)


def _chip_worker(payload: dict[str, Any], shard: list[int]) -> ChipResult:
    return run_chip(
        payload["graph"],
        payload["plans"],
        payload["config"],
        payload["memcfg"],
        roots=shard,
        schedule=payload["schedule"],
    )


def sharded_run_chip(
    graph: CSRGraph,
    plans: Sequence[ExecutionPlan],
    config: FingersConfig | FlexMinerConfig,
    memcfg: MemoryConfig | None,
    *,
    roots: Iterable[int] | None,
    schedule: str = "dynamic",
    jobs: int = 1,
    num_shards: int | None = None,
) -> ChipResult:
    """Run the sharded chip model: one cold chip per root shard.

    A decomposition of a single shard degenerates to the plain
    single-chip model, so tiny root sets behave identically with and
    without ``jobs``.
    """
    shards = resolve_shards(graph, roots, num_shards)
    if len(shards) <= 1:
        only = shards[0] if shards else []
        return run_chip(
            graph, plans, config, memcfg, roots=only, schedule=schedule
        )
    payload = {
        "graph": graph,
        "plans": list(plans),
        "config": config,
        "memcfg": memcfg,
        "schedule": schedule,
    }
    results = run_shards(_chip_worker, payload, shards, jobs)
    return merge_chip_results(results)


def _software_worker(payload: dict[str, Any], shard: list[int]) -> Any:
    from repro.sw.miner import SoftwareMiner

    miner = SoftwareMiner(
        payload["graph"], payload["plans"], payload["config"],
        payload["memcfg"],
    )
    return miner.run(shard)


def sharded_software_run(
    graph: CSRGraph,
    plans: Sequence[ExecutionPlan],
    config: Any,
    memcfg: MemoryConfig | None,
    *,
    roots: Iterable[int] | None,
    jobs: int = 1,
    num_shards: int | None = None,
) -> Any:
    """Sharded software-miner model (same contract as the chip model)."""
    from repro.sw.miner import SoftwareMiner, merge_software_results

    shards = resolve_shards(graph, roots, num_shards)
    if len(shards) <= 1:
        only = shards[0] if shards else []
        return SoftwareMiner(graph, plans, config, memcfg).run(only)
    payload = {
        "graph": graph,
        "plans": list(plans),
        "config": config,
        "memcfg": memcfg,
    }
    results = run_shards(_software_worker, payload, shards, jobs)
    return merge_software_results(results)
