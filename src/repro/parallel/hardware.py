"""Compatibility wrappers over the backend-generic sharded driver.

The per-design twins that used to live here (``sharded_run_chip`` for
the chip simulators, ``sharded_software_run`` for the software miner)
are now one driver, :func:`repro.core.sharded.run_sharded`, which works
for every registered backend.  These wrappers keep the historical
entry points and argument order; new code should call ``run_sharded``
(or ``Backend.run(..., jobs=...)``) directly.

Imports from :mod:`repro.core.sharded` are deferred to call time:
``repro.core.sharded`` itself imports this package's chunking/pool
machinery, so a module-level import here would be circular.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.result import RunResult
from repro.graph.csr import CSRGraph
from repro.hw.config import FingersConfig, FlexMinerConfig, MemoryConfig
from repro.pattern.plan import ExecutionPlan

__all__ = ["sharded_run_chip", "sharded_software_run", "resolve_shards"]


def resolve_shards(
    graph: CSRGraph,
    roots: Iterable[int] | None,
    num_shards: int | None,
) -> list[list[int]]:
    """The shard decomposition the sharded model will use.

    Exposed so callers (e.g. the result cache) can key on the effective
    shard count without running anything.  Wrapper over
    :func:`repro.core.sharded.resolve_shards`.
    """
    from repro.core.sharded import resolve_shards as _resolve

    return _resolve(graph, roots, num_shards)


def sharded_run_chip(
    graph: CSRGraph,
    plans: Sequence[ExecutionPlan],
    config: FingersConfig | FlexMinerConfig,
    memcfg: MemoryConfig | None,
    *,
    roots: Iterable[int] | None,
    schedule: str = "dynamic",
    jobs: int = 1,
    num_shards: int | None = None,
) -> RunResult:
    """Run the sharded chip model: one cold chip per root shard."""
    from repro.core.backend import backend_for_config
    from repro.core.sharded import run_sharded

    return run_sharded(
        backend_for_config(config), graph, plans, config,
        memory=memcfg, roots=roots, schedule=schedule,
        jobs=jobs, num_shards=num_shards,
    )


def sharded_software_run(
    graph: CSRGraph,
    plans: Sequence[ExecutionPlan],
    config: Any,
    memcfg: MemoryConfig | None,
    *,
    roots: Iterable[int] | None,
    jobs: int = 1,
    num_shards: int | None = None,
) -> RunResult:
    """Sharded software-miner model (same contract as the chip model)."""
    from repro.core.backend import get_backend
    from repro.core.sharded import run_sharded

    return run_sharded(
        get_backend("software"), graph, plans, config,
        memory=memcfg, roots=roots, jobs=jobs, num_shards=num_shards,
    )
