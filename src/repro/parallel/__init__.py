"""Host-parallel execution layer: root sharding across worker processes.

The paper exploits parallelism at every on-chip granularity; this
package adds the granularity *above* the simulated chip — sharding
search-tree roots across host processes — so sweeps run as fast as the
host hardware allows.  The determinism and merge contract is documented
in ``docs/PARALLELISM.md``; the short version:

* reference-engine results are merged associatively, so any ``jobs``
  value reproduces the serial counts and embedding lists exactly;
* the simulators run the *sharded (multi-chip) model*: a decomposition
  that depends only on the graph and root set, one cold chip per shard,
  exact counter merges, makespan = max over shards — bit-for-bit
  identical for every ``jobs`` value.
"""

from repro.parallel.chunking import (
    CHUNKS_PER_JOB,
    DEFAULT_SHARDS,
    default_num_shards,
    engine_num_chunks,
    shard_roots,
)
from repro.parallel.hardware import (
    resolve_shards,
    sharded_run_chip,
    sharded_software_run,
)
from repro.parallel.mining import (
    count_embeddings_parallel,
    list_embeddings_parallel,
    per_root_counts_parallel,
)
from repro.parallel.pool import (
    pool_unavailable_reason,
    reset_retry_stats,
    retry_stats,
    run_shards,
)
from repro.resilience.retry import RetryPolicy, RetryStats

__all__ = [
    "RetryPolicy",
    "RetryStats",
    "CHUNKS_PER_JOB",
    "DEFAULT_SHARDS",
    "default_num_shards",
    "engine_num_chunks",
    "shard_roots",
    "resolve_shards",
    "sharded_run_chip",
    "sharded_software_run",
    "count_embeddings_parallel",
    "list_embeddings_parallel",
    "per_root_counts_parallel",
    "pool_unavailable_reason",
    "reset_retry_stats",
    "retry_stats",
    "run_shards",
]
