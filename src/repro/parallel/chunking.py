"""Degree-aware root chunking: the unit of host-level parallelism.

Search-tree roots are the natural decomposition grain of pattern-aware
mining (paper section 3.1; also G2Miner's per-root GPU mapping and the
UFMG GPU-strategies study).  On power-law graphs root costs are wildly
skewed — a hub root can carry orders of magnitude more work than the
median — so equal-*count* chunks serialize on whichever chunk holds the
hubs.  ``shard_roots`` therefore cuts the root sequence into contiguous
chunks of approximately equal *cumulative degree*, the same first-order
cost estimate the task dividers use on chip.

Two properties matter for the determinism contract (see
``docs/PARALLELISM.md``):

* chunks are **contiguous in root order**, so concatenating per-chunk
  results in chunk order reproduces the serial iteration order exactly;
* the decomposition is a **pure function** of ``(degrees, roots,
  num_shards)`` — never of the worker count — so any ``jobs`` value
  computes the same chunks and hence identical merged results.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "DEFAULT_SHARDS",
    "CHUNKS_PER_JOB",
    "default_num_shards",
    "engine_num_chunks",
    "shard_roots",
]

#: Default shard count for the sharded chip / software models.  Fixed —
#: deliberately *not* derived from ``jobs`` — so the sharded-model
#: decomposition (and therefore its cycle count) is identical for every
#: worker count.
DEFAULT_SHARDS = 16

#: Over-decomposition factor for the reference engine, whose results are
#: chunking-independent: more chunks than workers lets the process pool
#: hand out work dynamically and absorb power-law skew.
CHUNKS_PER_JOB = 4


def default_num_shards(num_roots: int) -> int:
    """Shard count for the sharded simulator model (jobs-independent)."""
    return max(1, min(num_roots, DEFAULT_SHARDS))


def engine_num_chunks(num_roots: int, jobs: int) -> int:
    """Chunk count for the reference engine (dynamic load balancing)."""
    return max(1, min(num_roots, max(1, jobs) * CHUNKS_PER_JOB))


def shard_roots(
    graph: CSRGraph,
    roots: Iterable[int] | None,
    num_shards: int,
) -> list[list[int]]:
    """Cut ``roots`` into at most ``num_shards`` contiguous chunks of
    approximately equal cumulative degree.

    ``roots=None`` means every vertex (the same default as the engine and
    the simulators).  Returns only non-empty chunks, in root order; their
    concatenation is exactly the input sequence.  Deterministic: equal
    inputs always produce equal chunks.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if roots is None:
        root_arr = np.arange(graph.num_vertices, dtype=np.int64)
    else:
        root_arr = np.asarray(list(roots), dtype=np.int64)
    if root_arr.size == 0:
        return []
    if root_arr.min() < 0 or root_arr.max() >= graph.num_vertices:
        raise ValueError("root ids out of range")
    num_shards = min(num_shards, root_arr.size)
    if num_shards == 1:
        return [root_arr.tolist()]
    # Weight each root by degree + 1 (the +1 keeps zero-degree roots from
    # collapsing boundaries) and cut at equal cumulative-weight targets.
    weights = graph.degrees()[root_arr] + 1
    cumulative = np.cumsum(weights)
    total = int(cumulative[-1])
    targets = total * np.arange(1, num_shards) / num_shards
    cuts = np.searchsorted(cumulative, targets, side="left") + 1
    bounds = np.unique(np.concatenate(([0], cuts, [root_arr.size])))
    return [
        root_arr[a:b].tolist()
        for a, b in zip(bounds[:-1], bounds[1:])
        if b > a
    ]


def shard_signature(shards: Sequence[Sequence[int]]) -> tuple[int, ...]:
    """Chunk sizes, handy for logging/tests."""
    return tuple(len(s) for s in shards)
