"""Intersect-unit pool: per-task work-item scheduling and timing.

Given the set operations of one task (with their *actual* input arrays,
so segment pairing is exact), this module produces the paper's timing
quantities:

* work items per op via segment pairing + max-load splitting
  (:mod:`repro.setops.segments`);
* the IU phase latency — all ops' items share the pool (set-level
  parallelism) and each op's items spread over several IUs
  (segment-level parallelism).  The phase is the classic list-scheduling
  makespan bound ``max(longest item, ceil(total / num_ius))``, which the
  coordinated task dividers of section 4.2 approach by monitoring
  progress;
* the serial input-distribution / result-collection occupancy: the
  round-robin rotation costs ``num_ius`` cycles per wave for each of the
  distribute and collect paths (paper section 4.3: "both these serial
  time periods are proportional to the number of IUs in the PE"), so
  shrinking segments under iso-area scaling inflates the serial floor —
  exactly the Figure 12 drop at 48 IUs;
* per-op IU busy distributions feeding the *balance rate* metric
  (Table 3): items are dealt round-robin, so an op using ``m`` IUs for a
  duration equal to its largest item has balance
  ``sum(busy) / (duration x m)``.

This is the hot path of the FINGERS model; everything is closed-form or
vectorized.

All timing here depends only on the op *input* arrays (kind, source,
operand) captured by :meth:`repro.hw.pe.BasePE._execute_ops` — never on
how the functional result was computed.  The adaptive kernel layer
(:mod:`repro.setops.kernels`, docs/KERNELS.md) may therefore execute the
op with any kernel: pairing/load tables and every cycle statistic are
unchanged for every dispatch policy.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from math import ceil

import numpy as np

from repro.pattern.plan import OpKind
from repro.setops.segments import pairing_loads

__all__ = ["OpTiming", "TaskTiming", "time_task_ops"]

#: Pipeline cycles to load a divider chunk's long heads (see divider.py).
_CHUNK_SETUP_CYCLES = 2


@dataclass(frozen=True)
class OpTiming:
    """Per-op detail (produced only with ``detail=True``; used by tests)."""

    kind: OpKind
    short_size: int
    long_size: int
    item_cycles: tuple[int, ...]
    iu_busy: tuple[int, ...]

    @property
    def num_items(self) -> int:
        return len(self.item_cycles)

    @property
    def total_cycles(self) -> int:
        return sum(self.item_cycles)

    @property
    def balance_rate(self) -> float:
        if not self.iu_busy:
            return 1.0
        duration = max(self.iu_busy)
        if duration == 0:
            return 1.0
        return sum(self.iu_busy) / (duration * len(self.iu_busy))


@dataclass(frozen=True)
class TaskTiming:
    """Aggregate timing of one task's compute phase."""

    iu_phase_cycles: float
    divider_phase_cycles: float
    io_serial_cycles: float
    total_item_cycles: float
    max_item_cycles: float
    num_items: int
    balance_busy_sum: float
    balance_capacity_sum: float
    ops: tuple[OpTiming, ...] = ()

    @property
    def compute_cycles(self) -> float:
        """Macro-pipeline latency: stages overlap, the slowest dominates."""
        return max(
            self.iu_phase_cycles,
            self.divider_phase_cycles,
            self.io_serial_cycles,
        )


def _roles(
    kind: OpKind, source: np.ndarray | None, operand: np.ndarray
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Pick (short, long, keep_unpaired) for an op's two inputs.

    The semantic left operand (whose elements survive a subtraction) is
    the source for SUBTRACT/ANTI_SUBTRACT.  The hardware streams the
    larger input as the long set; when a subtraction's left operand is the
    long one, unpaired long segments pass through (the anti-subtraction
    flow of section 4.3).
    """
    if kind is OpKind.INIT_COPY:
        return np.empty(0, dtype=operand.dtype), operand, False
    assert source is not None
    left, right = source, operand
    if kind is OpKind.INTERSECT:
        if left.size <= right.size:
            return left, right, False
        return right, left, False
    if left.size <= right.size:
        return left, right, False
    return right, left, True


def _op_item_costs(
    kind: OpKind,
    source: np.ndarray | None,
    operand: np.ndarray,
    *,
    long_len: int,
    short_len: int,
    max_load: int,
) -> tuple[list[int], int, int, int, int]:
    """Item cost vector plus (short_size, long_size, n_long_heads, n_short_heads)."""
    short, long, keep_unpaired = _roles(kind, source, operand)
    if kind is OpKind.INIT_COPY:
        n_segs = ceil(long.size / long_len) if long.size else 0
        return [long_len] * n_segs, short.size, long.size, n_segs, 0
    if long.size <= long_len:
        # Fast path: the long set is a single segment, so every short
        # segment (none can fall outside a one-segment range check below)
        # pairs with it; the load table is a single cell.
        n_short = ceil(short.size / short_len) if short.size else 0
        n_long = 1
        if short.size == 0 or long.size == 0:
            load = 0
        elif short.size and int(short[-1]) < int(long[0]):
            load = 0
        else:
            # Short segments entirely below the long range pair nothing.
            first = int(np.searchsorted(short, long[0])) // short_len
            load = n_short - first
        # A single partial segment streams its actual ids, not the padded
        # segment width (the hardware merge stops at the shorter list).
        base = int(long.size)
        items: list[int] = []
        while load > max_load:
            items.append(base + max_load * short_len)
            load -= max_load
        if load > 0:
            shorts = min(load * short_len, int(short.size))
            items.append(base + shorts)
        elif keep_unpaired and not items:
            items.append(base)
        return items, short.size, long.size, n_long, n_short
    n_long_heads = ceil(long.size / long_len)
    n_short_heads = ceil(short.size / short_len) if short.size else 0
    if n_long_heads <= 6 and n_short_heads <= 12:
        # Small-op fast path: pure-Python pairing beats vectorized numpy
        # at these sizes, and most tasks in power-law graphs are small.
        long_heads = [int(long[i * long_len]) for i in range(n_long_heads)]
        py_loads = [0] * n_long_heads
        if short.size:
            svals = short.tolist()
            for i in range(n_short_heads):
                start_val = svals[i * short_len]
                end_val = svals[min((i + 1) * short_len, short.size) - 1]
                e = bisect_right(long_heads, end_val) - 1
                if e < 0:
                    continue
                s = max(bisect_right(long_heads, start_val) - 1, 0)
                for l in range(s, e + 1):
                    py_loads[l] += 1
        costs = []
        for load in py_loads:
            if load == 0:
                if keep_unpaired:
                    costs.append(long_len)
                continue
            while load > max_load:
                costs.append(long_len + max_load * short_len)
                load -= max_load
            costs.append(long_len + load * short_len)
        return costs, short.size, long.size, n_long_heads, n_short_heads
    loads = pairing_loads(short, long, short_len=short_len, long_len=long_len)
    full = loads // max_load
    rem = loads % max_load
    num_full = int(full.sum())
    rem_nonzero = rem[rem > 0]
    costs: list[int] = [long_len + max_load * short_len] * num_full
    if rem_nonzero.size:
        costs.extend((long_len + rem_nonzero * short_len).tolist())
    if keep_unpaired:
        n_zero = int((loads == 0).sum())
        if n_zero:
            costs.extend([long_len] * n_zero)
    return costs, short.size, long.size, n_long_heads, n_short_heads


def _round_robin_busy(costs: list[int], num_ius: int) -> list[int]:
    """Per-IU busy cycles when items are dealt round-robin in issue order.

    The task dividers emit work items in segment order (they cannot sort
    by cost), so the per-IU busy distribution is ragged — which is what
    the paper's balance rate measures (Table 3: 66-71 %).
    """
    if not costs:
        return []
    if len(costs) <= num_ius:
        return list(costs)
    busy = [0] * num_ius
    for i, c in enumerate(costs):
        busy[i % num_ius] += c
    return busy


def time_task_ops(
    op_inputs: list[tuple[OpKind, np.ndarray | None, np.ndarray]],
    *,
    num_ius: int,
    num_dividers: int,
    long_len: int,
    short_len: int,
    max_load: int,
    divider_long_heads: int,
    divider_short_heads: int,
    io_cycles_per_item: int,
    io_bus_ids_per_cycle: int = 8,
    detail: bool = False,
) -> TaskTiming:
    """Time the compute phase of one task from its ops' actual inputs."""
    total_cycles = 0
    total_items = 0
    max_cost = 0
    balance_busy = 0.0
    balance_capacity = 0.0
    divider_total = 0
    divider_largest = 0
    detail_ops: list[OpTiming] = []

    for kind, source, operand in op_inputs:
        costs, s_size, l_size, n_lh, n_sh = _op_item_costs(
            kind,
            source,
            operand,
            long_len=long_len,
            short_len=short_len,
            max_load=max_load,
        )
        op_total = sum(costs)
        total_cycles += op_total
        total_items += len(costs)
        busy: list[int] = []
        if costs:
            op_max = max(costs)
            max_cost = max(max_cost, op_max)
            if len(costs) <= num_ius:
                busy = costs
                duration = op_max
            else:
                busy = _round_robin_busy(costs, num_ius)
                duration = max(busy)
            if duration > 0:
                balance_busy += op_total
                balance_capacity += duration * len(busy)
        if kind is not OpKind.INIT_COPY and n_sh > 0:
            chunks = (
                max(1, ceil(n_lh / divider_long_heads))
                + max(1, ceil(n_sh / divider_short_heads))
                - 1
            )
            divider_total += _CHUNK_SETUP_CYCLES * chunks + n_sh
            divider_largest = max(
                divider_largest,
                _CHUNK_SETUP_CYCLES + ceil(n_sh / chunks),
            )
        if detail:
            detail_ops.append(
                OpTiming(
                    kind=kind,
                    short_size=s_size,
                    long_size=l_size,
                    item_cycles=tuple(int(c) for c in costs),
                    iu_busy=tuple(int(b) for b in busy),
                )
            )

    iu_phase = max(max_cost, ceil(total_cycles / num_ius)) if total_cycles else 0
    divider_phase = (
        max(divider_largest, ceil(divider_total / num_dividers))
        if divider_total
        else 0
    )
    return TaskTiming(
        iu_phase_cycles=float(iu_phase),
        divider_phase_cycles=float(divider_phase),
        io_serial_cycles=float(total_items * io_cycles_per_item),
        total_item_cycles=float(total_cycles),
        max_item_cycles=float(max_cost),
        num_items=total_items,
        balance_busy_sum=balance_busy,
        balance_capacity_sum=balance_capacity,
        ops=tuple(detail_ops),
    )
