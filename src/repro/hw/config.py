"""Configuration dataclasses for the two simulated designs.

Defaults follow the paper's section 5 methodology, with byte capacities
divided by :data:`repro.graph.datasets.CACHE_SCALE` to match the
100-1000x graph downscaling (see DESIGN.md, "Substitutions"):

* FINGERS: 20 PEs, 24 IUs + 12 task dividers per PE, segments
  ``s_l = 16`` / ``s_s = 4``, 32 kB private cache, two 8 kB stream
  buffers, 4 MB shared cache, DDR4-2666 x4 at 85 GB/s, 1 GHz.
* FlexMiner: 40 PEs (the original paper's largest configuration, used for
  the iso-area comparison), one comparator per PE, strict DFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.graph.datasets import CACHE_SCALE
from repro.hw.noc import NoCConfig

__all__ = ["MemoryConfig", "FingersConfig", "FlexMinerConfig", "scaled_bytes"]


def scaled_bytes(paper_bytes: int) -> int:
    """Scale a paper byte capacity down by the global graph scale factor."""
    return max(64, paper_bytes // CACHE_SCALE)


@dataclass(frozen=True)
class MemoryConfig:
    """Shared memory-system parameters (identical for both designs).

    ``dram_bytes_per_cycle`` is 85 GB/s at 1 GHz = 85 B/cycle (paper
    section 5: four channels of DDR4-2666).  Latencies are in core cycles.
    """

    shared_cache_bytes: int = scaled_bytes(4 * 1024 * 1024)
    shared_cache_hit_latency: int = 8
    private_cache_hit_latency: int = 2
    dram_latency: int = 200
    dram_bytes_per_cycle: float = 85.0
    bytes_per_vertex_id: int = 4
    #: PE <-> shared-cache interconnect (paper Figure 5's NoC).
    noc: NoCConfig = NoCConfig()

    def with_shared_cache(self, num_bytes: int) -> "MemoryConfig":
        """Copy with a different shared-cache capacity (Figure 13 sweep)."""
        return replace(self, shared_cache_bytes=num_bytes)


@dataclass(frozen=True)
class FingersConfig:
    """FINGERS chip configuration (paper sections 4 and 5).

    Attributes mirror the paper's knobs:

    ``num_ius``/``long_segment_len``
        Figure 12 sweeps these iso-area (product kept at 24 x 16 = 384).
    ``task_group_size``
        Degree of branch-level parallelism.  ``None`` selects the paper's
        automatic policy (minimum tasks to occupy the IUs, estimated from
        average set sizes); ``1`` disables pseudo-DFS (Figure 11's
        ablation).
    ``max_load``
        Task-divider splitting threshold (short segments per work item).
    """

    num_pes: int = 20
    num_ius: int = 24
    num_dividers: int = 12
    long_segment_len: int = 16
    short_segment_len: int = 4
    max_load: int = 3
    task_group_size: int | None = None
    max_task_group_size: int = 16
    private_cache_bytes: int = scaled_bytes(32 * 1024)
    stream_buffer_bytes: int = scaled_bytes(8 * 1024)
    num_stream_buffers: int = 2
    #: Task-divider head-list capacities (paper section 4.2): 15 long
    #: heads / 24 short heads per divider; longer lists are chunked.
    divider_long_heads: int = 15
    divider_short_heads: int = 24
    #: Serial input-distribution + result-collection handshake cycles per
    #: work item (round-robin multicast in, bitvector out — section 4.3).
    io_cycles_per_item: int = 2
    #: Serial input-distribution + result-collection handshake cycles per
    #: round-robin IU slot; one wave over the pool costs
    #: ``io_cycles_per_item x num_ius`` cycles (paper section 4.3: the
    #: serial periods are proportional to the number of IUs).
    io_bus_ids_per_cycle: int = 8
    #: Fixed macro-pipeline overhead per task (pop, head-list generation,
    #: restriction pre-check, push of spawned tasks).
    task_overhead_cycles: int = 6
    frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.num_pes < 1 or self.num_ius < 1 or self.num_dividers < 1:
            raise ValueError("PE/IU/divider counts must be positive")
        if self.long_segment_len < 1 or self.short_segment_len < 1:
            raise ValueError("segment lengths must be positive")
        if self.max_load < 1:
            raise ValueError("max_load must be >= 1")
        if self.task_group_size is not None and self.task_group_size < 1:
            raise ValueError("task_group_size must be >= 1 when given")

    @property
    def design_name(self) -> str:
        return "FINGERS"


@dataclass(frozen=True)
class FlexMinerConfig:
    """FlexMiner baseline configuration (paper sections 2.2 and 5).

    One comparator-based set-operation unit per PE, strict DFS (so every
    shared-cache miss stalls the PE), and a per-PE private cache through
    which neighbor lists are staged (the c-map-equivalent storage; see the
    paper's methodology note that FINGERS replaces c-map with candidate
    sets in the private cache).
    """

    num_pes: int = 40
    private_cache_bytes: int = scaled_bytes(32 * 1024)
    #: Fixed per-task scheduling overhead (stack pop/push, control).
    task_overhead_cycles: int = 6
    frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ValueError("num_pes must be positive")

    @property
    def design_name(self) -> str:
        return "FlexMiner"
