"""Network-on-chip model connecting PEs to the shared cache.

Paper Figure 5 shows the PEs attached to the shared cache through a NoC.
For the traffic pattern at hand — request/response between each PE and
the central cache — a detailed topology simulation adds nothing; what
matters is (a) a per-hop traversal latency added to every shared-cache
access and (b) an aggregate bandwidth ceiling that congests when many
PEs stream hub lists simultaneously.  Both are modelled here in the same
occupancy style as :class:`repro.hw.memory.DRAMModel`.

The default parameters make the NoC nearly transparent (a few cycles,
ample bandwidth), as in the paper, but the sensitivity benchmark sweeps
them to show when interconnect would start to matter.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NoCConfig", "NoCModel", "NoCStats", "merge_noc_stats"]


@dataclass(frozen=True)
class NoCConfig:
    """Interconnect parameters.

    ``latency_cycles`` is the round-trip request/response traversal;
    ``bytes_per_cycle`` the aggregate PE<->cache bandwidth (0 disables
    occupancy modelling entirely, i.e. an ideal crossbar).
    """

    latency_cycles: int = 4
    bytes_per_cycle: float = 256.0

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise ValueError("latency must be non-negative")
        if self.bytes_per_cycle < 0:
            raise ValueError("bandwidth must be non-negative")


@dataclass
class NoCStats:
    """Traffic counters."""

    transfers: int = 0
    bytes_transferred: int = 0
    total_queue_delay: float = 0.0

    @property
    def avg_queue_delay(self) -> float:
        return self.total_queue_delay / self.transfers if self.transfers else 0.0


def merge_noc_stats(stats: "list[NoCStats] | tuple[NoCStats, ...]") -> NoCStats:
    """Sum traffic counters across independent interconnect instances."""
    from repro.core.merge import merge_stats

    return merge_stats(stats, cls=NoCStats)


class NoCModel:
    """Latency plus FCFS aggregate-bandwidth occupancy."""

    def __init__(self, config: NoCConfig | None = None) -> None:
        self.config = config or NoCConfig()
        self._free_at = 0.0
        self.stats = NoCStats()

    def transfer(self, now: float, num_bytes: int) -> float:
        """Move ``num_bytes`` across the NoC at ``now``; return arrival."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.stats.transfers += 1
        self.stats.bytes_transferred += num_bytes
        if self.config.bytes_per_cycle <= 0:
            return now + self.config.latency_cycles
        start = max(now, self._free_at)
        service = num_bytes / self.config.bytes_per_cycle
        self._free_at = start + service
        self.stats.total_queue_delay += start - now
        return start + service + self.config.latency_cycles

    def reset(self) -> None:
        self._free_at = 0.0
        self.stats = NoCStats()
