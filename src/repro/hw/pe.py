"""Processing-element models: shared traversal plus the FINGERS PE.

A *task* is the paper's unit of work: extending the current partial
embedding with one new vertex, which means executing the level's set
operations and spawning children from the materialized candidate set
(section 4).  Both PE models traverse the same task tree and execute the
same plan IR functionally — they must produce identical embedding counts
(a test invariant) — and differ only in *when* cycles elapse:

* the FINGERS PE (here) pops *task groups* (pseudo-DFS, section 4.1),
  overlaps the group's neighbor-list fetches with compute, and runs each
  task's ops on a pool of IUs with segment pairing and load balancing;
* the FlexMiner PE (:mod:`repro.hw.flexminer`) follows strict DFS with a
  single comparator and stalls on every shared-cache miss.
"""

from __future__ import annotations

from math import ceil
from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.hw.cache import SectoredLRUCache
from repro.hw.config import FingersConfig, MemoryConfig
from repro.hw.iu import time_task_ops
from repro.hw.memory import DRAMModel
from repro.hw.noc import NoCModel
from repro.hw.stats import PEStats
from repro.mining.engine import filtered_candidates
from repro.pattern.plan import ExecutionPlan, OpKind
from repro.setops.kernels import KernelContext

__all__ = ["Task", "BasePE", "FingersPE", "auto_group_size"]


class Task:
    """One pending tree-extension step.

    ``plan_idx`` is ``None`` for a merged multi-pattern root task (the
    shared trunk of section 4's multi-pattern support), in which case the
    level-0 ops of *all* plans run deduplicated and children are spawned
    per plan.
    """

    __slots__ = ("plan_idx", "level", "embedding", "states")

    def __init__(
        self,
        plan_idx: int | None,
        level: int,
        embedding: tuple[int, ...],
        states: dict[int, np.ndarray],
    ) -> None:
        self.plan_idx = plan_idx
        self.level = level
        self.embedding = embedding
        self.states = states


def auto_group_size(
    graph: CSRGraph, plans: Sequence[ExecutionPlan], config: FingersConfig
) -> int:
    """The paper's task-group sizing policy (section 4.1).

    "the minimum number of tasks to fully occupy the IUs, where the IU
    count needed for each task is estimated using the average sizes of the
    two input sets" — we estimate work items per op from the average
    degree (long input) and a shrunken candidate set (short input), and
    divide the IU pool by the per-task demand.  The paper notes (and our
    sensitivity benchmark confirms) performance is insensitive to the
    exact estimate.
    """
    avg_deg = max(1.0, graph.avg_degree())
    long_segs = max(1, ceil(avg_deg / config.long_segment_len))
    short_segs = max(1, ceil((avg_deg / 4) / config.short_segment_len))
    items_per_op = max(
        1, min(long_segs, ceil(short_segs / config.max_load) * long_segs)
    )
    ops_per_level = [
        sched.num_ops for plan in plans for sched in plan.levels
    ]
    avg_ops = max(1.0, sum(ops_per_level) / len(ops_per_level))
    est_ius_per_task = min(config.num_ius, max(1, round(avg_ops * items_per_op)))
    group = ceil(config.num_ius / est_ius_per_task)
    return max(1, min(group, config.max_task_group_size))


class BasePE:
    """Traversal and bookkeeping shared by both PE models."""

    def __init__(
        self,
        pe_id: int,
        graph: CSRGraph,
        plans: Sequence[ExecutionPlan],
        memcfg: MemoryConfig,
        shared_cache: SectoredLRUCache,
        dram: DRAMModel,
    ) -> None:
        self.pe_id = pe_id
        self.graph = graph
        self.plans = list(plans)
        self.memcfg = memcfg
        self.shared_cache = shared_cache
        self.dram = dram
        #: Shared interconnect; set by the chip (None = ideal wires).
        self.noc: NoCModel | None = None
        #: Size-adaptive set-op dispatcher.  Kernel choice is functional
        #: only (docs/KERNELS.md): timing below derives from the op
        #: *inputs*, so every dispatch policy yields identical cycles.
        self.kernels = KernelContext(graph)
        self.now = 0.0
        self.stats = PEStats()
        self.counts = [0] * len(self.plans)
        self._stack: list[list[Task]] = []
        #: Optional repro.hw.trace.Tracer; set by the chip when tracing.
        self.tracer = None

    # -- work management ------------------------------------------------

    def assign_root(self, root: int, time: float) -> None:
        """Schedule the search tree rooted at ``root`` on this PE."""
        self.now = max(self.now, time)
        plan_idx: int | None = 0 if len(self.plans) == 1 else None
        self._stack.append([Task(plan_idx, 0, (root,), {})])
        if self.tracer is not None:
            self.tracer.record(self.pe_id, self.now, self.now, "root", str(root))

    def has_work(self) -> bool:
        return bool(self._stack)

    def step(self) -> float:
        """Process one task group; advance and return the local clock."""
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------

    def _list_bytes(self, v: int) -> int:
        return max(
            self.memcfg.bytes_per_vertex_id,
            self.graph.degree(v) * self.memcfg.bytes_per_vertex_id,
        )

    def _fetch_shared(self, v: int, now: float) -> float:
        """Fetch ``N(v)`` through the NoC and shared cache."""
        self.stats.neighbor_fetches += 1
        num_bytes = self._list_bytes(v)
        hit = self.shared_cache.access(v, num_bytes)
        if hit:
            done = now + self.memcfg.shared_cache_hit_latency
        else:
            done = (
                self.dram.access(now, num_bytes)
                + self.memcfg.shared_cache_hit_latency
            )
        if self.noc is not None:
            done = self.noc.transfer(done, num_bytes)
        return done

    def _task_operand_vertices(self, task: Task) -> list[int]:
        """Distinct vertices whose neighbor lists the task's ops consume."""
        vertices: list[int] = []
        seen: set[int] = set()
        for plan_idx in self._active_plans(task):
            plan = self.plans[plan_idx]
            for op in plan.levels[task.level].ops:
                v = task.embedding[op.operand_level]
                if v not in seen:
                    seen.add(v)
                    vertices.append(v)
        return vertices

    def _active_plans(self, task: Task) -> list[int]:
        if task.plan_idx is not None:
            return [task.plan_idx]
        return list(range(len(self.plans)))

    def _execute_ops(
        self, task: Task
    ) -> list[tuple[OpKind, np.ndarray | None, np.ndarray]]:
        """Run the task's deduplicated set ops functionally.

        Returns the (kind, source, operand) inputs of each executed op for
        the timing model.  Ops whose result state was already produced by
        another plan in a merged root task are skipped (the multi-pattern
        trunk sharing of section 4).
        """
        executed: list[tuple[OpKind, np.ndarray | None, np.ndarray]] = []
        done: set[int] = set()
        for plan_idx in self._active_plans(task):
            plan = self.plans[plan_idx]
            for op in plan.levels[task.level].ops:
                if op.result_state in done:
                    continue
                done.add(op.result_state)
                vertex = task.embedding[op.operand_level]
                operand = self.graph.neighbors(vertex)
                source = (
                    task.states[op.source_state]
                    if op.source_state is not None
                    else None
                )
                task.states[op.result_state] = self.kernels.apply_op(
                    op.kind, source, operand, vertex=vertex
                )
                executed.append((op.kind, source, operand))
        return executed

    def _spawn_children(self, task: Task, group_size: int) -> None:
        """Filter candidates, count leaves, and push child task groups."""
        nxt = task.level + 1
        for plan_idx in self._active_plans(task):
            plan = self.plans[plan_idx]
            sched = plan.levels[task.level]
            cand = filtered_candidates(
                plan, nxt, task.states[sched.extend_state], task.embedding
            )
            if nxt == plan.num_levels - 1:
                self.counts[plan_idx] += int(cand.size)
                self.stats.embeddings_found += int(cand.size)
                continue
            children = [
                Task(plan_idx, nxt, task.embedding + (int(v),), dict(task.states))
                for v in cand
            ]
            for i in range(0, len(children), group_size):
                self._stack.append(children[i : i + group_size])


class FingersPE(BasePE):
    """The FINGERS PE: pseudo-DFS task groups over a pool of IUs."""

    def __init__(
        self,
        pe_id: int,
        graph: CSRGraph,
        plans: Sequence[ExecutionPlan],
        config: FingersConfig,
        memcfg: MemoryConfig,
        shared_cache: SectoredLRUCache,
        dram: DRAMModel,
    ) -> None:
        super().__init__(pe_id, graph, plans, memcfg, shared_cache, dram)
        self.config = config
        self.group_size = (
            config.task_group_size
            if config.task_group_size is not None
            else auto_group_size(graph, plans, config)
        )
        self.private_cache = SectoredLRUCache(
            config.private_cache_bytes, name=f"pe{pe_id}-private"
        )
        self._state_seq = 0

    def step(self) -> float:
        """Process one task group through the 5-stage macro pipeline.

        The group's tasks run *concurrently*: all neighbor-list fetches
        issue at group start (misses overlap with the compute of tasks
        whose data is resident — section 4.1), and the tasks' work items
        share the IU pool together, which is precisely why the group size
        is chosen as "the minimum number of tasks to fully occupy the
        IUs".  The group's latency is the slowest pipeline stage:

        * IU stage — total item cycles over the pool, floored by the
          longest single item;
        * divider stage — balanced head-list matching;
        * I/O stage — the serial round-robin input distribution and
          result collection, ``2`` cycles per work item (section 4.3);
        * issue stage — one task pops/pushes per cycle pair;

        plus a fixed pipeline-fill overhead, plus any residual memory
        stall the group could not hide.
        """
        group = self._stack.pop()
        self.stats.task_groups += 1
        t0 = self.now
        cfg = self.config

        ready: list[float] = []
        for task in group:
            r = t0
            for v in self._task_operand_vertices(task):
                r = max(r, self._fetch_shared(v, t0))
            ready.append(r)

        sum_items_cycles = 0.0
        sum_divider = 0.0
        num_items = 0
        max_item = 0.0
        max_divider_chunk = 0.0
        tail_after_ready = 0.0  # IU phase of the latest-ready task
        latest_ready = max(ready) if ready else t0
        spill_penalty = 0.0

        for r, task in zip(ready, group):
            spill_penalty += self._charge_private_cache(task)
            executed = self._execute_ops(task)
            timing = time_task_ops(
                executed,
                num_ius=cfg.num_ius,
                num_dividers=cfg.num_dividers,
                long_len=cfg.long_segment_len,
                short_len=cfg.short_segment_len,
                max_load=cfg.max_load,
                divider_long_heads=cfg.divider_long_heads,
                divider_short_heads=cfg.divider_short_heads,
                io_cycles_per_item=cfg.io_cycles_per_item,
                io_bus_ids_per_cycle=cfg.io_bus_ids_per_cycle,
            )
            sum_items_cycles += timing.total_item_cycles
            sum_divider += timing.divider_phase_cycles
            num_items += timing.num_items
            max_item = max(max_item, timing.max_item_cycles)
            max_divider_chunk = max(max_divider_chunk, timing.divider_phase_cycles)
            if r >= latest_ready:
                tail_after_ready = timing.iu_phase_cycles
            self.stats.tasks += 1
            self.stats.iu_busy_cycles += timing.total_item_cycles
            self.stats.num_work_items += timing.num_items
            self.stats.balance_busy_sum += timing.balance_busy_sum
            self.stats.balance_capacity_sum += timing.balance_capacity_sum
            self._spawn_children(task, self.group_size)

        # The serial I/O floor is pooled over the whole group: the
        # round-robin distributor/collector handles one work item per
        # rotation slot on each of the distribute and collect paths
        # (section 4.3), so the floor grows with the item count — which
        # is what iso-area segment shrinking inflates (Figure 12).
        io_floor = float(num_items * cfg.io_cycles_per_item)
        compute_bound = max(
            sum_items_cycles / cfg.num_ius,
            max_item,
            sum_divider / cfg.num_dividers if cfg.num_dividers else 0.0,
            max_divider_chunk,
            io_floor,
            len(group) * 2.0,  # issue stage: pop + push per task
        )
        fill = cfg.task_overhead_cycles + spill_penalty
        end_compute = t0 + compute_bound + fill
        end_memory = latest_ready + tail_after_ready
        end = max(end_compute, end_memory)
        self.stats.stall_cycles += max(0.0, end_memory - end_compute)
        self.stats.compute_cycles += compute_bound
        self.stats.overhead_cycles += fill
        self.now = end
        self.stats.busy_cycles += self.now - t0
        if self.tracer is not None:
            self.tracer.record(self.pe_id, t0, end_compute, "group",
                               f"{len(group)} tasks")
            if end_memory > end_compute:
                self.tracer.record(self.pe_id, end_compute, end, "stall")
        return self.now

    def _charge_private_cache(self, task: Task) -> float:
        """Model candidate-set residency in the PE private cache.

        Candidate sets are "always associated with specific tasks" and
        "only spill to the shared cache if they overflow" (section 4).
        We account the live footprint — the task's inherited states plus
        its siblings' share via the group — against the private capacity;
        overflow charges a read-back from the shared cache for the
        spilled source sets.
        """
        footprint = sum(
            s.size * self.memcfg.bytes_per_vertex_id
            for s in task.states.values()
        )
        footprint *= self.group_size
        if footprint <= self.config.private_cache_bytes:
            return 0.0
        self.stats.private_spills += 1
        return float(self.memcfg.shared_cache_hit_latency)
