"""Front door of the hardware layer: ``simulate`` and ``speedup_grid``.

``simulate`` accepts a graph, a workload (pattern object, benchmark name
— including the multi-pattern ``"3mc"`` — or a pre-compiled plan), and a
design configuration, and returns a :class:`RunResult` with cycles,
counts, and microarchitectural statistics.  The configuration type
selects the backend through the :mod:`repro.core` registry, so this
module contains no per-design dispatch.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.backend import backend_for_config
from repro.core.result import RunResult
from repro.core.workload import Workload, resolve_workload
from repro.graph.csr import CSRGraph
from repro.hw.config import FingersConfig, FlexMinerConfig, MemoryConfig

__all__ = [
    "SimResult",
    "simulate",
    "speedup_grid",
    "resolve_workload",
    "FingersConfig",
    "FlexMinerConfig",
    "MemoryConfig",
]

#: Simulation outcomes are the unified result type; the old name
#: survives as an alias.  ``result.chip`` still yields the bare
#: chip-level record (workload identity stripped).
SimResult = RunResult


def simulate(
    graph: CSRGraph,
    workload: Workload,
    config: FingersConfig | FlexMinerConfig,
    *,
    memory: MemoryConfig | None = None,
    roots: Iterable[int] | None = None,
    schedule: str = "dynamic",
    tracer=None,
    jobs: int | None = None,
    shards: int | None = None,
) -> RunResult:
    """Simulate one mining job on one chip configuration.

    ``schedule`` picks the global root scheduler (see
    :func:`repro.hw.chip.run_chip`); the default is the paper's dynamic
    policy.

    ``jobs``/``shards`` select the **sharded (multi-chip) model** (see
    docs/PARALLELISM.md): the root set is cut into ``shards`` chunks (a
    pure function of graph and roots; default policy when ``None``),
    each shard runs on its own cold chip on up to ``jobs`` host worker
    processes, and results merge exactly — counts and traffic counters
    sum, ``cycles`` is the slowest shard's makespan.  Any ``jobs`` value
    produces bit-for-bit identical results; ``jobs=None`` (default)
    keeps the plain single-chip model.

    >>> from repro.graph import load_dataset
    >>> r = simulate(load_dataset("As"), "tc", FingersConfig(num_pes=1))
    >>> r.count > 0
    True
    """
    backend = backend_for_config(config)
    return backend.run(
        graph, workload, config,
        memory=memory, roots=roots, schedule=schedule, tracer=tracer,
        jobs=jobs, shards=shards,
    )


def speedup_grid(
    graphs: dict[str, CSRGraph],
    workloads: Sequence[Workload],
    config: FingersConfig | FlexMinerConfig,
    baseline: FingersConfig | FlexMinerConfig,
    *,
    memory: MemoryConfig | None = None,
    roots_for: dict[str, Iterable[int]] | None = None,
    jobs: int | None = None,
) -> dict[tuple[str, str], float]:
    """Speedups of ``config`` over ``baseline`` for every (pattern, graph).

    This is the shape of the paper's Figures 9 and 10: a
    ``{(workload, graph): speedup}`` mapping, computed with identical
    roots for both designs.  ``jobs`` runs both designs under the
    sharded model on that many worker processes (identical shards on
    both sides, so ratios stay apples-to-apples).
    """
    out: dict[tuple[str, str], float] = {}
    for workload in workloads:
        for gname, graph in graphs.items():
            roots = None
            if roots_for and gname in roots_for:
                roots = list(roots_for[gname])
            ours = simulate(
                graph, workload, config, memory=memory, roots=roots, jobs=jobs
            )
            theirs = simulate(
                graph, workload, baseline, memory=memory, roots=roots,
                jobs=jobs,
            )
            out[(ours.workload, gname)] = ours.speedup_over(theirs)
    return out
