"""Front door of the hardware layer: ``simulate`` and ``speedup_grid``.

``simulate`` accepts a graph, a workload (pattern object, benchmark name
— including the multi-pattern ``"3mc"`` — or a pre-compiled plan), and a
design configuration, and returns a :class:`SimResult` with cycles,
counts, and microarchitectural statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.graph.csr import CSRGraph
from repro.hw.chip import ChipResult, run_chip
from repro.hw.config import FingersConfig, FlexMinerConfig, MemoryConfig
from repro.pattern.compiler import compile_plan
from repro.pattern.multipattern import compile_multi_plan, motif_patterns, MultiPlan
from repro.pattern.pattern import Pattern, named_pattern
from repro.pattern.plan import ExecutionPlan

__all__ = [
    "SimResult",
    "simulate",
    "speedup_grid",
    "resolve_workload",
    "FingersConfig",
    "FlexMinerConfig",
    "MemoryConfig",
]

Workload = Union[str, Pattern, ExecutionPlan, MultiPlan]


@dataclass(frozen=True)
class SimResult:
    """A chip simulation outcome plus workload identity."""

    workload: str
    chip: ChipResult
    pattern_names: tuple[str, ...] = ()

    @property
    def cycles(self) -> float:
        return self.chip.cycles

    @property
    def count(self) -> int:
        return self.chip.count

    @property
    def counts(self) -> tuple[int, ...]:
        return self.chip.counts

    @property
    def counts_by_name(self) -> dict[str, int]:
        """Per-pattern counts (useful for multi-pattern jobs like 3mc)."""
        names = self.pattern_names or (self.workload,)
        return dict(zip(names, self.chip.counts))

    def speedup_over(self, baseline: "SimResult") -> float:
        """``baseline.cycles / self.cycles`` with a functional sanity check."""
        if baseline.counts != self.counts:
            raise ValueError(
                "refusing to compare runs with different functional results: "
                f"{baseline.counts} vs {self.counts}"
            )
        if self.cycles == 0:
            raise ZeroDivisionError("zero-cycle run")
        return baseline.cycles / self.cycles


def resolve_workload(
    workload: Workload,
) -> tuple[str, list[ExecutionPlan], tuple[str, ...]]:
    """Normalize any workload spec to (name, plans, per-plan names)."""
    if isinstance(workload, MultiPlan):
        return "+".join(workload.names), list(workload.plans), workload.names
    if isinstance(workload, ExecutionPlan):
        name = f"plan(k={workload.num_levels})"
        return name, [workload], (name,)
    if isinstance(workload, Pattern):
        name = f"pattern(k={workload.num_vertices})"
        return name, [compile_plan(workload)], (name,)
    if isinstance(workload, str):
        if workload == "3mc":
            patterns, names = motif_patterns(3)
            multi = compile_multi_plan(patterns, names=names)
            return "3mc", list(multi.plans), tuple(names)
        return workload, [compile_plan(named_pattern(workload))], (workload,)
    raise TypeError(f"cannot interpret workload {workload!r}")


def simulate(
    graph: CSRGraph,
    workload: Workload,
    config: FingersConfig | FlexMinerConfig,
    *,
    memory: MemoryConfig | None = None,
    roots: Iterable[int] | None = None,
    schedule: str = "dynamic",
    tracer=None,
    jobs: int | None = None,
    shards: int | None = None,
) -> SimResult:
    """Simulate one mining job on one chip configuration.

    ``schedule`` picks the global root scheduler (see
    :func:`repro.hw.chip.run_chip`); the default is the paper's dynamic
    policy.

    ``jobs``/``shards`` select the **sharded (multi-chip) model** (see
    docs/PARALLELISM.md): the root set is cut into ``shards`` chunks (a
    pure function of graph and roots; default policy when ``None``),
    each shard runs on its own cold chip on up to ``jobs`` host worker
    processes, and results merge exactly — counts and traffic counters
    sum, ``cycles`` is the slowest shard's makespan.  Any ``jobs`` value
    produces bit-for-bit identical results; ``jobs=None`` (default)
    keeps the plain single-chip model.

    >>> from repro.graph import load_dataset
    >>> r = simulate(load_dataset("As"), "tc", FingersConfig(num_pes=1))
    >>> r.count > 0
    True
    """
    name, plans, names = resolve_workload(workload)
    if jobs is None and shards is None:
        chip = run_chip(
            graph, plans, config, memory,
            roots=roots, schedule=schedule, tracer=tracer,
        )
        return SimResult(workload=name, chip=chip, pattern_names=names)
    if tracer is not None:
        raise ValueError(
            "tracing is only supported for unsharded runs (jobs/shards unset)"
        )
    if jobs is not None and jobs < 1:
        raise ValueError("jobs must be >= 1")
    from repro.parallel.hardware import sharded_run_chip

    chip = sharded_run_chip(
        graph, plans, config, memory,
        roots=roots, schedule=schedule,
        jobs=jobs or 1, num_shards=shards,
    )
    return SimResult(workload=name, chip=chip, pattern_names=names)


def speedup_grid(
    graphs: dict[str, CSRGraph],
    workloads: Sequence[Workload],
    config: FingersConfig | FlexMinerConfig,
    baseline: FingersConfig | FlexMinerConfig,
    *,
    memory: MemoryConfig | None = None,
    roots_for: dict[str, Iterable[int]] | None = None,
    jobs: int | None = None,
) -> dict[tuple[str, str], float]:
    """Speedups of ``config`` over ``baseline`` for every (pattern, graph).

    This is the shape of the paper's Figures 9 and 10: a
    ``{(workload, graph): speedup}`` mapping, computed with identical
    roots for both designs.  ``jobs`` runs both designs under the
    sharded model on that many worker processes (identical shards on
    both sides, so ratios stay apples-to-apples).
    """
    out: dict[tuple[str, str], float] = {}
    for workload in workloads:
        for gname, graph in graphs.items():
            roots = None
            if roots_for and gname in roots_for:
                roots = list(roots_for[gname])
            ours = simulate(
                graph, workload, config, memory=memory, roots=roots, jobs=jobs
            )
            theirs = simulate(
                graph, workload, baseline, memory=memory, roots=roots,
                jobs=jobs,
            )
            out[(ours.workload, gname)] = ours.speedup_over(theirs)
    return out
