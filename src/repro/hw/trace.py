"""Execution tracing: per-PE timeline events and a text Gantt view.

Attach a :class:`Tracer` to a simulation to record what each PE did
when — task groups, stalls, root assignments — then render a compact
text Gantt chart.  Used by ``examples/`` and handy when debugging why a
configuration underperforms (e.g. spotting the serialized hub tree of a
power-law graph).

Tracing is opt-in and zero-cost when absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["TraceEvent", "Tracer", "render_gantt"]


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry."""

    pe_id: int
    start: float
    end: float
    kind: str  # "group", "stall", "root"
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Tracer:
    """Collects events; pass as ``tracer=`` to the chip/PE entry points."""

    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(
        self, pe_id: int, start: float, end: float, kind: str, detail: str = ""
    ) -> None:
        if self.enabled and end >= start:
            self.events.append(TraceEvent(pe_id, start, end, kind, detail))

    def for_pe(self, pe_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.pe_id == pe_id]

    @property
    def num_pes(self) -> int:
        return len({e.pe_id for e in self.events})

    def busy_fraction(self, pe_id: int) -> float:
        """Fraction of the PE's span spent in task groups (not stalls)."""
        events = self.for_pe(pe_id)
        if not events:
            return 0.0
        span = max(e.end for e in events) - min(e.start for e in events)
        busy = sum(e.duration for e in events if e.kind == "group")
        return busy / span if span > 0 else 0.0


def render_gantt(
    tracer: Tracer,
    *,
    width: int = 72,
    kinds: Iterable[str] = ("group", "stall"),
) -> str:
    """Render the trace as one text row per PE.

    ``#`` marks task-group execution, ``.`` marks stall time, spaces are
    idle.  The time axis is scaled to ``width`` columns.
    """
    if not tracer.events:
        return "(empty trace)"
    t_end = max(e.end for e in tracer.events)
    if t_end <= 0:
        return "(zero-length trace)"
    scale = width / t_end
    glyph = {"group": "#", "stall": ".", "root": "|"}
    pe_ids = sorted({e.pe_id for e in tracer.events})
    lines = [f"0{' ' * (width - len(str(round(t_end))) - 1)}{round(t_end)}"]
    for pid in pe_ids:
        row = [" "] * width
        for event in tracer.for_pe(pid):
            if event.kind not in kinds:
                continue
            lo = min(width - 1, int(event.start * scale))
            hi = min(width - 1, max(lo, int(event.end * scale) - 1))
            for i in range(lo, hi + 1):
                if row[i] == " " or glyph[event.kind] == "#":
                    row[i] = glyph[event.kind]
        lines.append(f"PE{pid:<3d} |{''.join(row)}|")
    return "\n".join(lines)
