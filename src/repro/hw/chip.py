"""Multi-PE chip: dynamic root scheduling over a shared memory system.

The global scheduler hands search-tree roots to idle PEs (the
coarse-grained, tree-level parallelism both designs share, section 3.1).
PEs advance in time order, one task group per event, so their accesses to
the shared cache and DRAM interleave approximately as they would on the
real chip.  The chip makespan — the finish time of the last PE — is the
headline "cycles" number; load imbalance from power-law roots shows up as
the gap between mean PE busy time and makespan.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.core.result import RunResult, merge_run_results
from repro.graph.csr import CSRGraph
from repro.hw.cache import SectoredLRUCache
from repro.hw.config import FingersConfig, FlexMinerConfig, MemoryConfig
from repro.hw.flexminer import FlexMinerPE
from repro.hw.memory import DRAMModel
from repro.hw.noc import NoCModel
from repro.hw.pe import BasePE, FingersPE
from repro.pattern.plan import ExecutionPlan

__all__ = ["ChipResult", "run_chip", "merge_chip_results"]

#: Chip runs produce the unified result type; the old name survives as
#: an alias (``pe_stats``, ``combined``, ``shared_cache``, ... resolve
#: through :class:`repro.core.result.RunResult`'s compatibility surface).
ChipResult = RunResult


def merge_chip_results(results: Sequence[RunResult]) -> RunResult:
    """Combine per-shard chip results with exact semantics.

    Alias of :func:`repro.core.result.merge_run_results`, kept for the
    hardware layer's public surface: counts and every traffic counter
    merge by addition, per-PE records concatenate, ``cycles`` is the
    makespan of the slowest shard.
    """
    return merge_run_results(results)


def _make_pes(
    graph: CSRGraph,
    plans: Sequence[ExecutionPlan],
    config: FingersConfig | FlexMinerConfig,
    memcfg: MemoryConfig,
    shared_cache: SectoredLRUCache,
    dram: DRAMModel,
) -> list[BasePE]:
    if isinstance(config, FingersConfig):
        return [
            FingersPE(i, graph, plans, config, memcfg, shared_cache, dram)
            for i in range(config.num_pes)
        ]
    return [
        FlexMinerPE(i, graph, plans, config, memcfg, shared_cache, dram)
        for i in range(config.num_pes)
    ]


def run_chip(
    graph: CSRGraph,
    plans: Sequence[ExecutionPlan],
    config: FingersConfig | FlexMinerConfig,
    memcfg: MemoryConfig | None = None,
    *,
    roots: Iterable[int] | None = None,
    schedule: str = "dynamic",
    tracer=None,
) -> ChipResult:
    """Simulate one mining job on one chip.

    ``roots`` restricts the job to the given level-0 vertices (sampled
    simulation); defaults to every vertex.  The same ``roots`` on both
    designs guarantees identical functional work, so cycle ratios are
    apples-to-apples.

    ``schedule`` selects the global root scheduler:

    ``"dynamic"`` (default, the paper's design)
        the next unprocessed root goes to the first idle PE.  With
        degree-ordered vertex ids this also realizes the paper's
        future-work locality idea: nearby (similar-degree) roots run on
        different PEs at the same time and share shared-cache contents.
    ``"static_interleave"``
        PE ``i`` is pre-assigned roots ``i, i+P, i+2P, ...``.
    ``"static_block"``
        PE ``i`` is pre-assigned the ``i``-th contiguous block of roots.
        With power-law graphs the hub block serializes on one PE — the
        coarse-grained load-imbalance pathology of paper section 2.3,
        kept as an ablation (see ``repro.bench.ablations``).
    """
    memcfg = memcfg or MemoryConfig()
    shared_cache = SectoredLRUCache(memcfg.shared_cache_bytes, name="shared")
    dram = DRAMModel(memcfg)
    noc = NoCModel(memcfg.noc)
    pes = _make_pes(graph, plans, config, memcfg, shared_cache, dram)
    for pe in pes:
        pe.noc = noc
        if tracer is not None:
            pe.tracer = tracer

    all_roots = list(range(graph.num_vertices) if roots is None else roots)
    if schedule not in ("dynamic", "static_interleave", "static_block"):
        raise ValueError(f"unknown schedule policy {schedule!r}")

    finish = [0.0] * len(pes)
    heap: list[tuple[float, int]] = []

    if schedule == "dynamic":
        root_iter = iter(all_roots)
        for pe in pes:
            root = next(root_iter, None)
            if root is None:
                break
            pe.assign_root(int(root), 0.0)
            heapq.heappush(heap, (pe.now, pe.pe_id))
        while heap:
            _, pid = heapq.heappop(heap)
            pe = pes[pid]
            if pe.has_work():
                pe.step()
                heapq.heappush(heap, (pe.now, pid))
                continue
            root = next(root_iter, None)
            if root is None:
                finish[pid] = pe.now
                continue
            pe.assign_root(int(root), pe.now)
            heapq.heappush(heap, (pe.now, pid))
    else:
        assigned: list[list[int]] = [[] for _ in pes]
        if schedule == "static_interleave":
            for i, root in enumerate(all_roots):
                assigned[i % len(pes)].append(root)
        else:  # static_block
            per_pe = -(-len(all_roots) // len(pes)) if all_roots else 0
            for i in range(len(pes)):
                assigned[i] = all_roots[i * per_pe : (i + 1) * per_pe]
        queues = [iter(a) for a in assigned]
        for pe, q in zip(pes, queues):
            root = next(q, None)
            if root is None:
                continue
            pe.assign_root(int(root), 0.0)
            heapq.heappush(heap, (pe.now, pe.pe_id))
        while heap:
            _, pid = heapq.heappop(heap)
            pe = pes[pid]
            if pe.has_work():
                pe.step()
                heapq.heappush(heap, (pe.now, pid))
                continue
            root = next(queues[pid], None)
            if root is None:
                finish[pid] = pe.now
                continue
            pe.assign_root(int(root), pe.now)
            heapq.heappush(heap, (pe.now, pid))

    cycles = max(finish) if finish else 0.0
    counts = [0] * len(plans)
    for pe in pes:
        for i, c in enumerate(pe.counts):
            counts[i] += c
    stats = [pe.stats for pe in pes]
    is_fingers = isinstance(config, FingersConfig)
    num_ius = config.num_ius if is_fingers else 1
    group = pes[0].group_size if is_fingers and pes else 1
    return RunResult(
        backend="fingers" if is_fingers else "flexminer",
        design=config.design_name,
        cycles=cycles,
        counts=tuple(counts),
        units=tuple(stats),
        unit_finish_times=tuple(finish),
        sections={
            "shared_cache": shared_cache.stats,
            "dram": dram.stats,
            "noc": noc.stats,
        },
        scalars={
            "num_pes": len(pes),
            "num_ius": num_ius,
            "task_group_size": group,
        },
    )
