"""Multi-PE chip: dynamic root scheduling over a shared memory system.

The global scheduler hands search-tree roots to idle PEs (the
coarse-grained, tree-level parallelism both designs share, section 3.1).
PEs advance in time order, one task group per event, so their accesses to
the shared cache and DRAM interleave approximately as they would on the
real chip.  The chip makespan — the finish time of the last PE — is the
headline "cycles" number; load imbalance from power-law roots shows up as
the gap between mean PE busy time and makespan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.graph.csr import CSRGraph
from repro.hw.cache import CacheStats, SectoredLRUCache, merge_cache_stats
from repro.hw.config import FingersConfig, FlexMinerConfig, MemoryConfig
from repro.hw.flexminer import FlexMinerPE
from repro.hw.memory import DRAMModel, DRAMStats, merge_dram_stats
from repro.hw.noc import NoCModel, NoCStats, merge_noc_stats
from repro.hw.pe import BasePE, FingersPE
from repro.hw.stats import PEStats, merge_pe_stats
from repro.pattern.plan import ExecutionPlan

__all__ = ["ChipResult", "run_chip", "merge_chip_results"]


@dataclass(frozen=True)
class ChipResult:
    """Everything a chip simulation produced."""

    design: str
    cycles: float
    counts: tuple[int, ...]
    pe_stats: tuple[PEStats, ...]
    combined: PEStats
    shared_cache: CacheStats
    dram: DRAMStats
    noc: NoCStats
    num_pes: int
    num_ius: int
    task_group_size: int
    pe_finish_times: tuple[float, ...]
    #: How many disjoint root shards (cold chip instances) this result
    #: aggregates.  1 for a plain single-chip run; under the sharded
    #: model (``jobs=`` in :func:`repro.hw.api.simulate`),
    #: ``len(pe_stats) == num_pes * num_shards`` and ``cycles`` is the
    #: makespan of the slowest shard.  See docs/PARALLELISM.md.
    num_shards: int = 1

    @property
    def count(self) -> int:
        """Total embeddings over all patterns."""
        return sum(self.counts)

    @property
    def load_imbalance(self) -> float:
        """Makespan over mean PE busy time (1.0 = perfectly balanced)."""
        busy = [s.busy_cycles for s in self.pe_stats if s.busy_cycles > 0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return self.cycles / mean if mean > 0 else 1.0


def merge_chip_results(results: Sequence[ChipResult]) -> ChipResult:
    """Combine per-shard chip results with exact semantics.

    Each input must come from the *same* design configuration run over a
    disjoint root shard on a cold chip.  Counts and every traffic/stat
    counter merge by addition; per-PE records are concatenated (PE ``i``
    of shard ``s`` is a distinct physical PE in the multi-chip reading);
    ``cycles`` is the makespan of the slowest shard.  Merging is
    associative, order-normalized by the caller passing shards in root
    order, and introduces no floating-point re-association: every output
    float is either a sum or a max of input floats.
    """
    if not results:
        raise ValueError("cannot merge zero chip results")
    first = results[0]
    for r in results[1:]:
        if (
            r.design != first.design
            or r.num_pes != first.num_pes
            or r.num_ius != first.num_ius
            or r.task_group_size != first.task_group_size
            or len(r.counts) != len(first.counts)
        ):
            raise ValueError("refusing to merge results of different designs")
    if len(results) == 1:
        return first
    counts = [0] * len(first.counts)
    for r in results:
        for i, c in enumerate(r.counts):
            counts[i] += c
    all_pe_stats = [s for r in results for s in r.pe_stats]
    return ChipResult(
        design=first.design,
        cycles=max(r.cycles for r in results),
        counts=tuple(counts),
        pe_stats=tuple(all_pe_stats),
        combined=merge_pe_stats(all_pe_stats),
        shared_cache=merge_cache_stats([r.shared_cache for r in results]),
        dram=merge_dram_stats([r.dram for r in results]),
        noc=merge_noc_stats([r.noc for r in results]),
        num_pes=first.num_pes,
        num_ius=first.num_ius,
        task_group_size=first.task_group_size,
        pe_finish_times=tuple(
            t for r in results for t in r.pe_finish_times
        ),
        num_shards=sum(r.num_shards for r in results),
    )


def _make_pes(
    graph: CSRGraph,
    plans: Sequence[ExecutionPlan],
    config: FingersConfig | FlexMinerConfig,
    memcfg: MemoryConfig,
    shared_cache: SectoredLRUCache,
    dram: DRAMModel,
) -> list[BasePE]:
    if isinstance(config, FingersConfig):
        return [
            FingersPE(i, graph, plans, config, memcfg, shared_cache, dram)
            for i in range(config.num_pes)
        ]
    return [
        FlexMinerPE(i, graph, plans, config, memcfg, shared_cache, dram)
        for i in range(config.num_pes)
    ]


def run_chip(
    graph: CSRGraph,
    plans: Sequence[ExecutionPlan],
    config: FingersConfig | FlexMinerConfig,
    memcfg: MemoryConfig | None = None,
    *,
    roots: Iterable[int] | None = None,
    schedule: str = "dynamic",
    tracer=None,
) -> ChipResult:
    """Simulate one mining job on one chip.

    ``roots`` restricts the job to the given level-0 vertices (sampled
    simulation); defaults to every vertex.  The same ``roots`` on both
    designs guarantees identical functional work, so cycle ratios are
    apples-to-apples.

    ``schedule`` selects the global root scheduler:

    ``"dynamic"`` (default, the paper's design)
        the next unprocessed root goes to the first idle PE.  With
        degree-ordered vertex ids this also realizes the paper's
        future-work locality idea: nearby (similar-degree) roots run on
        different PEs at the same time and share shared-cache contents.
    ``"static_interleave"``
        PE ``i`` is pre-assigned roots ``i, i+P, i+2P, ...``.
    ``"static_block"``
        PE ``i`` is pre-assigned the ``i``-th contiguous block of roots.
        With power-law graphs the hub block serializes on one PE — the
        coarse-grained load-imbalance pathology of paper section 2.3,
        kept as an ablation (see ``repro.bench.ablations``).
    """
    memcfg = memcfg or MemoryConfig()
    shared_cache = SectoredLRUCache(memcfg.shared_cache_bytes, name="shared")
    dram = DRAMModel(memcfg)
    noc = NoCModel(memcfg.noc)
    pes = _make_pes(graph, plans, config, memcfg, shared_cache, dram)
    for pe in pes:
        pe.noc = noc
        if tracer is not None:
            pe.tracer = tracer

    all_roots = list(range(graph.num_vertices) if roots is None else roots)
    if schedule not in ("dynamic", "static_interleave", "static_block"):
        raise ValueError(f"unknown schedule policy {schedule!r}")

    finish = [0.0] * len(pes)
    heap: list[tuple[float, int]] = []

    if schedule == "dynamic":
        root_iter = iter(all_roots)
        for pe in pes:
            root = next(root_iter, None)
            if root is None:
                break
            pe.assign_root(int(root), 0.0)
            heapq.heappush(heap, (pe.now, pe.pe_id))
        while heap:
            _, pid = heapq.heappop(heap)
            pe = pes[pid]
            if pe.has_work():
                pe.step()
                heapq.heappush(heap, (pe.now, pid))
                continue
            root = next(root_iter, None)
            if root is None:
                finish[pid] = pe.now
                continue
            pe.assign_root(int(root), pe.now)
            heapq.heappush(heap, (pe.now, pid))
    else:
        assigned: list[list[int]] = [[] for _ in pes]
        if schedule == "static_interleave":
            for i, root in enumerate(all_roots):
                assigned[i % len(pes)].append(root)
        else:  # static_block
            per_pe = -(-len(all_roots) // len(pes)) if all_roots else 0
            for i in range(len(pes)):
                assigned[i] = all_roots[i * per_pe : (i + 1) * per_pe]
        queues = [iter(a) for a in assigned]
        for pe, q in zip(pes, queues):
            root = next(q, None)
            if root is None:
                continue
            pe.assign_root(int(root), 0.0)
            heapq.heappush(heap, (pe.now, pe.pe_id))
        while heap:
            _, pid = heapq.heappop(heap)
            pe = pes[pid]
            if pe.has_work():
                pe.step()
                heapq.heappush(heap, (pe.now, pid))
                continue
            root = next(queues[pid], None)
            if root is None:
                finish[pid] = pe.now
                continue
            pe.assign_root(int(root), pe.now)
            heapq.heappush(heap, (pe.now, pid))

    cycles = max(finish) if finish else 0.0
    counts = [0] * len(plans)
    for pe in pes:
        for i, c in enumerate(pe.counts):
            counts[i] += c
    stats = [pe.stats for pe in pes]
    num_ius = config.num_ius if isinstance(config, FingersConfig) else 1
    group = (
        pes[0].group_size
        if isinstance(config, FingersConfig) and pes
        else 1
    )
    return ChipResult(
        design=config.design_name,
        cycles=cycles,
        counts=tuple(counts),
        pe_stats=tuple(stats),
        combined=merge_pe_stats(stats),
        shared_cache=shared_cache.stats,
        dram=dram.stats,
        noc=noc.stats,
        num_pes=len(pes),
        num_ius=num_ius,
        task_group_size=group,
        pe_finish_times=tuple(finish),
    )
