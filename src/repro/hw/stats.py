"""Simulation statistics: the quantities the paper's evaluation reports.

* ``cycles`` per PE and chip makespan (Figures 9-12);
* IU *active rate* — total IU busy cycles over ``num_ius x PE cycles``
  (Table 3; the paper's worked example: 2 of 4 IUs busy for 10 of 20
  cycles = 25 %);
* IU *balance rate* — per compute load, the busy sum over
  ``duration x subset size``, averaged weighted by load duration
  (Table 3's second row);
* shared-cache miss rates (Figure 13) via
  :class:`repro.hw.cache.CacheStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PEStats", "merge_pe_stats"]


@dataclass
class PEStats:
    """Counters accumulated by one processing element."""

    tasks: int = 0
    task_groups: int = 0
    busy_cycles: float = 0.0
    stall_cycles: float = 0.0
    compute_cycles: float = 0.0
    overhead_cycles: float = 0.0
    # IU utilization (FINGERS only; FlexMiner has a single comparator).
    iu_busy_cycles: float = 0.0
    num_work_items: int = 0
    # Balance-rate accumulators: sum of per-load busy, and of
    # duration x subset-size, weighted by construction.
    balance_busy_sum: float = 0.0
    balance_capacity_sum: float = 0.0
    # Memory behaviour.
    neighbor_fetches: int = 0
    private_spills: int = 0
    embeddings_found: int = 0

    def record_op_balance(self, iu_busy: tuple[int, ...]) -> None:
        """Accumulate one compute load's balance contribution."""
        if not iu_busy:
            return
        duration = max(iu_busy)
        if duration == 0:
            return
        self.balance_busy_sum += sum(iu_busy)
        self.balance_capacity_sum += duration * len(iu_busy)

    def active_rate(self, num_ius: int) -> float:
        """Fraction of IU-cycles carrying work over the PE's busy window."""
        total = self.busy_cycles * num_ius
        return self.iu_busy_cycles / total if total > 0 else 0.0

    @property
    def balance_rate(self) -> float:
        if self.balance_capacity_sum == 0:
            return 1.0
        return self.balance_busy_sum / self.balance_capacity_sum

    @property
    def stall_fraction(self) -> float:
        return (
            self.stall_cycles / self.busy_cycles if self.busy_cycles > 0 else 0.0
        )


def merge_pe_stats(stats: list[PEStats]) -> PEStats:
    """Sum counters across PEs (for chip-level reporting)."""
    from repro.core.merge import merge_stats

    return merge_stats(stats, cls=PEStats)
