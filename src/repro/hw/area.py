"""Area, power, and frequency model (paper section 6.1, Table 2).

The RTL synthesis of the paper is replaced by an analytical model seeded
with its published numbers:

* one IU: 0.115 mm2 / 24 ≈ 0.0048 mm2 (28 nm) — "less than 0.01 mm2";
* one task divider: 0.069 mm2 / 12 ≈ 0.00575 mm2;
* stream buffers: 0.214 mm2 for two 8 kB buffers (SRAM-area ∝ capacity);
* private cache: 0.118 mm2 for 32 kB;
* "Others" (control, NoC interface, fetchers): 0.418 mm2, inferred by the
  paper from FlexMiner and held constant;
* FlexMiner PE: 0.18 mm2 at 15 nm; the paper scales its FINGERS PE to
  0.26 mm2 at 15 nm (factor 0.26 / 0.934 from 28 nm).

These constants reproduce every area-derived decision in the paper: the
Table 2 breakdown, the "< 2x FlexMiner PE" claim, the 20-vs-40-PE
iso-area chips of Figure 10, and the ``#IUs x s_l = 384`` iso-area sweep
of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import FingersConfig, FlexMinerConfig

__all__ = [
    "AreaBreakdown",
    "fingers_pe_area",
    "flexminer_pe_area_15nm",
    "scale_28_to_15",
    "iso_area_pe_count",
    "iso_area_segment_length",
    "fingers_pe_power_mw",
]

# Seed constants, mm^2 at 28 nm (paper Table 2).
IU_AREA = 0.115 / 24
DIVIDER_AREA = 0.069 / 12
STREAM_BUFFER_AREA_PER_KB = 0.214 / 16.0  # two 8 kB buffers
PRIVATE_CACHE_AREA_PER_KB = 0.118 / 32.0
OTHERS_AREA = 0.418

#: Paper: 0.934 mm2 at 28 nm scales to 0.26 mm2 at 15 nm.
_SCALE_28_TO_15 = 0.26 / 0.934
#: FlexMiner PE area at 15 nm (paper section 2.3).
FLEXMINER_PE_AREA_15NM = 0.18

# Power (paper section 6.1), per default PE.
_COMPUTE_POWER_MW = 98.5
_CACHE_POWER_MW = 85.6

#: The Figure 12 iso-area constraint: #IUs x long-segment-length constant.
ISO_AREA_IU_SEGMENT_PRODUCT = 24 * 16


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component PE area in mm2 (28 nm), Table 2 layout."""

    intersect_units: float
    task_dividers: float
    stream_buffers: float
    private_cache: float
    others: float

    @property
    def total(self) -> float:
        return (
            self.intersect_units
            + self.task_dividers
            + self.stream_buffers
            + self.private_cache
            + self.others
        )

    def percentages(self) -> dict[str, float]:
        total = self.total
        return {
            "intersect_units": 100 * self.intersect_units / total,
            "task_dividers": 100 * self.task_dividers / total,
            "stream_buffers": 100 * self.stream_buffers / total,
            "private_cache": 100 * self.private_cache / total,
            "others": 100 * self.others / total,
        }


def fingers_pe_area(
    config: FingersConfig | None = None,
    *,
    paper_capacities: bool = True,
) -> AreaBreakdown:
    """Area of one FINGERS PE under ``config`` (28 nm).

    With ``paper_capacities`` (default) the SRAM components are sized at
    the paper's full-scale capacities (32 kB private, two 8 kB buffers)
    regardless of the simulation's scaled-down byte budgets, since the
    area question is about the real chip.  An IU's datapath area scales
    with its segment length (stream registers + comparator width), which
    is what makes the Figure 12 sweep iso-area.
    """
    config = config or FingersConfig()
    iu_area_each = IU_AREA * (config.long_segment_len / 16.0)
    if paper_capacities:
        buffer_kb = 16.0
        private_kb = 32.0
    else:
        buffer_kb = config.num_stream_buffers * config.stream_buffer_bytes / 1024
        private_kb = config.private_cache_bytes / 1024
    return AreaBreakdown(
        intersect_units=config.num_ius * iu_area_each,
        task_dividers=config.num_dividers * DIVIDER_AREA,
        stream_buffers=buffer_kb * STREAM_BUFFER_AREA_PER_KB,
        private_cache=private_kb * PRIVATE_CACHE_AREA_PER_KB,
        others=OTHERS_AREA,
    )


def scale_28_to_15(area_mm2_28nm: float) -> float:
    """Technology scaling used by the paper for the iso-area argument."""
    return area_mm2_28nm * _SCALE_28_TO_15


def flexminer_pe_area_15nm() -> float:
    """FlexMiner PE area at 15 nm (from its paper, quoted in section 2.3)."""
    return FLEXMINER_PE_AREA_15NM


def iso_area_pe_count(
    fingers: FingersConfig | None = None, flexminer_pes: int = 40
) -> int:
    """FINGERS PE count matching a FlexMiner chip's PE area budget.

    The paper compares 20 FINGERS PEs against 40 FlexMiner PEs because a
    FINGERS PE is just under twice the FlexMiner PE's area.
    """
    budget = flexminer_pes * flexminer_pe_area_15nm()
    pe_area = scale_28_to_15(fingers_pe_area(fingers).total)
    return max(1, int(budget // pe_area))


def iso_area_segment_length(num_ius: int) -> int:
    """Figure 12's iso-area rule: ``#IUs x s_l = 24 x 16``."""
    if num_ius < 1:
        raise ValueError("num_ius must be >= 1")
    return max(1, ISO_AREA_IU_SEGMENT_PRODUCT // num_ius)


def fingers_pe_power_mw(config: FingersConfig | None = None) -> dict[str, float]:
    """Compute-logic and cache power of one PE, scaled from the defaults."""
    config = config or FingersConfig()
    default = FingersConfig()
    compute_scale = (
        config.num_ius * config.long_segment_len
    ) / (default.num_ius * default.long_segment_len)
    return {
        "compute_mw": _COMPUTE_POWER_MW * compute_scale,
        "caches_mw": _CACHE_POWER_MW,
        "total_mw": _COMPUTE_POWER_MW * compute_scale + _CACHE_POWER_MW,
    }
