"""Task-divider timing (paper section 4.2, Figure 7).

A task divider streams the short set's head list — one head per cycle —
through a binary tree of up to 15 long heads, filling the load table, then
emits the balanced task table.  One divider matches head lists of at most
15 long / 24 short heads; longer lists are split into chunks matched on
multiple dividers or sequentially.  The dividers of a PE work in parallel
on the task's different set operations (and on chunks), coordinated to
similar progress, so the phase latency is the balanced maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

__all__ = ["DividerWork", "divider_phase_cycles"]

#: Pipeline cycles to load a chunk's long heads into the binary tree.
_CHUNK_SETUP_CYCLES = 2


@dataclass(frozen=True)
class DividerWork:
    """Head-list matching work for one set operation."""

    num_long_heads: int
    num_short_heads: int
    long_head_capacity: int
    short_head_capacity: int

    @property
    def num_chunks(self) -> int:
        """Chunks needed when either head list overflows one divider."""
        long_chunks = max(1, ceil(self.num_long_heads / self.long_head_capacity))
        short_chunks = max(1, ceil(self.num_short_heads / self.short_head_capacity))
        # Every (long chunk, short chunk) pair may contain overlapping
        # ranges; sorted inputs mean only adjacent pairs can overlap, so
        # the chunk count grows additively, not multiplicatively.
        return long_chunks + short_chunks - 1

    @property
    def total_cycles(self) -> int:
        """Serial cycles if a single divider did all chunks."""
        per_chunk_heads = max(
            1, ceil(self.num_short_heads / self.num_chunks)
        )
        return self.num_chunks * (_CHUNK_SETUP_CYCLES + per_chunk_heads)


def divider_phase_cycles(works: list[DividerWork], num_dividers: int) -> int:
    """Balanced completion time of all matching work on ``num_dividers``.

    The PE's dividers pull chunks and are load-balanced by monitoring the
    last scheduled segment index (paper section 4.2), so the phase time is
    the ideal balanced share, floored by the largest single chunk.
    """
    if num_dividers < 1:
        raise ValueError("num_dividers must be >= 1")
    if not works:
        return 0
    total = sum(w.total_cycles for w in works)
    largest_chunk = max(
        _CHUNK_SETUP_CYCLES + max(1, ceil(w.num_short_heads / w.num_chunks))
        for w in works
    )
    return max(largest_chunk, ceil(total / num_dividers))
