"""Sectored LRU caches over whole neighbor lists.

A line-accurate set-associative simulation at these graph scales would be
both slow and pointless: the unit of access in pattern-aware mining is an
entire sorted neighbor list, streamed once per use (paper Figure 3).  The
shared cache is therefore modelled as a fully-associative LRU over
variable-size *sectors* (one per vertex neighbor list), sized in bytes —
the standard approximation for streaming accelerators.  Miss-rate curves
(paper Figure 13) are reported as misses / accesses, matching the paper's
definition.

The same structure models the per-PE private caches (candidate sets for
FINGERS, staged neighbor lists for FlexMiner).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "SectoredLRUCache", "merge_cache_stats"]


@dataclass
class CacheStats:
    """Hit/miss counters plus eviction traffic."""

    accesses: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_inserted: int = 0
    bytes_evicted: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def merge_cache_stats(stats: "list[CacheStats] | tuple[CacheStats, ...]") -> CacheStats:
    """Sum counters across cache instances (exact: every counter is a
    plain event count, so disjoint simulations merge by addition)."""
    from repro.core.merge import merge_stats

    return merge_stats(stats, cls=CacheStats)


class SectoredLRUCache:
    """Fully-associative LRU cache of variable-size entries.

    Keys are arbitrary hashables (vertex ids for neighbor lists,
    ``(path, state)`` tuples for candidate sets); each entry carries its
    byte size.  An entry larger than the whole capacity is never resident
    (every access to it misses), modelling huge hub neighbor lists that
    can only be streamed.
    """

    def __init__(self, capacity_bytes: int, *, name: str = "cache") -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._entries: OrderedDict[object, int] = OrderedDict()
        self._used = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def access(self, key: object, num_bytes: int) -> bool:
        """Look up ``key``; on miss, insert it.  Returns ``True`` on hit."""
        self.stats.accesses += 1
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        self.stats.misses += 1
        self._insert(key, num_bytes)
        return False

    def contains(self, key: object) -> bool:
        """Non-mutating membership probe (no stats, no LRU update)."""
        return key in self._entries

    def touch(self, key: object) -> None:
        """Refresh LRU position without counting an access."""
        if key in self._entries:
            self._entries.move_to_end(key)

    def invalidate(self, key: object) -> None:
        """Drop an entry if present."""
        size = self._entries.pop(key, None)
        if size is not None:
            self._used -= size

    def _insert(self, key: object, num_bytes: int) -> None:
        if num_bytes > self.capacity_bytes:
            # Too large to be resident: streamed, never cached.
            return
        while self._used + num_bytes > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted
            self.stats.evictions += 1
            self.stats.bytes_evicted += evicted
        self._entries[key] = num_bytes
        self._used += num_bytes
        self.stats.insertions += 1
        self.stats.bytes_inserted += num_bytes

    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (stats are kept)."""
        self._entries.clear()
        self._used = 0

    def reset(self) -> None:
        """Drop all entries and statistics."""
        self.clear()
        self.stats = CacheStats()
