"""Off-chip DRAM model: fixed latency plus FCFS bandwidth occupancy.

A transfer of ``b`` bytes issued at time ``t`` completes at
``max(t, channel_free) + latency + b / bytes_per_cycle``; the channel then
stays busy until that service finishes.  This captures the two effects the
evaluation depends on: long memory stalls for dependent DFS fetches
(paper section 2.3, inefficiency #1) and bandwidth saturation when many
PEs miss concurrently (section 6.3, Yo/Pa discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.config import MemoryConfig

__all__ = ["DRAMModel", "DRAMStats", "merge_dram_stats"]


@dataclass
class DRAMStats:
    """Aggregate DRAM traffic counters."""

    requests: int = 0
    bytes_transferred: int = 0
    busy_cycles: float = 0.0
    total_queue_delay: float = 0.0

    @property
    def avg_queue_delay(self) -> float:
        return self.total_queue_delay / self.requests if self.requests else 0.0


def merge_dram_stats(stats: "list[DRAMStats] | tuple[DRAMStats, ...]") -> DRAMStats:
    """Sum traffic counters across independent channels/simulations."""
    from repro.core.merge import merge_stats

    return merge_stats(stats, cls=DRAMStats)


class DRAMModel:
    """Single aggregated channel with latency + occupancy accounting."""

    def __init__(self, config: MemoryConfig) -> None:
        self._latency = config.dram_latency
        self._bytes_per_cycle = config.dram_bytes_per_cycle
        self._free_at = 0.0
        self.stats = DRAMStats()

    def access(self, now: float, num_bytes: int) -> float:
        """Issue a transfer at ``now``; return its completion time."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        start = max(now, self._free_at)
        service = num_bytes / self._bytes_per_cycle
        done = start + self._latency + service
        self._free_at = start + service
        self.stats.requests += 1
        self.stats.bytes_transferred += num_bytes
        self.stats.busy_cycles += service
        self.stats.total_queue_delay += start - now
        return done

    @property
    def free_at(self) -> float:
        """Time at which the channel becomes idle."""
        return self._free_at

    def reset(self) -> None:
        """Clear channel state and statistics."""
        self._free_at = 0.0
        self.stats = DRAMStats()
