"""Cycle-approximate hardware timing models of FINGERS and FlexMiner.

The models are *functionally exact* (they execute the same plan IR as the
reference engine and must produce identical counts — enforced by tests)
and *temporally approximate*: instead of simulating every wire, they
charge cycle costs according to the microarchitectural contracts stated
in the paper (see DESIGN.md section 5) and model the memory system with
sectored LRU caches and a bandwidth/latency DRAM model.

Layout
------
``config``     configuration dataclasses for both designs
``memory``     DRAM model
``cache``      shared / private sectored caches, stream buffers
``iu``         intersect-unit pool: work-item scheduling and costs
``divider``    task-divider timing (head lists, chunking)
``stats``      counters: cycles, active rate, balance rate, miss rates
``pe``         the FINGERS processing element (pseudo-DFS, task groups)
``flexminer``  the baseline processing element (strict DFS, serial ops)
``chip``       multi-PE chip with dynamic root scheduling
``area``       area/power model (paper Table 2) and iso-area helpers
``api``        `simulate` / `speedup_grid` front door
"""

from repro.hw.config import FingersConfig, FlexMinerConfig, MemoryConfig
from repro.hw.api import simulate, speedup_grid, SimResult

__all__ = [
    "FingersConfig",
    "FlexMinerConfig",
    "MemoryConfig",
    "simulate",
    "speedup_grid",
    "SimResult",
]
