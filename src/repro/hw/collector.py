"""Event-level result collector (paper section 4.3, Figure 8).

The timing models account for the collector's serial occupancy inside
:mod:`repro.hw.iu`; this module models its *datapath* event by event so
the aggregation protocol itself can be validated: the collector receives
``(segment id, bitvector)`` results from the IUs in round-robin order,
OR-combines results for the same segment, and emits a finished segment
as an ordered id list the moment a *different* segment arrives (sorted
inputs guarantee each segment's results arrive adjacently per op).

Tests drive this against :func:`repro.setops.bitvector.segmented_set_op`
and the plain merges, closing the loop on the paper's claim that one
intersect datapath plus OR-aggregation implements all three set
operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SegmentResult", "ResultCollector"]


@dataclass(frozen=True)
class SegmentResult:
    """One IU's output: the segment it processed plus the hit bitvector.

    ``keep_zeros`` encodes the operation family: for intersection the
    collector emits elements whose bit is 1; for (anti-)subtraction the
    elements whose bit is 0 (the paper's complement trick).
    """

    segment_id: int
    values: tuple[int, ...]
    bits: tuple[bool, ...]
    keep_zeros: bool = False

    def __post_init__(self) -> None:
        if len(self.values) > len(self.bits):
            raise ValueError("bitvector narrower than the segment")


@dataclass
class ResultCollector:
    """OR-aggregating, order-preserving collector."""

    emitted: list[int] = field(default_factory=list)
    _current_id: int | None = None
    _current_values: tuple[int, ...] | None = None
    _current_bits: list[bool] | None = None
    _current_keep_zeros: bool = False
    results_received: int = 0
    segments_emitted: int = 0

    def receive(self, result: SegmentResult) -> None:
        """Accept the next round-robin result from an IU."""
        self.results_received += 1
        if self._current_id == result.segment_id:
            assert self._current_bits is not None
            if len(result.bits) != len(self._current_bits):
                raise ValueError("same-segment bitvector widths differ")
            for i, bit in enumerate(result.bits):
                self._current_bits[i] |= bit
            return
        self._flush()
        self._current_id = result.segment_id
        self._current_values = result.values
        self._current_bits = list(result.bits)
        self._current_keep_zeros = result.keep_zeros

    def finish(self) -> list[int]:
        """Flush the pending segment and return the full ordered result."""
        self._flush()
        return self.emitted

    def _flush(self) -> None:
        if self._current_id is None:
            return
        assert self._current_values is not None
        assert self._current_bits is not None
        for i, value in enumerate(self._current_values):
            bit = self._current_bits[i]
            if bit != self._current_keep_zeros:
                self.emitted.append(int(value))
        self.segments_emitted += 1
        self._current_id = None
        self._current_values = None
        self._current_bits = None
