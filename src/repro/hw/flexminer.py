"""The FlexMiner baseline PE (paper sections 2.2-2.3).

FlexMiner exploits only coarse-grained (tree-level) parallelism: each PE
executes a strict DFS on its own search tree with a single merge-based
comparator.  The model reproduces the paper's three inefficiencies:

1. **stalls** — the dependent fetch of ``N(u_i)`` blocks the PE for the
   full shared-cache/DRAM latency (no other task to switch to);
2. **serial set operations** — the level's schedule runs one op at a
   time, each costing ``|A| + |B|`` comparator cycles;
3. **no intra-tree parallelism** — high-degree root trees serialize on
   one PE (the load-imbalance bottleneck of section 2.3).

Neighbor lists are staged through the per-PE private cache (the paper's
c-map-equivalent storage): lists that fit are reused across the level's
serial ops; lists larger than the private capacity are re-fetched from
the shared cache for every op — exactly the re-fetch waste that FINGERS'
set-level streaming avoids (paper Figure 3).
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.csr import CSRGraph
from repro.hw.cache import SectoredLRUCache
from repro.hw.config import FlexMinerConfig, MemoryConfig
from repro.hw.memory import DRAMModel
from repro.hw.pe import BasePE, Task

__all__ = ["FlexMinerPE"]


class FlexMinerPE(BasePE):
    """Strict-DFS PE with one comparator and stall-on-miss fetches."""

    def __init__(
        self,
        pe_id: int,
        graph: CSRGraph,
        plans: Sequence,
        config: FlexMinerConfig,
        memcfg: MemoryConfig,
        shared_cache: SectoredLRUCache,
        dram: DRAMModel,
    ) -> None:
        super().__init__(pe_id, graph, plans, memcfg, shared_cache, dram)
        self.config = config
        self.private_cache = SectoredLRUCache(
            config.private_cache_bytes, name=f"pe{pe_id}-private"
        )

    def step(self) -> float:
        # Strict DFS: groups always hold one task (see _spawn_children
        # call below with group_size=1).
        group = self._stack.pop()
        self.stats.task_groups += 1
        t0 = self.now
        stall_total = 0.0

        for task in group:
            # Dependent fetch: the PE stalls until every operand list of
            # this level is resident (inefficiency #1).
            fetch_done = self.now
            staged: dict[int, bool] = {}
            for v in self._task_operand_vertices(task):
                size = self._list_bytes(v)
                if self.private_cache.access(v, size):
                    fetch_done = max(
                        fetch_done, self.now + self.memcfg.private_cache_hit_latency
                    )
                else:
                    fetch_done = max(fetch_done, self._fetch_shared(v, self.now))
                staged[v] = size <= self.config.private_cache_bytes
            stall = max(0.0, fetch_done - self.now)
            self.stats.stall_cycles += stall
            stall_total += stall
            self.now = fetch_done

            executed = self._execute_ops(task)
            compute = 0.0
            refetch_penalty = 0.0
            first_use: set[int] = set()
            for plan_idx in self._active_plans(task):
                plan = self.plans[plan_idx]
                for op in plan.levels[task.level].ops:
                    v = task.embedding[op.operand_level]
                    if v in first_use and not staged.get(v, True):
                        # Oversized list: each additional serial op streams
                        # it from the shared cache again.
                        refetch_penalty += self._fetch_shared(v, self.now) - self.now
                    first_use.add(v)
            for kind, source, operand in executed:
                src_len = source.size if source is not None else 0
                compute += src_len + operand.size
            task_cycles = compute + refetch_penalty + self.config.task_overhead_cycles
            self.now += task_cycles
            self.stats.tasks += 1
            self.stats.compute_cycles += compute
            self.stats.overhead_cycles += self.config.task_overhead_cycles
            self._spawn_children(task, group_size=1)

        self.stats.busy_cycles += self.now - t0
        if self.tracer is not None:
            if stall_total > 0:
                self.tracer.record(self.pe_id, t0, t0 + stall_total, "stall")
            self.tracer.record(self.pe_id, t0 + stall_total, self.now, "group",
                               "1 task")
        return self.now
