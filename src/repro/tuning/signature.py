"""Cheap, deterministic graph signatures for tuned-choice keying.

A tuned choice must outlive the process that measured it, so the store
key cannot hash object identity — and it should *not* hash full graph
contents either: two graphs with the same shape statistics behave the
same under every candidate plan the tuner considers, and keying on the
exact edge set would re-trial after any cosmetic regeneration.  The
signature is the middle ground (docs/TUNING.md, "Graph signature"):

* exact scale — vertex and edge counts;
* the degree *shape* — all eleven degree deciles (p0, p10, ..., p100),
  which pins down skew far better than a mean;
* hub mass — the share of edge endpoints landing on the top-1%
  highest-degree vertices (matches
  :meth:`repro.pattern.ordering.OrderCostModel.from_graph`);
* bitmap fit — :meth:`repro.graph.csr.CSRGraph.adjacency_bitmap_bytes`,
  the number the segmented-kernel dispatch compares against its budget.

Every field is computed from the degree array with integer or
fixed-rounded arithmetic, so the signature is bit-stable across
processes and platforms.  ``graph_signature`` memoizes on the graph
instance (the ``_signature_cache`` slot): one computation per graph,
however many cells a sweep tunes on it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphSignature", "graph_signature"]


@dataclass(frozen=True)
class GraphSignature:
    """The tuning identity of a graph (see module docstring)."""

    num_vertices: int
    num_edges: int
    #: Degree percentiles 0, 10, ..., 100 (11 values), nearest-rank.
    degree_deciles: tuple[int, ...]
    #: Share of edge endpoints on the top-1% degree vertices, rounded
    #: to 6 decimals for cross-process stability.
    hub_mass: float
    #: Bytes the dense adjacency bitmap would occupy — what the
    #: segmented dispatch compares against ``segment_bitmap_bytes``.
    bitmap_fit_bytes: int

    def key(self) -> str:
        """Stable short digest for cache keys and reports."""
        text = (
            f"v={self.num_vertices};e={self.num_edges};"
            f"dec={','.join(map(str, self.degree_deciles))};"
            f"hub={self.hub_mass:.6f};bmp={self.bitmap_fit_bytes}"
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _compute(graph: CSRGraph) -> GraphSignature:
    n = graph.num_vertices
    degrees = graph.degrees()
    if n == 0 or degrees.size == 0:
        deciles = (0,) * 11
        hub_mass = 0.0
    else:
        ordered = np.sort(degrees)
        # Nearest-rank deciles: integer indexing keeps the values exact
        # ints, immune to interpolation-mode drift across numpy versions.
        idx = [min(ordered.size - 1, (q * (ordered.size - 1)) // 10)
               for q in range(11)]
        deciles = tuple(int(ordered[i]) for i in idx)
        total = int(ordered.sum())
        if total:
            num_hubs = max(1, n // 100)
            hub_mass = round(float(ordered[-num_hubs:].sum()) / total, 6)
        else:
            hub_mass = 0.0
    return GraphSignature(
        num_vertices=n,
        num_edges=graph.num_edges,
        degree_deciles=deciles,
        hub_mass=hub_mass,
        bitmap_fit_bytes=graph.adjacency_bitmap_bytes(),
    )


def graph_signature(graph: CSRGraph) -> GraphSignature:
    """The (memoized) tuning signature of ``graph``."""
    cached = graph._signature_cache
    if isinstance(cached, GraphSignature):
        return cached
    signature = _compute(graph)
    graph._signature_cache = signature
    return signature
