"""Input-aware auto-tuning: measured-trial plan & kernel-policy selection.

The plan compiler picks one vertex order per pattern and the kernel
dispatch one default policy per run — input-blind choices that G2Miner
and the AutoMine line of work show are worth integer factors when made
per (pattern, graph).  This package closes that loop (docs/TUNING.md):

:mod:`~repro.tuning.signature`
    A cheap, deterministic graph signature (counts, degree deciles, hub
    mass, bitmap fit) computed once per :class:`~repro.graph.csr.CSRGraph`.
:mod:`~repro.tuning.candidates`
    Top-N cost-model vertex orders × a small signature-gated
    :class:`~repro.setops.kernels.KernelPolicy` grid.
:mod:`~repro.tuning.tuner`
    Successive-halving measured trials on deterministic sampled roots,
    bit-identity (per-root sequences) enforced on every candidate.
:mod:`~repro.tuning.store`
    The persisted :class:`TunedChoice` per (pattern signature, graph
    signature, tuner version), riding the versioned disk cache.

Opt in with ``KernelPolicy(tuned=True)`` anywhere a policy goes —
``count_embeddings``, ``FunctionalConfig``, sweep specs — or drive the
tuner directly with ``python -m repro tune``.
"""

from repro.tuning.candidates import (
    TunerCandidate,
    generate_candidates,
    original_pattern,
    policy_grid,
)
from repro.tuning.signature import GraphSignature, graph_signature
from repro.tuning.store import (
    TUNER_VERSION,
    TunedChoice,
    choice_key,
    load_choice,
    save_choice,
    tuning_cache,
)
from repro.tuning.tuner import (
    TuningStats,
    reset_tuning_stats,
    resolve_run,
    tune_plan,
    tuning_stats,
)

__all__ = [
    "GraphSignature",
    "TUNER_VERSION",
    "TunedChoice",
    "TunerCandidate",
    "TuningStats",
    "choice_key",
    "generate_candidates",
    "graph_signature",
    "load_choice",
    "original_pattern",
    "policy_grid",
    "reset_tuning_stats",
    "resolve_run",
    "save_choice",
    "tune_plan",
    "tuning_cache",
    "tuning_stats",
]
