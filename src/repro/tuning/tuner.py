"""The measured-trial tuner: time candidates, verify, persist, resolve.

``KernelPolicy(tuned=True)`` is the opt-in; this module is what it
resolves through.  The flow per (plan, graph, base-policy) cell:

1. **Memo** — an in-process table keyed like the store, so a sweep
   tunes each cell at most once per process (and a sanitized double-run
   resolves identically both times).
2. **Store** — the persistent tuned-choice store (:mod:`.store`): one
   process pays the trial cost, the whole fleet reuses the decision
   with *zero* measured trials.
3. **Trials** — candidates (:mod:`.candidates`) race on deterministic
   stride-sampled root subsets under successive halving: every round
   doubles the sample and keeps the faster half, so losers are
   eliminated on cheap samples and only finalists pay for the big one.

Correctness is enforced *inside* the trials: each candidate's per-root
count sequence on the round's sample must equal the reference plan's —
the condition under which swapping the plan is invisible to callers
(totals, per-root pairs, sharded merges, root subsets).  A diverging
candidate is dropped, never an error: the cost model proposes,
measurement disposes.  The reference candidate itself can win, so tuned
execution is never functionally different from — and never selected to
be slower than — the untuned run.

Trials run with :func:`repro.sanitize.suspended` probes: they execute
only on a cold store, so under a sanitized double-run their kernel
events would diverge the cold trace from the warm one.  Trial *wall
time* is also why measured results should be produced against a warm
store (``repro tune`` first, then the sweep — ``make tune-smoke``
checks the zero-re-trial contract).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro import sanitize
from repro.graph.csr import CSRGraph
from repro.pattern.compiler import compile_plan
from repro.pattern.plan import ExecutionPlan
from repro.setops.kernels import DEFAULT_POLICY, KernelPolicy
from repro.tuning.candidates import (
    TunerCandidate,
    generate_candidates,
    original_pattern,
)
from repro.tuning.store import (
    TUNER_VERSION,
    TunedChoice,
    choice_key,
    load_choice,
    save_choice,
    tuning_cache,
)

__all__ = [
    "TuningStats",
    "resolve_run",
    "reset_tuning_stats",
    "tune_plan",
    "tuning_stats",
]

#: Target root-sample size of the deciding (final) trial round; earlier
#: rounds run on progressively smaller strided subsets.
FINAL_SAMPLE_TARGET = 160

#: Successive-halving rounds (each quadruples the sample stride of the
#: next; the last runs at the final target).
ROUNDS = 3


@dataclass
class TuningStats:
    """Process-wide tuner accounting (``repro tune``, ``make
    tune-smoke``, and the executor's extras read these)."""

    #: Measured candidate executions (including reference re-runs).
    trials: int = 0
    #: Cells decided by fresh trials in this process.
    tuned_cells: int = 0
    #: Cells resolved from the persistent store (zero trials).
    store_hits: int = 0
    #: Cells resolved from the in-process memo.
    memo_hits: int = 0
    #: Candidates dropped for diverging per-root sequences.
    rejected_candidates: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "trials": self.trials,
            "tuned_cells": self.tuned_cells,
            "store_hits": self.store_hits,
            "memo_hits": self.memo_hits,
            "rejected_candidates": self.rejected_candidates,
        }


_STATS = TuningStats()

#: In-process resolution memo: store key -> (choice, compiled plan).
#: Driver-only state — workers resolve from the disk store — and a
#: profiling-adjacent cache, never an input to counted results.
_MEMO: dict[str, tuple[TunedChoice, ExecutionPlan]] = {}


def tuning_stats() -> TuningStats:
    """Snapshot of the process-wide tuner counters."""
    return replace(_STATS)


def reset_tuning_stats() -> None:
    """Zero the tuner counters (tests and the smoke gate)."""
    global _STATS
    _STATS = TuningStats()


def _trial_samples(num_vertices: int) -> list[list[int]]:
    """The per-round root samples: deterministic stride subsets that
    grow toward :data:`FINAL_SAMPLE_TARGET`, deduplicated for tiny
    graphs where successive strides collapse to the same set."""
    samples: list[list[int]] = []
    final_stride = max(1, num_vertices // FINAL_SAMPLE_TARGET)
    for round_index in reversed(range(ROUNDS)):
        stride = final_stride * (4 ** round_index)
        sample = list(range(0, num_vertices, max(1, stride)))
        if not samples or sample != samples[-1]:
            samples.append(sample)
    return samples


def _compile_candidate(
    plan: ExecutionPlan, candidate: TunerCandidate
) -> ExecutionPlan:
    if candidate.order == tuple(plan.vertex_order):
        return plan
    return compile_plan(
        original_pattern(plan),
        order=candidate.order,
        vertex_induced=plan.vertex_induced,
    )


def _timed_counts(
    graph: CSRGraph,
    plan: ExecutionPlan,
    policy: KernelPolicy,
    roots: list[int],
) -> tuple[list[tuple[int, int]], float]:
    from repro.mining.engine import per_root_counts

    start = time.perf_counter()
    pairs = list(per_root_counts(graph, plan, roots=roots, kernels=policy))
    return pairs, time.perf_counter() - start


def _run_trials(
    graph: CSRGraph, plan: ExecutionPlan, base: KernelPolicy
) -> TunedChoice:
    candidates = generate_candidates(graph, plan, base)
    plans = [_compile_candidate(plan, c) for c in candidates]
    # Index 0 is the reference; it survives every cut.
    alive = list(range(len(candidates)))
    timings = {0: 0.0}
    sample: list[int] = []
    trials = 0
    with sanitize.suspended():
        for sample in _trial_samples(graph.num_vertices):
            reference_pairs, ref_seconds = _timed_counts(
                graph, plans[0], candidates[0].policy, sample
            )
            trials += 1
            timings = {0: ref_seconds}
            for index in alive:
                if index == 0:
                    continue
                pairs, seconds = _timed_counts(
                    graph, plans[index], candidates[index].policy, sample
                )
                trials += 1
                if pairs != reference_pairs:
                    # Attribution moved: this order re-roots embeddings.
                    _STATS.rejected_candidates += 1
                    continue
                timings[index] = seconds
            survivors = sorted(timings, key=lambda i: (timings[i], i))
            keep = max(2, (len(survivors) + 1) // 2)
            alive = sorted(survivors[:keep])
            if 0 not in alive:
                alive = sorted([0] + alive[:keep - 1])
            if len(alive) <= 1:
                break
    winner = min(
        (i for i in alive if i in timings), key=lambda i: (timings[i], i)
    )
    _STATS.trials += trials
    _STATS.tuned_cells += 1
    return TunedChoice(
        order=candidates[winner].order,
        policy=candidates[winner].policy,
        candidate_label=candidates[winner].label,
        trials=trials,
        sample_size=len(sample),
        reference_seconds=timings.get(0, 0.0),
        chosen_seconds=timings[winner],
        tuner_version=TUNER_VERSION,
    )


def tune_plan(
    graph: CSRGraph,
    plan: ExecutionPlan,
    policy: KernelPolicy | None = None,
    *,
    force: bool = False,
) -> TunedChoice:
    """Resolve (or, with ``force``, re-measure) the tuned choice for one
    (plan, graph, base-policy) cell.

    Resolution order is memo → store → trials (see module docstring);
    fresh trial outcomes are persisted before returning.  Single-level
    plans have nothing to tune and return a trivial reference choice.
    """
    base = replace(policy if policy is not None else DEFAULT_POLICY,
                   tuned=False)
    if plan.num_levels < 2:
        return TunedChoice(
            order=tuple(plan.vertex_order), policy=base,
            candidate_label="reference", trials=0, sample_size=0,
            reference_seconds=0.0, chosen_seconds=0.0,
        )
    key = choice_key(graph, plan, base)
    cache = tuning_cache()
    if not force:
        memo = _MEMO.get(key)
        if memo is not None:
            _STATS.memo_hits += 1
            return memo[0]
        stored = load_choice(cache, key)
        if stored is not None:
            _STATS.store_hits += 1
            _MEMO[key] = (stored, _choice_plan(plan, stored))
            return stored
    choice = _run_trials(graph, plan, base)
    save_choice(cache, key, choice)
    _MEMO[key] = (choice, _choice_plan(plan, choice))
    return choice


def _choice_plan(plan: ExecutionPlan, choice: TunedChoice) -> ExecutionPlan:
    if choice.order == tuple(plan.vertex_order):
        return plan
    return compile_plan(
        original_pattern(plan),
        order=choice.order,
        vertex_induced=plan.vertex_induced,
    )


def resolve_run(
    graph: CSRGraph,
    plan: ExecutionPlan,
    policy: KernelPolicy,
) -> tuple[ExecutionPlan, KernelPolicy]:
    """What a ``tuned=True`` counting run actually executes.

    Returns the tuned plan and the concrete policy — both bit-compatible
    with the inputs by the trial contract.  The mining engine calls this
    at the top of :func:`repro.mining.engine.per_root_counts` (before
    the sharded fan-out), so workers receive already-resolved arguments;
    :meth:`repro.core.backends.FunctionalBackend.prepare` pre-warms the
    store at the driver for the sharded backend path.
    """
    if plan.num_levels < 2:
        return plan, replace(policy, tuned=False)
    choice = tune_plan(graph, plan, policy)
    key = choice_key(graph, plan, replace(policy, tuned=False))
    memo = _MEMO.get(key)
    tuned_plan = memo[1] if memo is not None else _choice_plan(plan, choice)
    return tuned_plan, choice.policy
