"""Tuner candidate generation: vertex orders × kernel-policy grid.

A candidate is one *complete* execution configuration the measured
trials can time: a connectivity-preserving vertex order for the plan's
pattern plus one concrete :class:`~repro.setops.kernels.KernelPolicy`.
Candidates come from two crossed axes (docs/TUNING.md, "Candidate
grid"):

* **Orders** — the top-N orders of
  :func:`repro.pattern.ordering.rank_vertex_orders` under the target
  graph's cost model, restricted to orders whose level-0 pattern vertex
  sits in the same automorphism orbit as the reference plan's — the
  necessary condition for per-root attribution to survive the reorder
  (trials verify the sufficient one).
* **Policies** — a small grid seeded from the caller's base policy: the
  base itself, the flipped engine, an eager-gallop variant, and
  signature-gated variants (a raised segment-bitmap budget when the
  dense adjacency bitmap *almost* fits, eager hub bitmaps when the
  graph carries real hub mass).

The reference candidate — the caller's own plan and base policy — is
always first: trials compare everything against it, and the tuner can
therefore never select a configuration worse than no tuning (modulo
measurement noise, which the persistent store freezes fleet-wide).

The full cross product stays small on purpose (≤ ~12): the best two
orders cross the whole policy grid, the remaining orders ride the base
policy only.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.graph.csr import CSRGraph
from repro.pattern.automorphism import orbits
from repro.pattern.ordering import OrderCostModel, rank_vertex_orders
from repro.pattern.pattern import Pattern
from repro.pattern.plan import ExecutionPlan
from repro.setops.kernels import KernelPolicy
from repro.tuning.signature import GraphSignature, graph_signature

__all__ = ["TunerCandidate", "generate_candidates", "original_pattern",
           "policy_grid"]

#: Orders considered per pattern (the rank_vertex_orders top-N).
TOP_ORDERS = 4

#: How many of the best orders cross the full policy grid; the rest
#: ride the base policy only, bounding the candidate count.
CROSSED_ORDERS = 2


@dataclass(frozen=True)
class TunerCandidate:
    """One trial configuration: a vertex order plus a concrete policy."""

    label: str
    order: tuple[int, ...]
    policy: KernelPolicy

    def __post_init__(self) -> None:
        if self.policy.tuned:
            raise ValueError("trial candidates must carry concrete "
                             "(tuned=False) policies")


def original_pattern(plan: ExecutionPlan) -> Pattern:
    """Undo the compile-time relabeling: the pattern the caller named.

    ``plan.pattern`` is relabeled so levels are 0..k-1; inverting the
    plan's ``vertex_order`` recovers the original vertex names, which is
    what candidate orders must be expressed in.
    """
    k = plan.pattern.num_vertices
    inv = [0] * k
    for level, vertex in enumerate(plan.vertex_order):
        inv[vertex] = level
    return plan.pattern.relabel(inv)


def policy_grid(
    base: KernelPolicy, signature: GraphSignature
) -> list[tuple[str, KernelPolicy]]:
    """The labeled policy variants seeded from ``base`` (concrete)."""
    base = replace(base, tuned=False)
    grid: list[tuple[str, KernelPolicy]] = [("base", base)]
    flipped = "recursive" if base.engine == "frontier" else "frontier"
    grid.append((flipped, replace(base, engine=flipped)))
    if base.force_kernel is None:
        grid.append((
            "gallop-eager",
            replace(base, gallop_ratio=max(2.0, base.gallop_ratio / 2.0),
                    gallop_min_large=max(16, base.gallop_min_large // 2)),
        ))
    if (
        base.force_segment_kernel is None
        and signature.bitmap_fit_bytes > base.segment_bitmap_bytes
        and signature.bitmap_fit_bytes <= 4 * base.segment_bitmap_bytes
    ):
        grid.append((
            "bitmap-budget",
            replace(base, segment_bitmap_bytes=signature.bitmap_fit_bytes),
        ))
    if base.use_hub_bitmaps and signature.hub_mass >= 0.05:
        grid.append((
            "hubs-eager",
            replace(base, hub_min_degree=max(16, base.hub_min_degree // 4),
                    hub_max_hubs=max(256, base.hub_max_hubs)),
        ))
    return grid


def generate_candidates(
    graph: CSRGraph,
    plan: ExecutionPlan,
    base_policy: KernelPolicy,
) -> list[TunerCandidate]:
    """The trial pool for one (plan, graph) cell; reference first."""
    pattern = original_pattern(plan)
    reference_order = tuple(plan.vertex_order)
    root_vertex = reference_order[0]
    root_orbit = next(
        (orbit for orbit in orbits(pattern) if root_vertex in orbit),
        frozenset({root_vertex}),
    )
    signature = graph_signature(graph)
    model = OrderCostModel.from_graph(graph)
    orders = rank_vertex_orders(
        pattern,
        model=model,
        top_n=TOP_ORDERS,
        vertex_induced=plan.vertex_induced,
        first_vertices=frozenset(root_orbit),
    )
    if reference_order in orders:
        orders.remove(reference_order)
    grid = policy_grid(base_policy, signature)
    base = grid[0][1]

    candidates = [
        TunerCandidate(label="reference", order=reference_order, policy=base)
    ]
    seen = {(reference_order, base)}

    def add(label: str, order: tuple[int, ...], policy: KernelPolicy) -> None:
        if (order, policy) in seen:
            return
        seen.add((order, policy))
        candidates.append(TunerCandidate(label=label, order=order,
                                         policy=policy))

    # The reference order itself crosses the policy grid too — policy
    # wins must be reachable without an order change.
    for policy_label, policy in grid[1:]:
        add(f"ref×{policy_label}", reference_order, policy)
    for rank, order in enumerate(orders):
        add(f"o{rank + 1}", order, base)
        if rank < CROSSED_ORDERS:
            for policy_label, policy in grid[1:]:
                add(f"o{rank + 1}×{policy_label}", order, policy)
    return candidates
