"""The persistent tuned-choice store.

One :class:`TunedChoice` per (pattern signature, graph signature, base
policy, tuner version), persisted through the existing versioned disk
cache (:mod:`repro.cache`): atomic writes, corruption quarantine, and
``REPRO_CACHE_DIR`` relocation all come for free, and bumping either
:data:`repro.cache.SCHEMA_VERSION` or :data:`TUNER_VERSION` invalidates
every stored choice at once (docs/TUNING.md, "Persistence and
invalidation").

The store deliberately ignores the bench runner's ``--no-cache`` switch
— that flag gates *result* caching, while a tuned choice is a
configuration decision: re-measuring results must not silently re-trial
(and possibly re-decide) the plan.  ``repro tune --force`` is the
explicit re-trial path.

The pattern half of the key hashes the *original* pattern's edge set,
the reference vertex order, and the induced-subgraph semantics — the
exact inputs that determine the reference plan a tuned choice must stay
bit-compatible with.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cache import DiskCache, default_cache, make_key
from repro.core.backend import config_signature
from repro.pattern.plan import ExecutionPlan
from repro.setops.kernels import KernelPolicy
from repro.tuning.candidates import original_pattern
from repro.tuning.signature import graph_signature

__all__ = ["TUNER_VERSION", "TunedChoice", "choice_key", "load_choice",
           "save_choice", "tuning_cache"]

#: Bump whenever the trial protocol, candidate grid, or choice schema
#: changes meaning; every stored choice then misses and re-trials.
TUNER_VERSION = 1


@dataclass(frozen=True)
class TunedChoice:
    """One persisted tuning decision plus its trial provenance."""

    #: Vertex order (original pattern names) the tuned plan compiles with.
    order: tuple[int, ...]
    #: Concrete policy (``tuned=False``) the tuned run executes with.
    policy: KernelPolicy
    #: Label of the winning candidate (``"reference"`` = no change won).
    candidate_label: str
    #: Measured executions performed to reach this choice (0 when the
    #: choice came from the store or memo).
    trials: int
    #: Root-sample size of the deciding (final) trial round.
    sample_size: int
    #: Final-round wall seconds of the reference and winning candidate.
    reference_seconds: float
    chosen_seconds: float
    tuner_version: int = TUNER_VERSION

    @property
    def speedup(self) -> float:
        """Trial-time speedup of the choice over the reference."""
        if self.chosen_seconds <= 0:
            return 1.0
        return self.reference_seconds / self.chosen_seconds


def tuning_cache() -> DiskCache:
    """The disk cache the tuned-choice store rides (re-resolves
    ``REPRO_CACHE_DIR`` on every call, like :func:`default_cache`)."""
    return default_cache()


def choice_key(graph, plan: ExecutionPlan, base_policy: KernelPolicy) -> str:
    """The store key of one tuning cell (see module docstring)."""
    pattern = original_pattern(plan)
    base = config_signature(replace(base_policy, tuned=False))
    return make_key(
        kind="tuned-choice",
        tuner_version=TUNER_VERSION,
        pattern_vertices=pattern.num_vertices,
        pattern_edges=tuple(sorted(pattern.edges())),
        vertex_order=tuple(plan.vertex_order),
        vertex_induced=plan.vertex_induced,
        graph=graph_signature(graph).key(),
        base_policy=base,
    )


def load_choice(cache: DiskCache, key: str) -> TunedChoice | None:
    """The stored choice under ``key``, or ``None`` on miss/mismatch."""
    hit, value = cache.get(key)
    if (
        hit
        and isinstance(value, TunedChoice)
        and value.tuner_version == TUNER_VERSION
    ):
        return value
    return None


def save_choice(cache: DiskCache, key: str, choice: TunedChoice) -> None:
    """Persist one choice (atomic; I/O failures are swallowed by the
    cache layer and surface in its counters)."""
    cache.put(key, choice)
