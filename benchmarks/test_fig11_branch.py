"""Figure 11: speedups from branch-level parallelism (pseudo-DFS order).

Paper: up to 5x; the clique patterns (tc, 4cl, 5cl) benefit particularly
because they lack set-level and segment-level parallelism, so the task
groups are their main source of fine-grained work.
"""

from repro.bench import experiments, geometric_mean


def test_fig11_branch(benchmark, publish):
    result = benchmark.pedantic(
        experiments.fig11, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("fig11_branch", result.render())

    grid = result.grid
    assert all(v > 0.7 for v in grid.values()), "pseudo-DFS should rarely hurt"
    assert result.max < 10.0

    cliques = ["tc", "4cl", "5cl"]
    others = [p for p in result.patterns if p not in cliques and p != "3mc"]

    def mean_over(patterns, graph):
        return geometric_mean([grid[(p, graph)] for p in patterns])

    # On the miss-heavy large graphs, hiding fetch latency with task
    # groups is the cliques' major lever (paper section 6.4).
    for graph in ("Yo", "Lj"):
        assert mean_over(cliques, graph) > 1.1, graph
    # Somewhere in the grid the gain must be substantial (paper: up to 5x).
    assert result.max > 1.5
