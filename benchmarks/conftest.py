"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper, writes the
rendered text to ``benchmarks/results/``, and echoes it to the terminal.
Run the full harness with::

    pytest benchmarks/ --benchmark-only

An in-process cache (repro.bench.runner) shares simulation runs between
figures, so running the whole directory in one pytest session is much
cheaper than the sum of its parts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir, capsys):
    """Write a rendered experiment to results/ and the terminal."""

    def _publish(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _publish
