"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper, writes the
rendered text to ``benchmarks/results/``, and echoes it to the terminal.
Run the full harness with::

    pytest benchmarks/ --benchmark-only

An in-process cache (repro.bench.runner) shares simulation runs between
figures, so running the whole directory in one pytest session is much
cheaper than the sum of its parts.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.paths import results_dir as _canonical_results_dir

# Resolved through repro.bench.paths so CLI sweeps, ``repro exp``, and
# pytest invocations from any CWD agree on one location (and tests can
# redirect everything with REPRO_RESULTS_DIR).
RESULTS_DIR = _canonical_results_dir()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    return _canonical_results_dir(create=True)


@pytest.fixture
def publish(results_dir, capsys):
    """Write a rendered experiment to results/ and the terminal."""

    def _publish(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _publish
