"""Software-parallelism study (the paper's section 3.5 future work).

Branch-granularity work stealing must fix the tree-granularity load
imbalance; the accelerators must still be far ahead in wall-clock time
(FlexMiner's paper claims an order of magnitude over CPU frameworks,
and FINGERS multiplies that by its iso-area factor).
"""

from repro.bench.software import software_comparison, software_scaling


def test_software_scaling(benchmark, publish):
    result = benchmark.pedantic(
        software_scaling, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("software_scaling", result.render())

    d = result.data
    # Branch granularity scales meaningfully at 16 cores...
    branch16 = d[("branch", 1)].cycles / d[("branch", 16)].cycles
    assert branch16 > 4.0
    # ...while tree granularity saturates on the hub tree.
    tree16 = d[("tree", 1)].cycles / d[("tree", 16)].cycles
    assert branch16 > 1.5 * tree16
    assert d[("tree", 16)].load_imbalance > d[("branch", 16)].load_imbalance


def test_software_comparison(benchmark, publish):
    result = benchmark.pedantic(
        software_comparison, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("software_comparison", result.render())

    sw = result.data["software"]
    flex = result.data["flexminer"]
    fing = result.data["fingers"]
    sw_time = sw.cycles / 2.5
    flex_time = flex.cycles / 1.0
    fing_time = fing.cycles / 1.0
    # Both accelerators beat the 16-core CPU in wall-clock time; FINGERS
    # beats FlexMiner.
    assert flex_time < sw_time
    assert fing_time < flex_time
