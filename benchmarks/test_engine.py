"""Frontier-engine end-to-end speedups over the recursive oracle.

Measures ``count_embeddings`` with the default (frontier) policy against
``KernelPolicy(engine="recursive")`` — the penultimate-batched recursive
path that was the fastest engine before the frontier refactor — on the
registered benchmark graphs, asserting bit-identical counts and the
acceptance speedup floor.  Every measurement is appended to the result
store under the ``engine-frontier`` run (the same run ``make
bench-engine`` populates), so the report generator's policy-speedup
table covers both sources.  Setting ``REPRO_BENCH_SMOKE=1`` drops the
floor to 1x, keeping the CI artifact informational.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.provenance import environment_provenance
from repro.experiments.store import ResultRow, ResultStore
from repro.graph.datasets import load_dataset
from repro.mining.engine import count_embeddings
from repro.pattern.compiler import compile_plan
from repro.pattern.pattern import named_pattern
from repro.setops.kernels import KernelPolicy

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: The PR 4 execution model: per-embedding recursion with the adaptive
#: kernel layer and the penultimate batch counter — the baseline the
#: frontier engine must beat.
RECURSIVE = KernelPolicy(engine="recursive")

_BENCH_GRAPH = "er300"

#: Required frontier-over-recursive speedup (ISSUE 9 acceptance floor).
_SPEEDUP_FLOOR = 1.0 if SMOKE else 3.0


def _time_count(graph, plan, policy, *, rounds: int = 2) -> tuple[int, float]:
    """Best-of-``rounds`` wall time (robust against background load)."""
    best = float("inf")
    count = 0
    for _ in range(rounds):
        start = time.perf_counter()
        count = count_embeddings(graph, plan, kernels=policy)
        best = min(best, time.perf_counter() - start)
    return count, best


@pytest.mark.parametrize("pattern", ["4cl", "tt"])
def test_frontier_engine_speedup(benchmark, results_dir, pattern):
    graph = load_dataset(_BENCH_GRAPH)
    plan = compile_plan(named_pattern(pattern))

    recursive_count, recursive_seconds = _time_count(graph, plan, RECURSIVE)
    frontier_count = benchmark.pedantic(
        count_embeddings, args=(graph, plan), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    frontier_seconds = float(benchmark.stats["min"])
    assert frontier_count == recursive_count
    speedup = recursive_seconds / frontier_seconds

    store = ResultStore(results_dir / "store")
    provenance = environment_provenance()
    store.append(ResultRow(
        run="engine-frontier",
        cell_key=f"bench:{pattern}/{_BENCH_GRAPH}/frontier",
        pattern=pattern, graph=_BENCH_GRAPH, backend="functional",
        policy="default", workload=pattern,
        count=int(frontier_count), counts=(int(frontier_count),),
        wall_time_s=frontier_seconds,
        metrics={"speedup_vs_recursive": speedup,
                 "recursive_seconds": recursive_seconds},
        extras={"smoke": SMOKE, "source": "benchmarks/test_engine.py"},
        provenance=provenance,
    ))
    assert speedup >= _SPEEDUP_FLOOR, (
        f"{pattern} on {_BENCH_GRAPH}: frontier engine is only "
        f"{speedup:.2f}x over the recursive path (floor {_SPEEDUP_FLOOR}x)"
    )
