"""Table 3: IU utilization (active rate) and load balance in one PE on Mi.

Paper: active rates 55-95% (tt the highest, tc the lowest), balance
rates tightly clustered at 66-71%.
"""

from repro.bench import experiments


def test_table3_utilization(benchmark, publish):
    result = benchmark.pedantic(
        experiments.table3, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("table3_utilization", result.render())

    rows = result.rows
    for pattern, (active, balance) in rows.items():
        assert 0.0 < active <= 1.0, pattern
        assert 0.3 < balance <= 1.0, pattern

    # The paper's qualitative ordering: the subtraction-heavy patterns
    # keep the IUs busier than plain clique intersection chains.
    assert rows["tt"][0] > rows["tc"][0]
    assert rows["cyc"][0] > rows["tc"][0]
    # Balance rates are much flatter across patterns than active rates.
    actives = [a for a, _ in rows.values()]
    balances = [b for _, b in rows.values()]
    assert (max(balances) - min(balances)) < (max(actives) - min(actives) + 0.25)
