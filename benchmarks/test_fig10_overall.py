"""Figure 10: overall iso-area speedup, 20-PE FINGERS vs 40-PE FlexMiner.

Paper: 2.8x geometric mean, up to 8.9x.  Per-graph trends follow the
single-PE setting, with memory effects amplified: the low-degree large
graphs (Yo, Pa) gain least because bandwidth, not compute, binds.
"""

from repro.bench import experiments, geometric_mean


def test_fig10_overall(benchmark, publish):
    result = benchmark.pedantic(
        experiments.fig10, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("fig10_overall", result.render())

    grid = result.grid
    assert 1.5 < result.mean < 9.0, result.mean
    assert result.max < 20.0

    # Iso-area halves the PE count, so chip speedups must sit below the
    # single-PE speedups of Figure 9 on average.
    fig9 = experiments.fig9()  # cached runs; cheap second time
    assert result.mean < fig9.mean

    def col_mean(g):
        return geometric_mean([grid[(p, g)] for p in result.patterns])

    # The small cache-resident graphs keep scaling with PEs.
    assert col_mean("Mi") > 1.5
    # Yo/Pa stay the weakest columns (memory-latency bound).
    weakest_two = sorted(result.graphs, key=col_mean)[:2]
    assert set(weakest_two) <= {"Yo", "Pa", "As"}
