"""Set-operation kernel microbenchmarks and end-to-end counting speedups.

Two layers (docs/KERNELS.md):

* per-kernel micro timings of intersect/subtract on synthetic operand
  shapes (balanced vs. skewed, with a prebuilt bitmap for the hub path);
* end-to-end ``count_embeddings`` on seeded generator graphs, comparing
  the adaptive layer (hub bitmaps + penultimate batch counting) against
  the legacy configuration (forced merge kernel, per-child recursion)
  that reproduces the pre-kernel-layer engine.

All numbers land in ``benchmarks/results/BENCH_kernels.json`` so the
perf trajectory has data points; counts are asserted identical in every
configuration.  Run with ``make bench-kernels``.  Setting
``REPRO_BENCH_SMOKE=1`` (the CI smoke job) shrinks the end-to-end graphs
and drops the speedup floor, keeping the artifact informational.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.mining.engine import count_embeddings
from repro.pattern.compiler import compile_plan
from repro.pattern.pattern import named_pattern
from repro.setops.kernels import (
    KernelPolicy,
    bitmap_intersect,
    bitmap_subtract,
    gallop_intersect,
    gallop_subtract,
    merge_intersect,
    merge_subtract,
    pack_bitmap,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Legacy configuration: the exact execution shape of the engine before
#: the kernel layer existed (sort-based merges, per-child recursion).
#: ``engine="recursive"`` pins the pre-frontier execution model now that
#: the default policy runs the frontier engine.
LEGACY = KernelPolicy(
    force_kernel="merge", batch_penultimate=False, engine="recursive"
)

#: Adaptive configuration: hub bitmaps + penultimate batch counting on
#: the recursive engine — what this file's end-to-end speedup measures
#: (the frontier engine has its own benchmark, ``test_engine.py``).
ADAPTIVE = KernelPolicy(engine="recursive")

_INTERSECT_KERNELS = {
    "merge": merge_intersect,
    "gallop": gallop_intersect,
    "bitmap": bitmap_intersect,
}
_SUBTRACT_KERNELS = {
    "merge": merge_subtract,
    "gallop": gallop_subtract,
    "bitmap": bitmap_subtract,
}


def _record(results_dir, section: str, key: str, payload: dict) -> None:
    """Merge one measurement into benchmarks/results/BENCH_kernels.json."""
    path = results_dir / "BENCH_kernels.json"
    data: dict = {}
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    data.setdefault(section, {})[key] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def _operands(shape: str) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(42)
    domain = 200_000
    if shape == "balanced":
        sizes = (8_000, 10_000)
    else:  # skewed: |a| << |b|, the galloping sweet spot
        sizes = (256, 50_000)
    a = np.unique(rng.integers(0, domain, size=sizes[0])).astype(np.int32)
    b = np.unique(rng.integers(0, domain, size=sizes[1])).astype(np.int32)
    return a, b


@pytest.mark.parametrize("shape", ["balanced", "skewed"])
@pytest.mark.parametrize("kernel", ["merge", "gallop", "bitmap"])
def test_micro_intersect(benchmark, results_dir, kernel, shape):
    a, b = _operands(shape)
    fn = _INTERSECT_KERNELS[kernel]
    expected = merge_intersect(a, b)
    result = benchmark(fn, a, b)
    assert np.array_equal(result, expected)
    _record(results_dir, "micro", f"intersect/{kernel}/{shape}", {
        "size_a": int(a.size), "size_b": int(b.size),
        "mean_seconds": float(benchmark.stats["mean"]),
    })


@pytest.mark.parametrize("shape", ["balanced", "skewed"])
@pytest.mark.parametrize("kernel", ["merge", "gallop", "bitmap"])
def test_micro_subtract(benchmark, results_dir, kernel, shape):
    a, b = _operands(shape)
    fn = _SUBTRACT_KERNELS[kernel]
    expected = merge_subtract(a, b)
    result = benchmark(fn, a, b)
    assert np.array_equal(result, expected)
    _record(results_dir, "micro", f"subtract/{kernel}/{shape}", {
        "size_a": int(a.size), "size_b": int(b.size),
        "mean_seconds": float(benchmark.stats["mean"]),
    })


def test_micro_bitmap_prebuilt(benchmark, results_dir):
    """The hub-index fast path: probe against an already-packed bitmap."""
    a, b = _operands("skewed")
    words = pack_bitmap(b)
    expected = merge_intersect(a, b)
    result = benchmark(bitmap_intersect, a, b, b_words=words)
    assert np.array_equal(result, expected)
    _record(results_dir, "micro", "intersect/bitmap/prebuilt", {
        "size_a": int(a.size), "size_b": int(b.size),
        "mean_seconds": float(benchmark.stats["mean"]),
    })


# ----------------------------------------------------------------------
# End-to-end: adaptive layer vs. the legacy engine configuration
# ----------------------------------------------------------------------

#: Seeded benchmark graphs.  Dense enough that set operations (not the
#: upper-level Python traversal) dominate, which is the regime the
#: penultimate batch counter targets.
_E2E_GRAPH = (40, 0.5, 11) if SMOKE else (120, 0.7, 11)

#: Required adaptive-over-legacy speedup (ISSUE 5 acceptance floor).
_SPEEDUP_FLOOR = 1.0 if SMOKE else 3.0


def _time_count(graph, plan, policy, *, rounds: int = 2) -> tuple[int, float]:
    """Best-of-``rounds`` wall time (robust against background load)."""
    best = float("inf")
    count = 0
    for _ in range(rounds):
        start = time.perf_counter()
        count = count_embeddings(graph, plan, kernels=policy)
        best = min(best, time.perf_counter() - start)
    return count, best


@pytest.mark.parametrize("pattern", ["4cl", "tt"])
def test_e2e_count_speedup(benchmark, results_dir, pattern):
    n, p, seed = _E2E_GRAPH
    graph = erdos_renyi(n, p, seed=seed)
    plan = compile_plan(named_pattern(pattern))

    legacy_count, legacy_seconds = _time_count(graph, plan, LEGACY)
    adaptive_count = benchmark.pedantic(
        count_embeddings, args=(graph, plan),
        kwargs={"kernels": ADAPTIVE}, rounds=3, iterations=1,
        warmup_rounds=1,
    )
    adaptive_seconds = float(benchmark.stats["min"])
    assert adaptive_count == legacy_count
    speedup = legacy_seconds / adaptive_seconds
    _record(results_dir, "end_to_end", f"count_embeddings/{pattern}", {
        "graph": f"erdos_renyi(n={n}, p={p}, seed={seed})",
        "count": int(adaptive_count),
        "legacy_seconds": legacy_seconds,
        "adaptive_seconds": adaptive_seconds,
        "speedup": speedup,
        "smoke": SMOKE,
    })
    assert speedup >= _SPEEDUP_FLOOR, (
        f"{pattern}: adaptive layer is only {speedup:.2f}x over legacy "
        f"(floor {_SPEEDUP_FLOOR}x)"
    )
