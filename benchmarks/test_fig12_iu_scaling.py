"""Figure 12: PE scalability in #IUs under iso-area (#IUs x s_l = 384).

Paper (on Yo): tt and cyc scale well to 16-24 IUs then drop at 48 (the
shrunken segments inflate item counts and the serial I/O floor); 4cl
barely scales (no set/segment-level parallelism); tt-unlimited (area
allowed to grow, s_l fixed) keeps improving.
"""

from repro.bench import experiments


def test_fig12_iu_scaling(benchmark, publish):
    result = benchmark.pedantic(
        experiments.fig12, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("fig12_iu_scaling", result.render())

    s = result.series

    def peak(pattern):
        return max(s[(pattern, n)] for n in result.iu_counts)

    # tt and cyc must scale meaningfully; 4cl must not.
    assert peak("tt") > 1.5
    assert peak("cyc") > 1.5
    assert peak("4cl") < peak("tt")
    # The iso-area curve drops (or at least flattens) at 48 IUs for tt.
    best_n = max(result.iu_counts, key=lambda n: s[("tt", n)])
    assert best_n < 48, "iso-area tt must peak before 48 IUs"
    assert s[("tt", 48)] <= peak("tt")
    # Unlimited-area tt at 48 IUs beats iso-area tt at 48 IUs.
    assert s[("tt-unlimited", 48)] >= s[("tt", 48)]
    # And the unlimited curve is (weakly) monotone in IUs.
    vals = [s[("tt-unlimited", n)] for n in result.iu_counts]
    assert all(b >= a * 0.95 for a, b in zip(vals, vals[1:]))
