"""Table 1: evaluated graph datasets (analog vs paper originals)."""

from repro.bench import experiments
from repro.graph import dataset_names, load_dataset


def test_table1_datasets(benchmark, publish):
    result = benchmark.pedantic(
        experiments.table1, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("table1_datasets", result.render())

    rows = {r[0].split(" (")[1].rstrip(")"): r for r in result.rows}
    assert set(rows) == set(dataset_names())
    # Analog degree signatures must track the paper's Table 1 ordering.
    avg = {n: rows[n][3] for n in rows}
    assert min(avg, key=avg.get) == "Yo"   # lowest average degree
    assert max(avg, key=avg.get) == "Or"   # highest average degree
    maxdeg = {n: rows[n][4] for n in rows}
    assert min(maxdeg, key=maxdeg.get) == "Pa"  # hub-free graph
    # Small graphs stay small.
    assert rows["As"][1] < rows["Yo"][1]
    assert rows["Mi"][1] < rows["Pa"][1]
