"""Timing-model sensitivity benches (robustness of the conclusions)."""

from repro.bench.sensitivity import (
    sensitivity_dram_latency,
    sensitivity_hit_latency,
    sensitivity_noc_bandwidth,
)


def test_sensitivity_dram_latency(benchmark, publish):
    result = benchmark.pedantic(
        sensitivity_dram_latency, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("sensitivity_dram_latency", result.render())
    s = result.speedups
    # FINGERS wins at every latency.  The advantage is *stable* across a
    # 16x latency range: the task group pays one memory round-trip where
    # strict DFS pays one per task, so the ratio tracks the group size
    # rather than the latency magnitude.
    assert all(v > 1.0 for v in s.values())
    assert max(s.values()) / min(s.values()) < 1.5


def test_sensitivity_hit_latency(benchmark, publish):
    result = benchmark.pedantic(
        sensitivity_hit_latency, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("sensitivity_hit_latency", result.render())
    s = result.speedups
    assert all(v > 1.0 for v in s.values())
    # The conclusion is stable: no more than ~2.5x swing over a 16x
    # latency range on a cache-resident workload.
    assert max(s.values()) / min(s.values()) < 2.5


def test_sensitivity_noc_bandwidth(benchmark, publish):
    result = benchmark.pedantic(
        sensitivity_noc_bandwidth, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("sensitivity_noc_bandwidth", result.render())
    s = result.speedups
    assert all(v > 1.0 for v in s.values())
    # Ample NoC bandwidth is transparent: 64 vs 256 B/cycle barely moves.
    assert abs(s[256] - s[64]) / s[256] < 0.15
