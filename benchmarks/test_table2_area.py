"""Table 2 + section 6.1: PE area breakdown, power, and iso-area claims."""

import pytest

from repro.bench import experiments


def test_table2_area(benchmark, publish):
    result = benchmark.pedantic(
        experiments.table2, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("table2_area", result.render())

    # The paper's headline numbers.
    assert result.total_mm2 == pytest.approx(0.934, rel=0.01)
    assert result.pe_area_15nm == pytest.approx(0.26, abs=0.01)
    assert result.pe_area_15nm < 2 * result.flexminer_pe_area_15nm
    assert result.iso_area_fingers_pes == 20
    assert result.power["compute_mw"] == pytest.approx(98.5)
    assert result.power["caches_mw"] == pytest.approx(85.6)
    # IUs + dividers stay a small fraction: the paper's design principle
    # that fine-grained parallelism is almost free in area.
    iu_pct = result.components[0][2]
    div_pct = result.components[1][2]
    assert iu_pct + div_pct < 25.0
