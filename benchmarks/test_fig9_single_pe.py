"""Figure 9: single-PE speedups of FINGERS over FlexMiner.

Paper: 6.2x geometric mean, up to 13.2x; Yo benefits least; tt and cyc
see the highest gains; clique patterns gain less (no set-level
parallelism).
"""

from repro.bench import experiments, geometric_mean


def test_fig9_single_pe(benchmark, publish):
    result = benchmark.pedantic(
        experiments.fig9, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("fig9_single_pe", result.render())

    grid = result.grid
    # Headline shape: a clear multi-x mean win, with several-x spread.
    assert 3.0 < result.mean < 13.0, result.mean
    assert result.max < 25.0
    assert all(v > 1.0 for v in grid.values()), "FINGERS must never lose"

    def col_mean(g):
        return geometric_mean([grid[(p, g)] for p in result.patterns])

    # Yo gains least among the large graphs (lowest degree -> least
    # fine-grained parallelism).
    assert col_mean("Yo") <= min(col_mean(g) for g in ("Lj", "Or", "As", "Mi"))

    def row_mean(p):
        return geometric_mean([grid[(p, g)] for g in result.graphs])

    # Subtraction-heavy patterns beat plain triangle counting on average.
    assert row_mean("tt") > row_mean("tc")
    # Large graphs with hubs (Lj/Or) are where FINGERS shines most.
    assert col_mean("Lj") > col_mean("Pa")
