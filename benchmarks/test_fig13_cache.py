"""Figure 13: shared-cache miss rate vs capacity (cyc pattern).

Paper: Mi stays near zero at every capacity (cache resident); Yo is
insensitive (short lists, high reuse); Lj is capacity-sensitive, and
FINGERS misses less than FlexMiner there (fewer PEs competing and
streaming reuse of long lists).
"""

from repro.bench import experiments


def test_fig13_cache(benchmark, publish):
    result = benchmark.pedantic(
        experiments.fig13, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("fig13_cache", result.render())

    c = result.curves
    caps = result.capacities_mb

    # Mi fits: miss rates tiny for both designs at every capacity.
    for design in ("FINGERS", "FlexMiner"):
        for cap in caps:
            assert c[("Mi", design, cap)] < 0.05, (design, cap)

    # Yo: insensitive to capacity (flat curve).
    for design in ("FINGERS", "FlexMiner"):
        rates = [c[("Yo", design, cap)] for cap in caps]
        assert max(rates) - min(rates) < 0.15, rates

    # Lj: capacity-sensitive, and FINGERS <= FlexMiner at the default 4MB.
    lj_flex = [c[("Lj", "FlexMiner", cap)] for cap in caps]
    assert lj_flex[0] > lj_flex[-1], "Lj must improve with capacity"
    assert c[("Lj", "FINGERS", 4)] <= c[("Lj", "FlexMiner", 4)] + 0.02

    # Larger caches never hurt (monotone non-increasing, small tolerance).
    for g, d, _ in set((g, d, 0) for g, d, _ in c):
        rates = [c[(g, d, cap)] for cap in caps]
        assert all(b <= a + 0.03 for a, b in zip(rates, rates[1:])), (g, d, rates)
