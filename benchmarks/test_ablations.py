"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate individual mechanisms
(scheduling, divider splitting, divider count, task-group size, PE
scaling under load imbalance) and record their contributions.
"""

from repro.bench import ablations


def test_ablation_scheduling(benchmark, publish):
    result = benchmark.pedantic(
        ablations.ablation_scheduling, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("ablation_scheduling", result.render())
    dynamic = result.data["dynamic"]
    block = result.data["static_block"]
    # Counts identical; dynamic must not lose to static block partitioning.
    assert dynamic.counts == block.counts
    assert dynamic.cycles <= block.cycles


def test_ablation_max_load(benchmark, publish):
    result = benchmark.pedantic(
        ablations.ablation_max_load, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("ablation_max_load", result.render())
    # Splitting (max_load small) trades item count against balance; the
    # default 3 must be no worse than the no-split extreme by much.
    assert result.data[3].cycles <= result.data[12].cycles * 1.25


def test_ablation_dividers(benchmark, publish):
    result = benchmark.pedantic(
        ablations.ablation_dividers, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("ablation_dividers", result.render())
    # A single divider bottlenecks head-list matching; 12 must help.
    assert result.data[12].cycles <= result.data[1].cycles
    # But beyond the default the returns vanish (paper: dividers do not
    # dominate the pipeline).
    assert result.data[24].cycles >= result.data[12].cycles * 0.95


def test_ablation_group_size(benchmark, publish):
    result = benchmark.pedantic(
        ablations.ablation_group_size, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("ablation_group_size", result.render())
    # The auto policy must be competitive with the best manual setting
    # (paper: "performance is insensitive to these parameters").
    best = min(r.cycles for r in result.data.values())
    assert result.data[None].cycles <= best * 1.15


def test_ablation_imbalance(benchmark, publish):
    result = benchmark.pedantic(
        ablations.ablation_imbalance, rounds=1, iterations=1, warmup_rounds=0
    )
    publish("ablation_imbalance", result.render())
    # More PEs help, but sublinearly: the hub tree serializes.
    scaling_16 = result.data[1].cycles / result.data[16].cycles
    assert 1.0 < scaling_16 < 16.0
    assert result.data[16].chip.load_imbalance > 1.2


def test_ablation_edge_induced(benchmark, publish):
    result = benchmark.pedantic(
        ablations.ablation_edge_induced, rounds=1, iterations=1,
        warmup_rounds=0,
    )
    publish("ablation_edge_induced", result.render())
    for pattern in ("tt", "cyc", "dia"):
        v_fing, v_flex = result.data[(pattern, "vertex")]
        e_fing, e_flex = result.data[(pattern, "edge")]
        # Edge-induced matches are a superset of vertex-induced ones.
        assert e_fing.count >= v_fing.count
        # Both modes agree across designs.
        assert v_fing.counts == v_flex.counts
        assert e_fing.counts == e_flex.counts
        # FINGERS wins in both modes.
        assert v_fing.speedup_over(v_flex) > 1.0
        assert e_fing.speedup_over(e_flex) > 1.0
