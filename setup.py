"""Shim for editable installs on environments without the `wheel` package.

`pip install -e .` falls back to the legacy `setup.py develop` path when a
setup.py is present, which works offline; all real metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
