"""Fault plans: grammar, deterministic decisions, install/clear, corruption."""

import os

import pytest

from repro import sanitize
from repro.errors import ConfigError, InjectedFault
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    faults.reset_fault_counters()
    yield
    faults.clear()
    faults.reset_fault_counters()


class TestGrammar:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7,crash:pool=0.3,transient:pool=0.2,hang:pool[abc]=0.5@9"
        )
        assert plan.seed == 7
        assert [r.kind for r in plan.rules] == ["crash", "transient", "hang"]
        hang = plan.rules[2]
        assert hang.match == "abc"
        assert hang.duration_s == 9.0

    def test_spec_roundtrip(self):
        spec = "seed=3,fail:cell=0.25,corrupt:cache[dead]=1@2"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.spec()) == plan

    def test_empty_clauses_are_ignored(self):
        assert FaultPlan.parse("  , seed=1, ,") == FaultPlan(seed=1)

    @pytest.mark.parametrize("bad", [
        "crash=0.5",            # no site
        "crashpool=0.5",        # no ':'
        "crash:pool",           # no rate
        "crash:pool=lots",      # non-numeric rate
        "hang:pool=0.5@soon",   # non-numeric duration
        "seed=seven",           # non-integer seed
        "melt:pool=0.5",        # unknown kind
        "crash:pool=1.5",       # rate out of range
    ])
    def test_invalid_clauses_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            FaultPlan.parse(bad)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            FaultRule(kind="crash", site="pool", rate=2.0)


class TestDecide:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan.parse("seed=11,transient:pool=0.4")
        draws = [plan.decide("pool", f"tok{i}", 0) for i in range(64)]
        again = [plan.decide("pool", f"tok{i}", 0) for i in range(64)]
        assert draws == again
        fired = sum(1 for d in draws if d is not None)
        assert 0 < fired < 64  # the rate actually selects a subset

    def test_rate_one_always_fires_and_rate_zero_never(self):
        always = FaultPlan.parse("transient:pool=1")
        never = FaultPlan.parse("transient:pool=0")
        for i in range(16):
            assert always.decide("pool", f"t{i}", i) is not None
            assert never.decide("pool", f"t{i}", i) is None

    def test_transient_redraws_per_attempt(self):
        plan = FaultPlan.parse("seed=0,transient:pool=0.5")
        tokens = [f"tok{i}" for i in range(32)]
        # Every token must eventually draw a clean attempt at rate 0.5.
        for tok in tokens:
            assert any(
                plan.decide("pool", tok, a) is None for a in range(20)
            )

    def test_fail_is_permanent_per_token(self):
        plan = FaultPlan.parse("seed=0,fail:cell=0.5")
        tokens = [f"tok{i}" for i in range(32)]
        fired = [plan.decide("cell", t, 0) is not None for t in tokens]
        assert any(fired) and not all(fired)
        for tok, hit in zip(tokens, fired):
            for attempt in range(8):  # attempt-independent by design
                assert (plan.decide("cell", tok, attempt) is not None) == hit

    def test_site_and_match_narrowing(self):
        plan = FaultPlan.parse("transient:pool[abc]=1")
        assert plan.decide("pool", "xxabcxx", 0) is not None
        assert plan.decide("pool", "other", 0) is None
        assert plan.decide("cell", "xxabcxx", 0) is None

    def test_seed_changes_the_selection(self):
        tokens = [f"tok{i}" for i in range(64)]
        pick = lambda seed: [
            FaultPlan.parse(f"seed={seed},transient:pool=0.3").decide(
                "pool", t, 0
            ) is not None
            for t in tokens
        ]
        assert pick(1) != pick(2)


class TestInstall:
    def test_install_exports_to_environment(self):
        plan = faults.install("seed=5,transient:pool=0.2")
        assert os.environ[faults.ENV_VAR] == plan.spec()
        assert faults.plan_active()
        assert faults.current_plan() == plan
        faults.clear()
        assert faults.ENV_VAR not in os.environ
        assert not faults.plan_active()
        assert faults.current_plan() is None

    def test_env_only_plan_is_parsed_and_cached(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "seed=9,fail:cell=1")
        plan = faults.current_plan()
        assert plan is not None and plan.seed == 9
        assert faults.current_plan() is plan  # cached object

    def test_inject_is_a_noop_without_a_plan(self):
        faults.inject("pool", "tok", 0)  # must not raise

    def test_inject_raises_injected_fault(self):
        faults.install("transient:pool=1")
        with pytest.raises(InjectedFault) as err:
            faults.inject("pool", "tok", 0)
        assert err.value.kind == "transient"
        assert faults.fault_counters().get("pool:transient") == 1

    def test_crash_and_hang_never_fire_in_the_driver(self):
        # This process is not marked as a worker, so a crash rule must
        # not hard-exit it (the fact that the test survives is the
        # assertion).
        faults.install("crash:pool=1,hang:pool=1@60")
        assert not faults.in_worker()
        faults.inject("pool", "tok", 0)

    def test_probe_hook_counts_seam_traffic(self):
        faults.install("transient:pool=0")
        sanitize.emit("pool", "run_shards[2]", [[1], [2]])
        assert faults.fault_counters().get("probe:pool") == 1
        faults.clear()
        faults.reset_fault_counters()
        sanitize.emit("pool", "run_shards[2]", [[1], [2]])
        assert faults.fault_counters() == {}  # hook removed with the plan


class TestCorruptBytes:
    def test_corruption_is_destructive_and_deterministic(self):
        faults.install("seed=1,corrupt:cache=1")
        data = bytes(range(64))
        out = faults.corrupt_bytes("cache", "key", data)
        assert out != data and 0 < len(out) < len(data)
        assert out == faults.corrupt_bytes("cache", "key", data)

    def test_corrupt_only_fires_on_corrupt_rules(self):
        faults.install("transient:cache=1")
        data = b"payload"
        assert faults.corrupt_bytes("cache", "key", data) == data
        # ...and inject() never fires corrupt rules.
        faults.clear()
        faults.install("corrupt:cache=1")
        faults.inject("cache", "key", 0)  # must not raise

    def test_token_for_matches_sanitizer_digest(self):
        payload = [[1, 2], [3]]
        assert faults.token_for(payload) == sanitize.payload_digest(payload)
