"""RetryPolicy parsing and deterministic backoff; RetryStats accounting."""

import pytest

from repro.errors import ConfigError
from repro.resilience.retry import RetryPolicy, RetryStats


class TestPolicySpec:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 5
        assert policy.timeout_s is None
        assert policy.max_pool_rebuilds == 3

    def test_from_spec_overrides_everything(self):
        policy = RetryPolicy.from_spec(
            "attempts=6,timeout=30,base=0.1,cap=2,rebuilds=1,seed=9"
        )
        assert policy == RetryPolicy(
            max_attempts=6, timeout_s=30.0, backoff_base_s=0.1,
            backoff_cap_s=2.0, max_pool_rebuilds=1, jitter_seed=9,
        )

    def test_timeout_none_disables(self):
        assert RetryPolicy.from_spec("timeout=none").timeout_s is None

    def test_current_reads_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY", "attempts=2")
        assert RetryPolicy.current().max_attempts == 2
        monkeypatch.delenv("REPRO_RETRY")
        assert RetryPolicy.current() == RetryPolicy()

    @pytest.mark.parametrize("bad", [
        "attempts",            # no '='
        "retries=3",           # unknown key
        "attempts=many",       # non-numeric
        "attempts=0",          # below minimum
        "timeout=-1",          # non-positive timeout
        "rebuilds=-1",
    ])
    def test_invalid_specs_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            RetryPolicy.from_spec(bad)


class TestBackoff:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base_s=0.05, backoff_cap_s=1.0)
        series = [policy.backoff_s(r, token="t") for r in range(8)]
        assert series == [policy.backoff_s(r, token="t") for r in range(8)]
        assert all(0.0 < s <= 1.0 for s in series)
        # Jitter stays within [0.5, 1.0] of the raw exponential value.
        for round_no, slept in enumerate(series):
            raw = min(1.0, 0.05 * 2 ** round_no)
            assert 0.5 * raw <= slept <= raw

    def test_zero_base_disables_backoff(self):
        assert RetryPolicy(backoff_base_s=0.0).backoff_s(3) == 0.0

    def test_jitter_decorrelates_rounds_and_tokens(self):
        policy = RetryPolicy(backoff_cap_s=100.0)
        assert policy.backoff_s(4, token="a") != policy.backoff_s(4, token="b")

    def test_seed_changes_the_jitter(self):
        a = RetryPolicy(jitter_seed=1).backoff_s(0, token="t")
        b = RetryPolicy(jitter_seed=2).backoff_s(0, token="t")
        assert a != b


class TestStats:
    def test_add_delta_roundtrip(self):
        total = RetryStats(attempts=10, retries=2, crashes=1)
        before = total.snapshot()
        total.add(RetryStats(attempts=5, retries=1, backoff_s=0.25))
        delta = total.delta(before)
        assert delta == RetryStats(attempts=5, retries=1, backoff_s=0.25)

    def test_dict_roundtrip(self):
        stats = RetryStats(attempts=3, timeouts=1, backoff_s=0.5)
        assert RetryStats.from_dict(stats.as_dict()) == stats
        # Unknown keys (a future schema) are ignored, not fatal.
        assert RetryStats.from_dict({"attempts": 1, "novel": 9}).attempts == 1

    def test_recovered_flags_only_actual_recovery(self):
        assert not RetryStats(attempts=50).recovered
        assert RetryStats(retries=1).recovered
        assert RetryStats(crashes=1).recovered
        assert RetryStats(serial_fallbacks=1).recovered
