"""End-to-end replication of the paper's running example (Figures 1-2).

The paper walks the tailed-triangle pattern through a 5-vertex input
graph.  This test reproduces every artifact of that walkthrough: the set
operation schedule, the symmetric-breaking restriction, the candidate
sets along the branch the paper narrates, and the final embeddings.
"""

import numpy as np
import pytest

from repro.graph import from_edges
from repro.mining import count, embeddings
from repro.mining.engine import count_embeddings, list_embeddings
from repro.mining.api import plan_for
from repro.pattern import OpKind, compile_plan, named_pattern
from repro.setops.merge import apply_op


@pytest.fixture
def figure1_graph():
    """The input graph of Figure 1 with paper vertices 1..5 -> ids 0..4.

    Edges reconstructed from the walkthrough: 2-1, 2-3, 2-4, 2-5, 1-3
    (so N(2) = {1,3,4,5}, the tails 4 and 5 hang off vertex 2 only, and
    S3(2) on branch 2-3 is {4,5} once the mapped vertex is excluded).
    """
    return from_edges([(1, 0), (1, 2), (1, 3), (1, 4), (0, 2)])


@pytest.fixture
def tt_plan():
    return compile_plan(named_pattern("tt"), order=[0, 1, 2, 3])


class TestFigure2Schedule:
    """The compiled plan must be exactly the algorithm of Figure 2."""

    def test_level0_shares_n_u0(self, tt_plan):
        # Line 3: S1 = S2(1) = S3(1) = N(u0) — one op serving all levels.
        ops = tt_plan.levels[0].ops
        assert len(ops) == 1
        assert ops[0].kind is OpKind.INIT_COPY
        assert ops[0].serves == (1, 2, 3)

    def test_level1_two_ops(self, tt_plan):
        # Lines 5-6: S2 = N(u0) ∩ N(u1); S3(2) = N(u0) − N(u1).
        kinds = {op.kind for op in tt_plan.levels[1].ops}
        assert kinds == {OpKind.INTERSECT, OpKind.SUBTRACT}

    def test_level2_final_subtraction(self, tt_plan):
        # Line 9: S3 = S3(2) − N(u2).
        ops = tt_plan.levels[2].ops
        assert len(ops) == 1
        assert ops[0].kind is OpKind.SUBTRACT

    def test_symmetry_restriction_on_u1_u2(self, tt_plan):
        # Figure 1: "symmetric breaking: u1 > u2" — one restriction over
        # the symmetric pair {1, 2} (we emit the equivalent v1 < v2).
        assert len(tt_plan.restrictions) == 1
        r = tt_plan.restrictions[0]
        assert {r.smaller, r.larger} == {1, 2}


class TestFigure1Walkthrough:
    """Replay the branch 2-3 (ids 1-2) that the paper narrates."""

    def test_s1_is_neighbors_of_2(self, figure1_graph):
        # "if at level 0 we choose u0 = 2, then u1 can be any vertex in
        # S1 = N(u0) = {1, 3, 4, 5}" (ids {0, 2, 3, 4}).
        assert list(figure1_graph.neighbors(1)) == [0, 2, 3, 4]

    def test_s3_2_on_branch_2_3(self, figure1_graph):
        # "we can compute S3(2) = N(u0) − N(u1) = {4, 5}" (ids {3, 4}).
        # The raw subtraction also still contains u1 itself (the paper's
        # figure drops mapped vertices implicitly); the engine removes it
        # with the injectivity filter at extension time.
        n_u0 = figure1_graph.neighbors(1)
        n_u1 = figure1_graph.neighbors(2)
        s32 = apply_op(OpKind.SUBTRACT, n_u0, n_u1)
        assert list(s32) == [2, 3, 4]
        from repro.setops.merge import exclude_values

        assert list(exclude_values(s32, [2])) == [3, 4]

    def test_reuse_for_u2_equals_1(self, figure1_graph):
        # "when u2 = 1, S3 = S3(2) − N(u2) = {4, 5}, resulting in the
        # final results 2-3-1-4 and 2-3-1-5" (u2 = 1 is id 0).
        from repro.setops.merge import exclude_values

        n_u0 = figure1_graph.neighbors(1)
        n_u1 = figure1_graph.neighbors(2)
        s32 = exclude_values(
            apply_op(OpKind.SUBTRACT, n_u0, n_u1), [2]
        )
        s3 = apply_op(OpKind.SUBTRACT, s32, figure1_graph.neighbors(0))
        assert list(s3) == [3, 4]

    def test_final_embeddings(self, figure1_graph):
        # The search tree of Figure 1 yields exactly two tailed
        # triangles: paper tuples {2,3,1,4} and {2,3,1,5} up to the
        # automorphism on (u1, u2).
        found = embeddings(figure1_graph, "tt")
        assert len(found) == 2
        as_sets = {frozenset(e) for e in found}
        assert frozenset({1, 2, 0, 3}) in as_sets  # paper {2, 3, 1, 4}
        assert frozenset({1, 2, 0, 4}) in as_sets  # paper {2, 3, 1, 5}

    def test_pruned_branch_2_1(self, figure1_graph, tt_plan):
        # Figure 1 marks branch 2-1-3 as pruned by the restriction
        # (automorphic to 2-3-1): rooted at vertex 2 (id 1) the count is
        # exactly the two surviving embeddings, not four.
        assert count_embeddings(figure1_graph, tt_plan, roots=[1]) == 2

    def test_only_root_2_produces_embeddings(self, figure1_graph, tt_plan):
        # The triangle {1,2,3} (ids {0,1,2}) has its tail only at vertex
        # 2 (id 1); every tailed triangle is rooted at u0 = 2.
        for root in [0, 2, 3, 4]:
            assert count_embeddings(figure1_graph, tt_plan, roots=[root]) == 0


class TestAcceleratorOnFigure1:
    def test_all_executors_agree(self, figure1_graph):
        from repro.mining.validate import cross_validate

        report = cross_validate(figure1_graph, "tt", include_software=True)
        assert report.consistent
        assert report.counts["engine"] == 2
