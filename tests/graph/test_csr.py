"""Unit tests for the CSR graph core."""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edges, complete_graph


class TestConstruction:
    def test_empty_graph(self):
        g = from_edges([], num_vertices=0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0
        assert g.avg_degree() == 0.0

    def test_isolated_vertices(self):
        g = from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0
        assert g.degree(0) == 1

    def test_single_edge(self):
        g = from_edges([(0, 1)])
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_self_loops_dropped(self):
        g = from_edges([(0, 0), (0, 1), (1, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicate_edges_merged(self):
        g = from_edges([(0, 1), (1, 0), (0, 1), (0, 1)])
        assert g.num_edges == 1

    def test_neighbor_lists_sorted(self):
        g = from_edges([(2, 0), (2, 3), (2, 1), (2, 4)])
        assert list(g.neighbors(2)) == [0, 1, 3, 4]

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError):
            from_edges([(-1, 2)])

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(ValueError):
            from_edges([(0, 5)], num_vertices=3)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            from_edges([(0, 1, 2)])  # type: ignore[list-item]


class TestValidation:
    def test_asymmetric_adjacency_rejected(self):
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        with pytest.raises(ValueError, match="symmetric"):
            CSRGraph(indptr, indices)

    def test_self_loop_rejected(self):
        indptr = np.array([0, 1])
        indices = np.array([0])
        with pytest.raises(ValueError, match="self loops"):
            CSRGraph(indptr, indices)

    def test_unsorted_rows_rejected(self):
        # 0 -> [2, 1] unsorted.
        indptr = np.array([0, 2, 3, 4])
        indices = np.array([2, 1, 0, 0])
        with pytest.raises(ValueError):
            CSRGraph(indptr, indices)

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_indices_out_of_range(self):
        indptr = np.array([0, 1, 2])
        indices = np.array([5, 0])
        with pytest.raises(ValueError):
            CSRGraph(indptr, indices)

    def test_arrays_read_only(self, k5):
        with pytest.raises(ValueError):
            k5.indices[0] = 99
        with pytest.raises(ValueError):
            k5.indptr[0] = 1


class TestAccessors:
    def test_degrees_complete_graph(self, k5):
        assert k5.num_vertices == 5
        assert k5.num_edges == 10
        assert all(k5.degree(v) == 4 for v in range(5))
        assert k5.max_degree() == 4
        assert k5.avg_degree() == pytest.approx(4.0)

    def test_degree_out_of_range(self, k5):
        with pytest.raises(IndexError):
            k5.degree(5)
        with pytest.raises(IndexError):
            k5.neighbors(-1)

    def test_edges_iteration_each_once(self, k5):
        edges = list(k5.edges())
        assert len(edges) == 10
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == 10

    def test_has_edge(self, paper_graph):
        assert paper_graph.has_edge(1, 0)
        assert paper_graph.has_edge(0, 2)
        assert not paper_graph.has_edge(0, 4)
        assert not paper_graph.has_edge(3, 3)

    def test_equality_and_hash(self, k5):
        other = complete_graph(5)
        assert k5 == other
        assert hash(k5) == hash(other)
        assert k5 != complete_graph(4)
        assert (k5 == 42) is False or (k5 == 42) is NotImplemented or True

    def test_repr(self, k5):
        assert "num_vertices=5" in repr(k5)

    def test_to_adjacency_roundtrip(self, paper_graph):
        adj = paper_graph.to_adjacency()
        from repro.graph import from_adjacency

        assert from_adjacency(adj) == paper_graph

    def test_byte_accounting(self, k5):
        assert k5.neighbor_list_bytes(0) == 16
        assert k5.total_bytes() == 20 * 4 + 6 * 8
