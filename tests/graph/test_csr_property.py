"""Property-based tests of the CSR invariants under random edge lists."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edges

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=120
)


class TestBuilderProperties:
    @given(edge_lists)
    @settings(max_examples=150)
    def test_invariants_always_hold(self, edges):
        g = from_edges(edges)
        # Sorted strictly increasing rows.
        for v in range(g.num_vertices):
            nbrs = g.neighbors(v)
            assert all(nbrs[i] < nbrs[i + 1] for i in range(len(nbrs) - 1))
            assert v not in nbrs
        # Symmetry.
        for u, v in g.edges():
            assert g.has_edge(v, u)

    @given(edge_lists)
    @settings(max_examples=100)
    def test_edge_count_matches_cleaned_input(self, edges):
        g = from_edges(edges)
        cleaned = {frozenset(e) for e in edges if e[0] != e[1]}
        assert g.num_edges == len(cleaned)

    @given(edge_lists)
    @settings(max_examples=100)
    def test_degree_sum_is_twice_edges(self, edges):
        g = from_edges(edges)
        assert int(g.degrees().sum()) == 2 * g.num_edges

    @given(edge_lists)
    @settings(max_examples=60)
    def test_rebuild_is_identity(self, edges):
        g = from_edges(edges)
        rebuilt = from_edges(list(g.edges()), num_vertices=g.num_vertices)
        assert rebuilt == g

    @given(edge_lists)
    @settings(max_examples=60)
    def test_has_edge_consistent_with_edges(self, edges):
        g = from_edges(edges)
        listed = set(g.edges())
        for u in range(g.num_vertices):
            for v in range(u + 1, g.num_vertices):
                assert g.has_edge(u, v) == ((u, v) in listed)
