"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    planted_cliques,
    powerlaw_configuration,
    rmat,
    star_graph,
)
from repro.mining import count


class TestErdosRenyi:
    def test_determinism(self):
        assert erdos_renyi(100, 0.1, seed=3) == erdos_renyi(100, 0.1, seed=3)

    def test_different_seeds_differ(self):
        assert erdos_renyi(100, 0.1, seed=1) != erdos_renyi(100, 0.1, seed=2)

    def test_p_zero_empty(self):
        assert erdos_renyi(50, 0.0, seed=0).num_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi(10, 1.0, seed=0)
        assert g.num_edges == 45

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.1
        g = erdos_renyi(n, p, seed=42)
        expected = p * n * (n - 1) / 2
        assert 0.8 * expected < g.num_edges < 1.2 * expected

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_determinism(self):
        assert barabasi_albert(200, 3, seed=5) == barabasi_albert(200, 3, seed=5)

    def test_average_degree_about_2m(self):
        g = barabasi_albert(500, 4, seed=1)
        assert 6 < g.avg_degree() < 9

    def test_heavy_tail(self):
        g = barabasi_albert(1000, 5, seed=2)
        assert g.max_degree() > 4 * g.avg_degree()

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)
        with pytest.raises(ValueError):
            barabasi_albert(10, 10)


class TestPowerlawConfiguration:
    def test_determinism(self):
        a = powerlaw_configuration(300, exponent=2.5, seed=9)
        b = powerlaw_configuration(300, exponent=2.5, seed=9)
        assert a == b

    def test_max_degree_cap_roughly_respected(self):
        g = powerlaw_configuration(
            2000, exponent=2.2, min_degree=2, max_degree=50, seed=4
        )
        # Erased configuration model can only lose edges, never gain.
        assert g.max_degree() <= 50

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            powerlaw_configuration(0)
        with pytest.raises(ValueError):
            powerlaw_configuration(10, min_degree=0)


class TestPlantedCliques:
    def test_cliques_present(self):
        g = planted_cliques(100, num_cliques=5, clique_size=5, seed=0)
        assert count(g, "5cl") >= 5 - 2  # overlaps may merge cliques

    def test_background_only(self):
        g = planted_cliques(50, num_cliques=0, clique_size=3, background_p=0.2, seed=1)
        assert g.num_edges > 0

    def test_clique_too_large(self):
        with pytest.raises(ValueError):
            planted_cliques(4, num_cliques=1, clique_size=5)


class TestRmat:
    def test_size(self):
        g = rmat(8, 4, seed=0)
        assert g.num_vertices == 256

    def test_determinism(self):
        assert rmat(8, 4, seed=7) == rmat(8, 4, seed=7)

    def test_skew(self):
        g = rmat(10, 8, seed=1)
        assert g.max_degree() > 3 * g.avg_degree()

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            rmat(4, 2, a=0.5, b=0.3, c=0.3)


class TestFixedShapes:
    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15

    def test_star(self):
        g = star_graph(7)
        assert g.num_vertices == 8
        assert g.degree(0) == 7
        assert g.max_degree() == 7

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in range(5))

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2
