"""Round-trip persistence of the shipped dataset analogs."""

import pytest

from repro.graph import (
    dataset_names,
    load_dataset,
    load_edge_list,
    load_npz,
    save_edge_list,
    save_npz,
)


@pytest.mark.parametrize("name", ["As", "Mi"])
def test_dataset_edge_list_roundtrip(tmp_path, name):
    g = load_dataset(name)
    path = tmp_path / f"{name}.txt"
    save_edge_list(g, path)
    loaded = load_edge_list(path, num_vertices=g.num_vertices)
    assert loaded == g


@pytest.mark.parametrize("name", ["As", "Or"])
def test_dataset_npz_roundtrip(tmp_path, name):
    g = load_dataset(name)
    path = tmp_path / f"{name}.npz"
    save_npz(g, path)
    assert load_npz(path) == g


def test_npz_smaller_than_text(tmp_path):
    g = load_dataset("As")
    txt = tmp_path / "g.txt"
    npz = tmp_path / "g.npz"
    save_edge_list(g, txt)
    save_npz(g, npz)
    assert npz.stat().st_size < txt.stat().st_size


def test_loaded_graph_mines_identically(tmp_path):
    from repro.mining import count

    g = load_dataset("As")
    path = tmp_path / "as.txt"
    save_edge_list(g, path)
    loaded = load_edge_list(path, num_vertices=g.num_vertices)
    assert count(loaded, "tc") == count(g, "tc")
