"""Tests for dataset analogs, persistence, and statistics."""

import numpy as np
import pytest

from repro.graph import (
    DATASET_SPECS,
    dataset_names,
    degree_histogram,
    from_edges,
    graph_stats,
    load_dataset,
    load_edge_list,
    load_npz,
    save_edge_list,
    save_npz,
)
from repro.graph.datasets import CACHE_SCALE


class TestDatasets:
    def test_six_names_in_paper_order(self):
        assert dataset_names() == ["As", "Mi", "Yo", "Pa", "Lj", "Or"]

    def test_specs_cover_all(self):
        assert set(DATASET_SPECS) == set(dataset_names())

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_deterministic(self):
        load_dataset.cache_clear()
        a = load_dataset("As")
        load_dataset.cache_clear()
        b = load_dataset("As")
        assert a == b

    def test_degree_ordering_default(self):
        g = load_dataset("Mi")
        degrees = g.degrees()
        assert degrees[0] == g.max_degree()

    @pytest.mark.parametrize("name", ["As", "Mi", "Yo", "Pa", "Lj", "Or"])
    def test_analog_regimes(self, name):
        """Each analog must sit in its paper cache regime (DESIGN.md)."""
        g = load_dataset(name)
        shared = 4 * 1024 * 1024 // CACHE_SCALE
        if name in ("As", "Mi"):
            assert g.total_bytes() < shared, f"{name} must fit the shared cache"
        else:
            assert g.total_bytes() > shared, f"{name} must exceed the shared cache"

    def test_yo_lowest_average_degree(self):
        avg = {n: load_dataset(n).avg_degree() for n in dataset_names()}
        assert min(avg, key=avg.get) == "Yo"

    def test_or_highest_average_degree(self):
        avg = {n: load_dataset(n).avg_degree() for n in dataset_names()}
        assert max(avg, key=avg.get) == "Or"

    def test_pa_low_max_degree(self):
        maxes = {n: load_dataset(n).max_degree() for n in dataset_names()}
        assert min(maxes, key=maxes.get) == "Pa"


class TestIO:
    def test_edge_list_roundtrip(self, tmp_path, small_random):
        path = tmp_path / "g.txt"
        save_edge_list(small_random, path)
        loaded = load_edge_list(path, num_vertices=small_random.num_vertices)
        assert loaded == small_random

    def test_edge_list_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n% other\n\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_edge_list_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            load_edge_list(path)

    def test_npz_roundtrip(self, tmp_path, small_random):
        path = tmp_path / "g.npz"
        save_npz(small_random, path)
        assert load_npz(path) == small_random

    def test_npz_wrong_archive(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError, match="not a repro graph"):
            load_npz(path)


class TestStats:
    def test_table1_row(self, k5):
        s = graph_stats(k5)
        assert s.row() == (5, 10, 4.0, 4)

    def test_empty(self):
        s = graph_stats(from_edges([], num_vertices=0))
        assert s.num_vertices == 0
        assert s.median_degree == 0.0

    def test_degree_histogram(self, star10):
        hist = degree_histogram(star10)
        assert hist[1] == 10
        assert hist[10] == 1

    def test_histogram_empty(self):
        hist = degree_histogram(from_edges([], num_vertices=0))
        assert hist.sum() == 0
