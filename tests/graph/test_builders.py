"""Tests for graph builders and relabelling."""

import numpy as np
import pytest

from repro.graph import (
    from_adjacency,
    from_edges,
    induced_subgraph,
    relabel_by_degree,
    star_graph,
)


class TestFromAdjacency:
    def test_symmetrizes(self):
        g = from_adjacency({0: [1, 2], 1: [], 2: []})
        assert g.has_edge(1, 0)
        assert g.has_edge(2, 0)
        assert g.num_edges == 2

    def test_empty(self):
        g = from_adjacency({})
        assert g.num_vertices == 0

    def test_isolated_key(self):
        g = from_adjacency({3: []})
        assert g.num_vertices == 4
        assert g.num_edges == 0


class TestInducedSubgraph:
    def test_triangle_from_k5(self, k5):
        sub, ids = induced_subgraph(k5, [0, 2, 4])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3
        assert list(ids) == [0, 2, 4]

    def test_disconnected_selection(self, p4):
        sub, ids = induced_subgraph(p4, [0, 3])
        assert sub.num_vertices == 2
        assert sub.num_edges == 0

    def test_duplicates_collapsed(self, k5):
        sub, ids = induced_subgraph(k5, [1, 1, 2])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1

    def test_out_of_range_rejected(self, k5):
        with pytest.raises(ValueError):
            induced_subgraph(k5, [0, 99])


class TestRelabelByDegree:
    def test_star_center_becomes_zero(self):
        g = star_graph(6)
        # Shuffle so the hub is not already vertex 0.
        shuffled = from_edges([(5, i) for i in [0, 1, 2, 3, 4, 6]])
        relabelled = relabel_by_degree(shuffled)
        assert relabelled.degree(0) == relabelled.max_degree()

    def test_preserves_structure(self, small_random):
        relabelled = relabel_by_degree(small_random)
        assert relabelled.num_edges == small_random.num_edges
        assert sorted(relabelled.degrees()) == sorted(small_random.degrees())

    def test_descending_order(self, small_random):
        relabelled = relabel_by_degree(small_random)
        degrees = relabelled.degrees()
        assert all(degrees[i] >= degrees[i + 1] for i in range(len(degrees) - 1))

    def test_ascending_option(self, small_random):
        relabelled = relabel_by_degree(small_random, descending=False)
        degrees = relabelled.degrees()
        assert all(degrees[i] <= degrees[i + 1] for i in range(len(degrees) - 1))
