"""Tests for traversal utilities and the small-world / SBM generators."""

import numpy as np
import pytest

from repro.graph import (
    bfs_distances,
    bfs_order,
    clustering_coefficient,
    complete_graph,
    connected_components,
    cycle_graph,
    erdos_renyi,
    from_edges,
    largest_component_fraction,
    path_graph,
    star_graph,
    stochastic_block,
    triangle_count_reference,
    watts_strogatz,
)
from repro.mining import count


class TestBFS:
    def test_order_starts_at_source(self, p4):
        assert bfs_order(p4, 0)[0] == 0

    def test_order_covers_component(self, c6):
        assert sorted(bfs_order(c6, 3)) == list(range(6))

    def test_distances_path(self, p4):
        assert list(bfs_distances(p4, 0)) == [0, 1, 2, 3]

    def test_unreachable_minus_one(self):
        g = from_edges([(0, 1)], num_vertices=4)
        dist = bfs_distances(g, 0)
        assert dist[1] == 1
        assert dist[2] == -1 and dist[3] == -1

    def test_source_out_of_range(self, p4):
        with pytest.raises(IndexError):
            bfs_order(p4, 99)
        with pytest.raises(IndexError):
            bfs_distances(p4, -1)


class TestComponents:
    def test_single_component(self, c6):
        comp = connected_components(c6)
        assert len(set(comp)) == 1

    def test_two_components(self):
        g = from_edges([(0, 1), (2, 3)])
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]

    def test_isolated_vertices_each_own(self):
        g = from_edges([], num_vertices=3)
        assert len(set(connected_components(g))) == 3

    def test_largest_fraction(self):
        g = from_edges([(0, 1), (1, 2), (3, 4)], num_vertices=5)
        assert largest_component_fraction(g) == pytest.approx(0.6)

    def test_largest_fraction_empty(self):
        assert largest_component_fraction(from_edges([], num_vertices=0)) == 0.0


class TestTriangleReference:
    def test_known_shapes(self):
        assert triangle_count_reference(complete_graph(5)) == 10
        assert triangle_count_reference(cycle_graph(5)) == 0
        assert triangle_count_reference(star_graph(8)) == 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_agrees_with_mining_engine(self, seed):
        g = erdos_renyi(80, 0.15, seed=seed)
        assert triangle_count_reference(g) == count(g, "tc")

    def test_clustering_bounds(self, small_random):
        cc = clustering_coefficient(small_random)
        assert 0.0 <= cc <= 1.0

    def test_clustering_complete(self):
        assert clustering_coefficient(complete_graph(6)) == pytest.approx(1.0)

    def test_clustering_no_wedges(self):
        g = from_edges([(0, 1)], num_vertices=2)
        assert clustering_coefficient(g) == 0.0


class TestWattsStrogatz:
    def test_zero_rewiring_is_lattice(self):
        g = watts_strogatz(20, 4, 0.0, seed=0)
        assert all(g.degree(v) == 4 for v in range(20))

    def test_determinism(self):
        assert watts_strogatz(50, 4, 0.2, seed=3) == watts_strogatz(
            50, 4, 0.2, seed=3
        )

    def test_high_clustering_at_low_p(self):
        lattice = watts_strogatz(200, 6, 0.0, seed=0)
        random_ish = erdos_renyi(200, 6 / 199, seed=0)
        assert clustering_coefficient(lattice) > clustering_coefficient(
            random_ish
        ) + 0.2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz(10, 10, 0.1)  # k >= n
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, 1.5)


class TestStochasticBlock:
    def test_blocks_denser_inside(self):
        g = stochastic_block([30, 30], 0.4, 0.02, seed=1)
        inside = sum(
            1 for u, v in g.edges() if (u < 30) == (v < 30)
        )
        outside = g.num_edges - inside
        assert inside > 3 * outside

    def test_determinism(self):
        a = stochastic_block([10, 10], 0.5, 0.1, seed=7)
        b = stochastic_block([10, 10], 0.5, 0.1, seed=7)
        assert a == b

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            stochastic_block([5, 5], 0.1, 0.5)  # p_out > p_in
