"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats"])

    def test_mutually_exclusive_sources(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stats", "--dataset", "As", "--file", "x.txt"]
            )


class TestCommands:
    def test_stats_dataset(self, capsys):
        assert main(["stats", "--dataset", "As"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "950" in out

    def test_stats_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        assert main(["stats", "--file", str(path)]) == 0
        assert "3" in capsys.readouterr().out

    def test_plan(self, capsys):
        assert main(["plan", "tt"]) == 0
        out = capsys.readouterr().out
        assert "level 0" in out and "restrictions" in out

    def test_plan_edge_induced(self, capsys):
        assert main(["plan", "tt", "--edge-induced"]) == 0
        assert "edge-induced" in capsys.readouterr().out

    def test_count(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n0 3\n")
        assert main(["count", "tc", "--file", str(path)]) == 0
        assert "1" in capsys.readouterr().out

    def test_count_with_listing(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        assert main(["count", "tc", "--file", str(path), "--list", "5"]) == 0
        assert "0-1-2" in capsys.readouterr().out

    def test_motifs(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n0 3\n")
        assert main(["motifs", "3", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tc" in out and "wedge" in out

    def test_simulate_fingers(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("\n".join(f"{i} {j}" for i in range(12)
                                  for j in range(i + 1, 12)))
        assert main([
            "simulate", "tc", "--file", str(path),
            "--design", "fingers", "--pes", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "FINGERS" in out and "cycles" in out

    def test_simulate_flexminer_with_trace(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("\n".join(f"{i} {j}" for i in range(10)
                                  for j in range(i + 1, 10)))
        assert main([
            "simulate", "tc", "--file", str(path),
            "--design", "flexminer", "--pes", "2", "--trace",
        ]) == 0
        assert "PE0" in capsys.readouterr().out

    def test_simulate_software(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("\n".join(f"{i} {j}" for i in range(10)
                                  for j in range(i + 1, 10)))
        assert main([
            "simulate", "tc", "--file", str(path),
            "--design", "software", "--pes", "2",
        ]) == 0
        assert "SW-2core" in capsys.readouterr().out

    def test_simulate_functional(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("\n".join(f"{i} {j}" for i in range(10)
                                  for j in range(i + 1, 10)))
        assert main([
            "simulate", "tc", "--file", str(path),
            "--design", "functional",
        ]) == 0
        out = capsys.readouterr().out
        assert "functional" in out
        assert "120" in out  # C(10,3) triangles in K10
        assert "n/a" in out

    def test_simulate_functional_trace_rejected(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        assert main([
            "simulate", "tc", "--file", str(path),
            "--design", "functional", "--trace",
        ]) == 2
        assert "does not support" in capsys.readouterr().err

    def test_backends_lists_registry(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("fingers", "flexminer", "software", "functional"):
            assert name in out
        assert "FingersConfig" in out
        assert "key=v1" in out

    def test_compare(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("\n".join(f"{i} {j}" for i in range(12)
                                  for j in range(i + 1, 12)))
        assert main(["compare", "tc", "--file", str(path), "--pes", "1"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_bench_table2(self, capsys):
        assert main(["bench", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_bench_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])


class TestValidateCommand:
    def test_validate_consistent(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n0 3\n")
        assert main(["validate", "tc", "--file", str(path)]) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_validate_with_software(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        assert main(["validate", "tc", "--file", str(path), "--software"]) == 0
        assert "software" in capsys.readouterr().out
