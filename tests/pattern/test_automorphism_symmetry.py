"""Tests for automorphism groups and symmetry-breaking restrictions."""

import pytest

from repro.pattern import (
    Pattern,
    automorphism_count,
    automorphisms,
    named_pattern,
    orbits,
    symmetry_restrictions,
)
from repro.pattern.symmetry import Restriction


class TestAutomorphisms:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("tc", 6),       # S3
            ("4cl", 24),     # S4
            ("5cl", 120),    # S5
            ("tt", 2),       # swap the two free triangle vertices
            ("cyc", 8),      # dihedral D4
            ("dia", 4),      # swap deg-3 pair x swap deg-2 pair
            ("wedge", 2),
            ("edge", 2),
            ("3path", 2),
            ("star3", 6),    # S3 on the leaves
        ],
    )
    def test_group_orders(self, name, expected):
        assert automorphism_count(named_pattern(name)) == expected

    def test_identity_always_present(self):
        p = Pattern(4, [(0, 1), (1, 2), (2, 3)])
        assert tuple(range(4)) in automorphisms(p)

    def test_asymmetric_pattern(self):
        # Triangle with a leaf on one vertex and a 2-path on another:
        # the two degree-3 vertices have distinguishable attachments.
        p = Pattern(6, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 4), (4, 5)])
        assert automorphism_count(p) == 1

    def test_automorphisms_preserve_edges(self):
        p = named_pattern("dia")
        for perm in automorphisms(p):
            for a, b in p.edges():
                assert p.has_edge(perm[a], perm[b])


class TestOrbits:
    def test_clique_single_orbit(self):
        assert orbits(named_pattern("4cl")) == [frozenset({0, 1, 2, 3})]

    def test_tt_orbits(self):
        obs = orbits(named_pattern("tt"))
        assert frozenset({1, 2}) in obs
        assert frozenset({0}) in obs
        assert frozenset({3}) in obs

    def test_star_orbits(self):
        obs = orbits(named_pattern("star3"))
        assert frozenset({0}) in obs
        assert frozenset({1, 2, 3}) in obs


class TestRestrictions:
    def test_triangle_total_order(self):
        rs = symmetry_restrictions(named_pattern("tc"))
        assert set(rs) == {
            Restriction(0, 1),
            Restriction(0, 2),
            Restriction(1, 2),
        }

    def test_asymmetric_none(self):
        p = Pattern(6, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 4), (4, 5)])
        assert symmetry_restrictions(p) == ()

    def test_diamond_two_pairs(self):
        # In its canonical labelling, dia has deg-3 vertices {0, 1} and
        # deg-2 vertices {2, 3}.
        rs = symmetry_restrictions(named_pattern("dia"))
        assert set(rs) == {Restriction(0, 1), Restriction(2, 3)}

    def test_all_lower_bounds(self):
        for name in ["tc", "4cl", "5cl", "tt", "cyc", "dia"]:
            for r in symmetry_restrictions(named_pattern(name)):
                assert r.smaller < r.larger
                assert r.applies_at() == r.larger

    def test_count_divides_group_order(self):
        """Restriction count per level can never exceed earlier levels."""
        rs = symmetry_restrictions(named_pattern("5cl"))
        # Full order: 4 + 3 + 2 + 1 = 10 pairwise restrictions.
        assert len(rs) == 10
