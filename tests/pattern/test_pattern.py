"""Tests for the Pattern type and named patterns."""

import pytest

from repro.pattern import Pattern, named_pattern, PATTERN_NAMES


class TestPatternBasics:
    def test_triangle(self):
        p = named_pattern("tc")
        assert p.num_vertices == 3
        assert p.num_edges == 3
        assert p.is_clique()
        assert p.is_connected()

    def test_edges_listed_once(self):
        p = named_pattern("4cl")
        assert len(p.edges()) == 6
        assert all(a < b for a, b in p.edges())

    def test_neighbors_and_degree(self):
        tt = named_pattern("tt")
        assert tt.neighbors(0) == (1, 2, 3)
        assert tt.degree(0) == 3
        assert tt.degree(3) == 1

    def test_adjacency_mask(self):
        p = Pattern(3, [(0, 1)])
        assert p.adj_mask(0) == 0b010
        assert p.adj_mask(1) == 0b001
        assert p.adj_mask(2) == 0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Pattern(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Pattern(3, [(0, 3)])

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            Pattern(0, [])

    def test_connectivity(self):
        assert Pattern(1, []).is_connected()
        assert not Pattern(3, [(0, 1)]).is_connected()
        assert Pattern(3, [(0, 1), (1, 2)]).is_connected()

    def test_equality_hash(self):
        a = Pattern(3, [(0, 1), (1, 2), (0, 2)])
        assert a == named_pattern("tc")
        assert hash(a) == hash(named_pattern("tc"))
        assert a != Pattern(3, [(0, 1), (1, 2)])


class TestRelabel:
    def test_identity(self):
        p = named_pattern("tt")
        assert p.relabel([0, 1, 2, 3]) == p

    def test_structure_preserved(self):
        p = named_pattern("dia")
        q = p.relabel([3, 2, 1, 0])
        assert q.num_edges == p.num_edges
        assert sorted(q.degree(v) for v in range(4)) == sorted(
            p.degree(v) for v in range(4)
        )

    def test_semantics(self):
        # Order [2, 0, 1] means old vertex 2 becomes position 0.
        p = Pattern(3, [(0, 1)])
        q = p.relabel([2, 0, 1])
        assert q.has_edge(1, 2)
        assert not q.has_edge(0, 1)

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            named_pattern("tc").relabel([0, 0, 1])


class TestNamedPatterns:
    @pytest.mark.parametrize("name", ["tc", "4cl", "5cl", "tt", "cyc", "dia"])
    def test_benchmark_patterns_exist(self, name):
        p = named_pattern(name)
        assert p.is_connected()

    def test_pattern_names_list(self):
        assert PATTERN_NAMES == ["tc", "4cl", "5cl", "tt", "cyc", "dia", "3mc"]

    def test_3mc_is_multipattern(self):
        with pytest.raises(ValueError, match="multi-pattern"):
            named_pattern("3mc")

    def test_unknown(self):
        with pytest.raises(KeyError):
            named_pattern("17cl")

    def test_paper_shapes(self):
        # tt = triangle plus a degree-1 tail on one triangle vertex.
        tt = named_pattern("tt")
        assert sorted(tt.degree(v) for v in range(4)) == [1, 2, 2, 3]
        # cyc = 4-cycle, all degree 2.
        cyc = named_pattern("cyc")
        assert all(cyc.degree(v) == 2 for v in range(4))
        # dia = K4 minus an edge.
        dia = named_pattern("dia")
        assert sorted(dia.degree(v) for v in range(4)) == [2, 2, 3, 3]
