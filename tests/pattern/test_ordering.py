"""Tests for the cost-model-driven vertex-order search."""

import pytest

from repro.graph import erdos_renyi, load_dataset
from repro.mining import count
from repro.mining.engine import count_embeddings
from repro.pattern import compile_plan, named_pattern
from repro.pattern.ordering import (
    OrderCostModel,
    compile_plan_searched,
    estimate_plan_cost,
    search_vertex_order,
)


class TestCostModel:
    def test_from_graph(self, small_random):
        model = OrderCostModel.from_graph(small_random)
        assert model.num_vertices == 30
        assert model.avg_degree > 0
        assert 0 < model.density <= 1

    def test_default(self):
        model = OrderCostModel.default()
        assert model.density < 0.01

    def test_cost_positive(self):
        model = OrderCostModel.default()
        for name in ["tc", "4cl", "tt", "cyc", "dia"]:
            plan = compile_plan(named_pattern(name))
            assert estimate_plan_cost(plan, model) > 0

    def test_denser_graph_costs_more(self):
        plan = compile_plan(named_pattern("tc"))
        sparse = OrderCostModel(num_vertices=10_000, avg_degree=4.0)
        dense = OrderCostModel(num_vertices=10_000, avg_degree=64.0)
        assert estimate_plan_cost(plan, dense) > estimate_plan_cost(plan, sparse)


class TestSearch:
    @pytest.mark.parametrize("name", ["tc", "4cl", "5cl", "tt", "cyc", "dia"])
    def test_searched_order_valid(self, name):
        pattern = named_pattern(name)
        order = search_vertex_order(pattern)
        assert sorted(order) == list(range(pattern.num_vertices))
        # Connectivity-preserving: compile must succeed.
        compile_plan(pattern, order=order)

    @pytest.mark.parametrize("name", ["tc", "tt", "cyc", "dia"])
    def test_searched_cost_never_worse_than_greedy(self, name):
        pattern = named_pattern(name)
        model = OrderCostModel.default()
        searched = compile_plan(
            pattern, order=search_vertex_order(pattern, model=model)
        )
        from repro.pattern.compiler import choose_vertex_order

        greedy = compile_plan(pattern, order=choose_vertex_order(pattern))
        assert (
            estimate_plan_cost(searched, model)
            <= estimate_plan_cost(greedy, model) * 1.0001
        )

    @pytest.mark.parametrize("name", ["tt", "cyc", "dia"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_any_order_same_counts(self, name, seed):
        """Orders are performance-only: every valid order counts the same."""
        g = erdos_renyi(20, 0.35, seed=seed)
        pattern = named_pattern(name)
        reference = count(g, name)
        plan = compile_plan_searched(pattern, graph=g)
        assert count_embeddings(g, plan) == reference

    def test_single_vertex(self):
        from repro.pattern import Pattern

        assert search_vertex_order(Pattern(1, [])) == (0,)

    def test_disconnected_rejected(self):
        from repro.pattern import Pattern

        with pytest.raises(ValueError):
            search_vertex_order(Pattern(4, [(0, 1), (2, 3)]))

    def test_graph_aware_compile(self):
        g = load_dataset("As")
        plan = compile_plan_searched(named_pattern("tt"), graph=g)
        assert plan.num_levels == 4
