"""Tests for the plan compiler: orders, schedules, sharing, restrictions."""

import pytest

from repro.pattern import (
    OpKind,
    Pattern,
    choose_vertex_order,
    compile_plan,
    named_pattern,
)


class TestVertexOrder:
    def test_order_is_permutation(self):
        for name in ["tc", "4cl", "tt", "cyc", "dia"]:
            p = named_pattern(name)
            order = choose_vertex_order(p)
            assert sorted(order) == list(range(p.num_vertices))

    def test_connectivity_preserving(self):
        for name in ["tc", "4cl", "5cl", "tt", "cyc", "dia", "house"]:
            p = named_pattern(name)
            order = choose_vertex_order(p)
            q = p.relabel(order)
            for j in range(1, q.num_vertices):
                assert any(q.has_edge(i, j) for i in range(j))

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            choose_vertex_order(Pattern(4, [(0, 1), (2, 3)]))

    def test_tt_starts_at_triangle_hub(self):
        # Vertex 0 (degree 3) must come first.
        assert choose_vertex_order(named_pattern("tt"))[0] == 0

    def test_single_vertex(self):
        assert choose_vertex_order(Pattern(1, [])) == (0,)


class TestCompiledPlans:
    def test_tt_matches_paper_figure2(self):
        """The compiled tailed-triangle plan must be exactly Figure 2."""
        plan = compile_plan(named_pattern("tt"))
        # Level 0: one op, S = N(u0), serving levels 1, 2, 3.
        lvl0 = plan.levels[0]
        assert lvl0.num_ops == 1
        assert lvl0.ops[0].kind is OpKind.INIT_COPY
        assert lvl0.ops[0].serves == (1, 2, 3)
        # Level 1: S2 = S ∩ N(u1) and S3(2) = S − N(u1) — two distinct ops.
        lvl1 = plan.levels[1]
        kinds = sorted(op.kind.value for op in lvl1.ops)
        assert kinds == ["intersect", "subtract"]
        # Level 2: S3 = S3(2) − N(u2).
        lvl2 = plan.levels[2]
        assert lvl2.num_ops == 1
        assert lvl2.ops[0].kind is OpKind.SUBTRACT

    def test_clique_shares_everything(self):
        """k-clique has exactly one op per level (all S_j identical)."""
        for name, k in [("tc", 3), ("4cl", 4), ("5cl", 5)]:
            plan = compile_plan(named_pattern(name))
            assert all(s.num_ops == 1 for s in plan.levels), name
            assert plan.max_set_parallelism() == 1

    def test_cyc_anti_subtraction(self):
        """The 4-cycle plan postpones u2's init to level 1 and
        anti-subtracts N(u0)."""
        plan = compile_plan(named_pattern("cyc"))
        anti = [
            op
            for sched in plan.levels
            for op in sched.ops
            if op.kind is OpKind.ANTI_SUBTRACT
        ]
        assert len(anti) == 1
        assert anti[0].operand_level == 0

    def test_extend_states_defined(self):
        for name in ["tc", "4cl", "5cl", "tt", "cyc", "dia", "house"]:
            plan = compile_plan(named_pattern(name))
            for sched in plan.levels:
                assert sched.extend_state is not None

    def test_edge_induced_has_no_subtractions(self):
        plan = compile_plan(named_pattern("tt"), vertex_induced=False)
        kinds = {op.kind for s in plan.levels for op in s.ops}
        assert OpKind.SUBTRACT not in kinds
        assert OpKind.ANTI_SUBTRACT not in kinds

    def test_explicit_order(self):
        p = named_pattern("tc")
        plan = compile_plan(p, order=[2, 1, 0])
        assert plan.vertex_order == (2, 1, 0)

    def test_non_connectivity_preserving_order_rejected(self):
        p = named_pattern("tt")  # vertex 3 only touches vertex 0
        with pytest.raises(ValueError, match="connectivity-preserving"):
            compile_plan(p, order=[1, 3, 0, 2])

    def test_describe_mentions_levels(self):
        text = compile_plan(named_pattern("tt")).describe()
        assert "level 0" in text and "level 2" in text

    def test_exclude_levels(self):
        plan = compile_plan(named_pattern("cyc"))
        # In the compiled cyc order, level 2 is non-adjacent to level 0,
        # so u0 must be explicitly excluded from level-2 candidates.
        assert 0 in plan.exclude_levels(2)

    def test_lower_bound_levels_match_restrictions(self):
        plan = compile_plan(named_pattern("tc"))
        assert plan.lower_bound_levels(1) == (0,)
        assert set(plan.lower_bound_levels(2)) == {0, 1}

    def test_total_ops_counts(self):
        plan = compile_plan(named_pattern("tt"))
        assert plan.total_ops() == 4  # 1 + 2 + 1
