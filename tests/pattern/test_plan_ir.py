"""Unit tests for the plan IR types themselves."""

import pytest

from repro.pattern import (
    ExecutionPlan,
    LevelSchedule,
    OpKind,
    Restriction,
    SetOp,
    compile_plan,
    named_pattern,
)


class TestSetOp:
    def test_str_intersect(self):
        op = SetOp(
            kind=OpKind.INTERSECT, operand_level=1, source_state=0,
            result_state=2, serves=(2, 3),
        )
        text = str(op)
        assert "S#2" in text and "N(u1)" in text and "[2, 3]" in text

    def test_str_init(self):
        op = SetOp(
            kind=OpKind.INIT_COPY, operand_level=0, source_state=None,
            result_state=0, serves=(1,),
        )
        assert "copy" in str(op)

    def test_frozen(self):
        op = SetOp(OpKind.INTERSECT, 1, 0, 2, (2,))
        with pytest.raises(AttributeError):
            op.result_state = 5  # type: ignore[misc]


class TestLevelSchedule:
    def test_num_ops(self):
        plan = compile_plan(named_pattern("tt"))
        assert plan.levels[1].num_ops == 2

    def test_schedule_accessor(self):
        plan = compile_plan(named_pattern("tt"))
        assert plan.schedule(0) is plan.levels[0]


class TestRestriction:
    def test_ordering(self):
        assert Restriction(0, 1) < Restriction(0, 2) < Restriction(1, 2)

    def test_applies_at(self):
        assert Restriction(1, 3).applies_at() == 3

    def test_str(self):
        assert str(Restriction(0, 2)) == "v0 < v2"


class TestPlanQueries:
    def test_num_levels(self):
        assert compile_plan(named_pattern("5cl")).num_levels == 5

    def test_max_set_parallelism_tt(self):
        assert compile_plan(named_pattern("tt")).max_set_parallelism() == 2

    def test_cliques_parallelism_one(self):
        for name in ("tc", "4cl", "5cl"):
            assert compile_plan(named_pattern(name)).max_set_parallelism() == 1

    def test_exclude_levels_clique_empty(self):
        # Every clique ancestor is adjacent: no explicit injectivity needed.
        plan = compile_plan(named_pattern("4cl"))
        for level in range(1, 4):
            assert plan.exclude_levels(level) == ()

    def test_lower_bounds_empty_at_level0(self):
        for name in ("tc", "tt", "cyc", "dia"):
            assert compile_plan(named_pattern(name)).lower_bound_levels(0) == ()

    def test_describe_lists_all_ops(self):
        plan = compile_plan(named_pattern("cyc"))
        text = plan.describe()
        assert text.count("S#") >= plan.total_ops()
