"""Tests for plan JSON serialization."""

import json

import pytest

from repro.graph import erdos_renyi
from repro.mining.engine import count_embeddings
from repro.pattern import compile_plan, named_pattern
from repro.pattern.serialize import (
    dump_plan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
)


ALL_PATTERNS = ["tc", "4cl", "5cl", "tt", "cyc", "dia", "wedge", "house"]


class TestRoundTrip:
    @pytest.mark.parametrize("name", ALL_PATTERNS)
    def test_dict_roundtrip_structural(self, name):
        plan = compile_plan(named_pattern(name))
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert rebuilt.pattern == plan.pattern
        assert rebuilt.vertex_order == plan.vertex_order
        assert rebuilt.restrictions == plan.restrictions
        assert rebuilt.levels == plan.levels
        assert rebuilt.vertex_induced == plan.vertex_induced

    @pytest.mark.parametrize("name", ["tt", "cyc"])
    def test_rebuilt_plan_counts_identically(self, name):
        g = erdos_renyi(25, 0.3, seed=3)
        plan = compile_plan(named_pattern(name))
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert count_embeddings(g, rebuilt) == count_embeddings(g, plan)

    def test_file_roundtrip(self, tmp_path):
        plan = compile_plan(named_pattern("tt"))
        path = tmp_path / "tt.json"
        dump_plan(plan, path)
        assert load_plan(path).levels == plan.levels

    def test_json_is_valid_and_stable(self, tmp_path):
        plan = compile_plan(named_pattern("dia"))
        path = tmp_path / "dia.json"
        dump_plan(plan, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        # Dumping twice produces identical bytes (sorted keys).
        path2 = tmp_path / "dia2.json"
        dump_plan(plan, path2)
        assert path.read_text() == path2.read_text()

    def test_edge_induced_flag_preserved(self):
        plan = compile_plan(named_pattern("tt"), vertex_induced=False)
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert rebuilt.vertex_induced is False

    def test_unknown_version_rejected(self):
        plan = compile_plan(named_pattern("tc"))
        data = plan_to_dict(plan)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            plan_from_dict(data)

    def test_simulator_accepts_rebuilt_plan(self):
        from repro.hw.api import FingersConfig, simulate
        from repro.mining import count

        g = erdos_renyi(30, 0.3, seed=4)
        rebuilt = plan_from_dict(plan_to_dict(compile_plan(named_pattern("tc"))))
        res = simulate(g, rebuilt, FingersConfig(num_pes=1))
        assert res.count == count(g, "tc")
