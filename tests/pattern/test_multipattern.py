"""Tests for multi-pattern plan merging and motif enumeration."""

import pytest

from repro.pattern import (
    Pattern,
    compile_multi_plan,
    motif_patterns,
    named_pattern,
)


class TestMotifEnumeration:
    def test_3motifs(self):
        patterns, names = motif_patterns(3)
        assert len(patterns) == 2  # wedge + triangle
        assert set(names) == {"wedge", "tc"}

    def test_4motifs(self):
        patterns, names = motif_patterns(4)
        assert len(patterns) == 6  # classic result
        assert "4cl" in names and "cyc" in names and "dia" in names

    def test_5motifs_count(self):
        patterns, _ = motif_patterns(5)
        assert len(patterns) == 21  # connected graphs on 5 vertices

    def test_all_connected(self):
        patterns, _ = motif_patterns(4)
        assert all(p.is_connected() for p in patterns)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            motif_patterns(1)
        with pytest.raises(ValueError):
            motif_patterns(6)


class TestMultiPlan:
    def test_3mc_shares_level0(self):
        patterns, names = motif_patterns(3)
        multi = compile_multi_plan(patterns, names=names)
        assert multi.num_patterns == 2
        assert multi.shared_prefix >= 1
        # Both plans' level-0 op must be the same unified state.
        s0 = {p.levels[0].ops[0].result_state for p in multi.plans}
        assert len(s0) == 1

    def test_cliques_share_prefix(self):
        multi = compile_multi_plan(
            [named_pattern("tc"), named_pattern("4cl")], names=["tc", "4cl"]
        )
        # The 4-clique prefix is exactly the triangle computation.
        assert multi.shared_prefix >= 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compile_multi_plan([])

    def test_default_names(self):
        multi = compile_multi_plan([named_pattern("tc")])
        assert multi.names == ("p0",)

    def test_state_ids_disjoint_when_plans_differ(self):
        patterns, names = motif_patterns(3)
        multi = compile_multi_plan(patterns, names=names)
        # Level-1 ops differ (intersect vs subtract), so they get
        # different unified states.
        lvl1 = [p.levels[1].ops[0] for p in multi.plans if p.num_levels > 2]
        states = {op.result_state for op in lvl1}
        assert len(states) == len(lvl1)
