"""Property-based tests of compiler invariants over random patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pattern import (
    OpKind,
    Pattern,
    automorphism_count,
    compile_plan,
    symmetry_restrictions,
)


@st.composite
def connected_patterns(draw, max_k=5):
    """Random connected pattern: a random spanning tree plus extra edges."""
    k = draw(st.integers(2, max_k))
    edges = set()
    for v in range(1, k):
        parent = draw(st.integers(0, v - 1))
        edges.add((parent, v))
    extra_pool = [
        (a, b) for a in range(k) for b in range(a + 1, k) if (a, b) not in edges
    ]
    if extra_pool:
        extras = draw(st.lists(st.sampled_from(extra_pool), max_size=len(extra_pool)))
        edges.update(extras)
    return Pattern(k, sorted(edges))


class TestCompilerInvariants:
    @given(connected_patterns())
    @settings(max_examples=120, deadline=None)
    def test_plan_well_formed(self, pattern):
        plan = compile_plan(pattern)
        k = pattern.num_vertices
        assert len(plan.levels) == k - 1
        seen_states: set[int] = set()
        for sched in plan.levels:
            for op in sched.ops:
                # Sources must exist before use; results are fresh.
                if op.source_state is not None:
                    assert op.source_state in seen_states
                assert op.result_state not in seen_states
                seen_states.add(op.result_state)
                # Operand levels never exceed the current level.
                assert op.operand_level <= sched.level
                if op.kind is not OpKind.ANTI_SUBTRACT:
                    assert op.operand_level == sched.level or (
                        op.kind is OpKind.INIT_COPY
                    )
            assert sched.extend_state in seen_states

    @given(connected_patterns())
    @settings(max_examples=120, deadline=None)
    def test_serves_cover_all_future_levels(self, pattern):
        """Every level's candidate set must eventually be materialized."""
        plan = compile_plan(pattern)
        for j in range(1, pattern.num_vertices):
            served = [
                op
                for sched in plan.levels
                for op in sched.ops
                if j in op.serves
            ]
            assert served, f"level {j} never updated"

    @given(connected_patterns())
    @settings(max_examples=100, deadline=None)
    def test_restriction_count_bounded_by_group(self, pattern):
        rs = symmetry_restrictions(pattern.relabel(
            compile_plan(pattern).vertex_order
        ))
        aut = automorphism_count(pattern)
        # A stabilizer chain emits at most sum of (orbit sizes - 1) <= k-1
        # restrictions per stage; trivial groups emit none.
        if aut == 1:
            assert rs == ()
        else:
            assert len(rs) >= 1

    @given(connected_patterns(max_k=4))
    @settings(max_examples=60, deadline=None)
    def test_engine_matches_oracle_random_patterns(self, pattern):
        from repro.graph import erdos_renyi
        from repro.mining import count_instances_bruteforce
        from repro.mining.engine import count_embeddings

        g = erdos_renyi(12, 0.45, seed=pattern.num_edges * 7 + 1)
        plan = compile_plan(pattern)
        assert count_embeddings(g, plan) == count_instances_bruteforce(
            g, pattern
        )
