"""Runtime determinism sanitizer: probes, traces, and the double-run
comparator wired into the sweep executor."""

import numpy as np
import pytest

from repro import sanitize
from repro.bench.runner import clear_cache, configure, reset_stats
from repro.experiments import ResultStore, load_spec, run_sweep
from repro.experiments.executor import sanitized_cell_check
from repro.graph import erdos_renyi
from repro.graph.generators import barabasi_albert


@pytest.fixture(autouse=True)
def _fresh_runner(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    clear_cache()
    reset_stats()
    configure(jobs=None, disk_cache=True)
    yield
    clear_cache()
    reset_stats()
    configure(jobs=None, disk_cache=True)


class TestTraceMachinery:
    def test_emit_is_noop_outside_capture(self):
        sanitize.emit("kernel", "intersect/merge")
        with sanitize.capture() as trace:
            pass
        assert len(trace) == 0

    def test_capture_records_events_in_order(self):
        with sanitize.capture() as trace:
            sanitize.emit("a", "one", 1)
            sanitize.emit("b", "two")
        assert [e.kind for e in trace.events] == ["a", "b"]
        assert trace.events[0].digest != ""
        assert trace.events[1].digest == ""  # presence-only

    def test_captures_do_not_nest(self):
        with sanitize.capture():
            with pytest.raises(RuntimeError, match="nest"):
                with sanitize.capture():
                    pass

    def test_capture_disarms_after_exception(self):
        with pytest.raises(ValueError):
            with sanitize.capture():
                raise ValueError("boom")
        assert not sanitize.is_active()

    def test_payload_digest_array_content(self):
        a = np.array([1, 2, 3], dtype=np.int32)
        b = np.array([1, 2, 3], dtype=np.int32)
        c = np.array([1, 2, 4], dtype=np.int32)
        wide = np.array([1, 2, 3], dtype=np.int64)
        assert sanitize.payload_digest(a) == sanitize.payload_digest(b)
        assert sanitize.payload_digest(a) != sanitize.payload_digest(c)
        # dtype is part of identity: int32 vs int64 must differ.
        assert sanitize.payload_digest(a) != sanitize.payload_digest(wide)

    def test_payload_digest_dict_order_sensitive(self):
        """Key order is deliberately part of the digest — iteration
        order drift is a defect class the sanitizer exists to catch."""
        ab = {"a": 1, "b": 2}
        ba = {"b": 2, "a": 1}
        assert sanitize.payload_digest(ab) != sanitize.payload_digest(ba)

    def test_compare_traces_reports_divergence(self):
        with sanitize.capture() as first:
            sanitize.emit("kernel", "intersect/merge")
            sanitize.emit("rng", "seed", 1)
        with sanitize.capture() as second:
            sanitize.emit("kernel", "intersect/merge")
            sanitize.emit("rng", "seed", 2)
        problems = sanitize.compare_traces(first, second)
        assert len(problems) == 1
        assert "event 1" in problems[0]

    def test_compare_traces_reports_length_mismatch(self):
        with sanitize.capture() as first:
            sanitize.emit("kernel", "a")
        with sanitize.capture() as second:
            pass
        problems = sanitize.compare_traces(first, second)
        assert any("event counts differ" in p for p in problems)

    def test_identical_traces_compare_clean(self):
        with sanitize.capture() as first:
            sanitize.emit("kernel", "a", [1, 2])
        with sanitize.capture() as second:
            sanitize.emit("kernel", "a", [1, 2])
        assert sanitize.compare_traces(first, second) == []

    def test_env_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize.env_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize.env_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.env_enabled()


class TestProbes:
    def test_kernel_dispatch_probe(self):
        from repro.setops.kernels import intersect_adaptive

        a = np.array([1, 2, 3, 4], dtype=np.int32)
        b = np.array([2, 4, 6], dtype=np.int32)
        with sanitize.capture() as trace:
            intersect_adaptive(a, b)
        kinds = [e.kind for e in trace.events]
        assert "kernel" in kinds

    def test_generator_rng_probe(self):
        with sanitize.capture() as trace:
            barabasi_albert(20, 2, seed=7)
        rng_events = [e for e in trace.events if e.kind == "rng"]
        assert [e.label for e in rng_events] == ["barabasi_albert"]
        assert rng_events[0].digest == sanitize.payload_digest(7)

    def test_pool_probe_records_shards(self):
        from repro.core.sharded import per_root_counts_parallel
        from repro.mining.api import plan_for

        graph = erdos_renyi(20, 0.3, seed=3)
        plan = plan_for("tc")
        with sanitize.capture() as trace:
            per_root_counts_parallel(graph, plan, None, 2)
        pool_events = [e for e in trace.events if e.kind == "pool"]
        assert pool_events and pool_events[0].digest != ""


GRAPHS = {"tiny": erdos_renyi(30, 0.3, seed=1)}


def _spec():
    data = {
        "sweep": {
            "name": "sanitize-test",
            "patterns": ["tc"],
            "graphs": ["tiny"],
            "backends": ["functional", "fingers"],
        },
        "configs": {"fingers": {"num_pes": 1}},
    }
    return load_spec(data, available_graphs=["tiny"])


class TestSanitizedSweep:
    def test_sanitized_sweep_passes_on_deterministic_backends(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        outcome = run_sweep(
            _spec(), store=store, graphs=GRAPHS, sanitize=True
        )
        assert outcome.executed == 2

    def test_env_var_arms_the_sweep(self, tmp_path, monkeypatch):
        """REPRO_SANITIZE=1 takes effect without the keyword."""
        calls = []
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        import repro.experiments.executor as ex

        real = ex.sanitized_cell_check
        monkeypatch.setattr(
            ex, "sanitized_cell_check",
            lambda *a, **kw: (calls.append(a), real(*a, **kw))[1],
        )
        store = ResultStore(tmp_path / "store")
        run_sweep(_spec(), store=store, graphs=GRAPHS)
        assert len(calls) == 2

    def test_divergent_backend_is_caught(self):
        """A backend that draws from global RNG state diverges between
        the two sanitized executions and must be flagged."""
        from repro.core.backend import get_backend
        from repro.experiments.spec import Cell

        backend = get_backend("functional")
        config = backend.default_config()
        graph = GRAPHS["tiny"]
        cell = Cell(pattern="tc", graph="tiny", backend="functional")

        ticker = {"n": 0}
        real_run = backend.run

        def noisy_run(*args, **kwargs):
            ticker["n"] += 1
            sanitize.emit("rng", "hidden-global-state", ticker["n"])
            return real_run(*args, **kwargs)

        backend_like = type(
            "Noisy", (), {"run": staticmethod(noisy_run)}
        )()
        with pytest.raises(sanitize.SanitizerError, match="diverged"):
            sanitized_cell_check(backend_like, graph, cell, config, None)

    def test_result_mismatch_is_caught(self):
        from repro.experiments.spec import Cell

        class FlakyResult:
            def __init__(self, n):
                self.count = n
                self.counts = (n,)
                self.cycles = 0.0

        class FlakyBackend:
            def __init__(self):
                self.n = 0

            def run(self, *args, **kwargs):
                self.n += 1
                return FlakyResult(self.n)

        cell = Cell(pattern="tc", graph="tiny", backend="functional")
        with pytest.raises(sanitize.SanitizerError, match="results differ"):
            sanitized_cell_check(
                FlakyBackend(), GRAPHS["tiny"], cell, None, None
            )
