"""Persistent result cache: keys, round-trips, and invalidation."""

import pickle

import pytest

import repro.cache as cache_mod
from repro.cache import (
    SCHEMA_VERSION,
    DiskCache,
    cache_dir,
    default_cache,
    disk_memoize,
    graph_fingerprint,
    make_key,
    roots_fingerprint,
)
from repro.graph import erdos_renyi


class TestFingerprints:
    def test_graph_fingerprint_content_based(self):
        a = erdos_renyi(30, 0.3, seed=1)
        b = erdos_renyi(30, 0.3, seed=1)
        c = erdos_renyi(30, 0.3, seed=2)
        assert graph_fingerprint(a) == graph_fingerprint(b)
        assert graph_fingerprint(a) != graph_fingerprint(c)

    def test_roots_none_is_all(self):
        assert roots_fingerprint(None) == "all"

    def test_roots_full_array_no_summary_collision(self):
        # Regression: the old (len, first, last) summary keyed these two
        # different root sets identically and returned the wrong result.
        a = [0, 1, 2, 3, 9]
        b = [0, 4, 5, 6, 9]
        assert len(a) == len(b) and a[0] == b[0] and a[-1] == b[-1]
        assert roots_fingerprint(a) != roots_fingerprint(b)

    def test_roots_order_matters(self):
        assert roots_fingerprint([1, 2, 3]) != roots_fingerprint([3, 2, 1])

    def test_roots_accepts_iterator(self):
        assert roots_fingerprint(iter([1, 2])) == roots_fingerprint([1, 2])


class TestMakeKey:
    def test_deterministic(self):
        assert make_key(a=1, b="x") == make_key(a=1, b="x")

    def test_argument_order_irrelevant(self):
        assert make_key(a=1, b=2) == make_key(b=2, a=1)

    def test_distinct_parts_distinct_keys(self):
        assert make_key(a=1) != make_key(a=2)
        assert make_key(a=1) != make_key(b=1)

    def test_schema_version_mixed_in(self, monkeypatch):
        before = make_key(a=1)
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        assert make_key(a=1) != before


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = make_key(kind="t", x=1)
        assert cache.get(key) == (False, None)
        cache.put(key, {"answer": 42})
        hit, value = cache.get(key)
        assert hit and value == {"answer": 42}
        assert cache.counters.hits == 1
        assert cache.counters.misses == 1
        assert cache.counters.stores == 1

    def test_entries_and_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        for i in range(3):
            cache.put(make_key(i=i), i)
        assert len(cache.entries()) == 3
        assert cache.size_bytes() > 0
        assert cache.clear() == 3
        assert cache.entries() == []

    def test_corrupted_entry_is_miss_and_removed(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = make_key(kind="corrupt")
        cache.put(key, "good")
        path = cache._path(key)
        path.write_bytes(b"\x80\x04 this is not a pickle")
        hit, _ = cache.get(key)
        assert not hit
        assert not path.exists()
        assert cache.counters.errors == 1
        # Recompute and repopulate transparently.
        cache.put(key, "recomputed")
        assert cache.get(key) == (True, "recomputed")

    def test_schema_bump_invalidates(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = make_key(kind="schema")
        path = cache._path(key)
        tmp_path.mkdir(exist_ok=True)
        stale = {"schema": SCHEMA_VERSION - 1, "key": key, "value": "old"}
        path.write_bytes(pickle.dumps(stale))
        hit, _ = cache.get(key)
        assert not hit
        assert not path.exists()

    def test_foreign_key_under_our_name_is_dropped(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = make_key(kind="ours")
        entry = {"schema": SCHEMA_VERSION, "key": "someone-else", "value": 1}
        cache._path(key).write_bytes(pickle.dumps(entry))
        hit, _ = cache.get(key)
        assert not hit

    def test_unwritable_directory_swallowed(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        cache = DiskCache(target)
        cache.put(make_key(x=1), "value")  # must not raise
        assert cache.counters.errors == 1


class TestDefaultCache:
    def test_tracks_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "one"))
        assert default_cache().directory == tmp_path / "one"
        assert cache_dir() == tmp_path / "one"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "two"))
        assert default_cache().directory == tmp_path / "two"

    def test_disk_memoize(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def compute():
            calls.append(1)
            return "result"

        key = make_key(kind="memoize-test")
        assert disk_memoize(key, compute) == "result"
        assert disk_memoize(key, compute) == "result"
        assert len(calls) == 1

    def test_disk_memoize_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def compute():
            calls.append(1)
            return "result"

        key = make_key(kind="memoize-disabled")
        disk_memoize(key, compute, enabled=False)
        disk_memoize(key, compute, enabled=False)
        assert len(calls) == 2
        assert DiskCache(tmp_path).entries() == []
