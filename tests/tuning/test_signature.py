"""Graph signatures: determinism, memoization, and sensitivity."""

import pickle

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.tuning import GraphSignature, graph_signature


def test_signature_is_deterministic_across_instances():
    a = graph_signature(erdos_renyi(90, 0.15, seed=7))
    b = graph_signature(erdos_renyi(90, 0.15, seed=7))
    assert a == b
    assert a.key() == b.key()


def test_signature_fields_are_plausible():
    g = erdos_renyi(90, 0.15, seed=7)
    sig = graph_signature(g)
    assert sig.num_vertices == 90
    assert sig.num_edges == g.num_edges
    assert len(sig.degree_deciles) == 11
    assert sig.degree_deciles == tuple(sorted(sig.degree_deciles))
    assert 0.0 <= sig.hub_mass <= 1.0
    assert sig.bitmap_fit_bytes == g.adjacency_bitmap_bytes()


def test_different_graphs_get_different_keys():
    er = graph_signature(erdos_renyi(90, 0.15, seed=7))
    ba = graph_signature(barabasi_albert(110, 5, seed=3))
    assert er.key() != ba.key()


def test_signature_is_memoized_on_the_instance():
    g = erdos_renyi(50, 0.2, seed=1)
    assert graph_signature(g) is graph_signature(g)


def test_memo_survives_but_does_not_pickle():
    """The signature cache is derived data: pickling a graph must not
    carry it, and an unpickled graph recomputes the same signature."""
    g = erdos_renyi(50, 0.2, seed=1)
    sig = graph_signature(g)
    clone = pickle.loads(pickle.dumps(g))
    assert clone._signature_cache is None
    assert graph_signature(clone) == sig


def test_hub_mass_rises_with_skew():
    uniform = graph_signature(erdos_renyi(300, 0.15, seed=13))
    skewed = graph_signature(barabasi_albert(300, 5, seed=3))
    assert skewed.hub_mass > uniform.hub_mass


def test_key_is_stable_text_digest():
    sig = GraphSignature(
        num_vertices=10, num_edges=20,
        degree_deciles=(1,) * 11, hub_mass=0.25, bitmap_fit_bytes=128,
    )
    assert sig.key() == sig.key()
    assert len(sig.key()) == 16
