"""The committed engine-autotune store run backs the tuner's claim.

``benchmarks/results/store/engine-autotune.jsonl`` is produced by
``make bench-autotune`` (warm tuned-choice store, then an uncached
sweep, so tuned wall times exclude trial cost) and committed.  These
checks pin the two properties the run exists to demonstrate
(docs/TUNING.md): tuned cells count bit-identically to default cells,
and the measured win clears the documented floor on the majority of
swept patterns.
"""

import json
from pathlib import Path

import pytest

import repro

STORE = (
    Path(repro.__file__).resolve().parent.parent.parent
    / "benchmarks" / "results" / "store" / "engine-autotune.jsonl"
)

#: The committed run must beat default by at least this factor on at
#: least :data:`MIN_WINNING_PATTERNS` patterns.
SPEEDUP_FLOOR = 1.3
MIN_WINNING_PATTERNS = 2


def _rows():
    if not STORE.exists():
        pytest.skip("not running from a repo checkout")
    return [
        json.loads(line)
        for line in STORE.read_text().splitlines()
        if line.strip()
    ]


def _latest_cells(rows):
    latest = {}
    for row in rows:
        latest[(row["pattern"], row["graph"], row["policy"])] = row
    return latest


def test_run_covers_default_and_tuned_for_every_pattern():
    cells = _latest_cells(_rows())
    patterns = {p for p, _, _ in cells}
    assert len(patterns) >= 2
    for pattern in patterns:
        for policy in ("default", "tuned"):
            assert (pattern, "er300", policy) in cells, (
                f"missing {policy} cell for {pattern}"
            )


def test_tuned_counts_are_bit_identical_to_default():
    cells = _latest_cells(_rows())
    for pattern in {p for p, _, _ in cells}:
        default = cells[(pattern, "er300", "default")]
        tuned = cells[(pattern, "er300", "tuned")]
        assert default["status"] == tuned["status"] == "ok"
        assert tuned["count"] == default["count"], pattern
        assert tuned["counts"] == default["counts"], pattern


def test_tuned_beats_default_on_enough_patterns():
    cells = _latest_cells(_rows())
    speedups = {}
    for pattern in {p for p, _, _ in cells}:
        default = cells[(pattern, "er300", "default")]
        tuned = cells[(pattern, "er300", "tuned")]
        assert tuned["wall_time_s"] > 0
        speedups[pattern] = default["wall_time_s"] / tuned["wall_time_s"]
    winners = [p for p, s in speedups.items() if s >= SPEEDUP_FLOOR]
    assert len(winners) >= MIN_WINNING_PATTERNS, (
        f"tuned speedups {speedups} clear {SPEEDUP_FLOOR}x on only "
        f"{len(winners)} pattern(s); re-run 'make bench-autotune' on "
        f"an unloaded host"
    )
