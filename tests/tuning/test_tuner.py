"""The measured-trial tuner: trials, persistence, and resolution."""

import pytest

import repro.tuning.tuner as tuner_mod
from repro.graph.generators import erdos_renyi
from repro.mining.engine import count_embeddings, per_root_counts
from repro.pattern.compiler import compile_plan
from repro.pattern.pattern import named_pattern
from repro.setops.kernels import KernelPolicy
from repro.tuning import (
    TUNER_VERSION,
    choice_key,
    load_choice,
    reset_tuning_stats,
    resolve_run,
    tune_plan,
    tuning_cache,
    tuning_stats,
)

GRAPH = erdos_renyi(90, 0.15, seed=7)


@pytest.fixture(autouse=True)
def _fresh_tuner_state(monkeypatch, tmp_path):
    """Each test starts with empty memo/stats and a private disk store:
    the session-wide conftest cache dir is shared with every other test,
    so a cold-store assertion here would otherwise depend on suite
    order (e.g. the kernel-agreement tuned tests warming this cell)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "tuner-cache"))
    tuner_mod._MEMO.clear()
    reset_tuning_stats()
    yield
    tuner_mod._MEMO.clear()
    reset_tuning_stats()


def test_cold_tune_runs_trials_and_persists():
    plan = compile_plan(named_pattern("tt"))
    choice = tune_plan(GRAPH, plan)
    stats = tuning_stats()
    assert stats.tuned_cells == 1
    assert stats.trials >= 2
    assert choice.trials == stats.trials
    assert choice.sample_size > 0
    key = choice_key(GRAPH, plan, KernelPolicy())
    assert load_choice(tuning_cache(), key) == choice


def test_second_resolve_hits_memo_with_zero_trials():
    plan = compile_plan(named_pattern("tt"))
    first = tune_plan(GRAPH, plan)
    reset_tuning_stats()
    second = tune_plan(GRAPH, plan)
    stats = tuning_stats()
    assert second == first
    assert stats.trials == 0
    assert stats.memo_hits == 1


def test_fresh_process_resolves_from_store_with_zero_trials():
    plan = compile_plan(named_pattern("tt"))
    first = tune_plan(GRAPH, plan)
    tuner_mod._MEMO.clear()  # simulate a new interpreter
    reset_tuning_stats()
    second = tune_plan(GRAPH, plan)
    stats = tuning_stats()
    assert second == first
    assert stats.trials == 0
    assert stats.store_hits == 1


def test_force_re_trials_despite_warm_store():
    plan = compile_plan(named_pattern("tt"))
    tune_plan(GRAPH, plan)
    reset_tuning_stats()
    tune_plan(GRAPH, plan, force=True)
    assert tuning_stats().trials >= 2


def test_trivial_single_level_plan_skips_trials():
    from repro.pattern.pattern import Pattern

    plan = compile_plan(Pattern(1, []))
    assert plan.num_levels < 2
    choice = tune_plan(GRAPH, plan)
    assert choice.candidate_label == "reference"
    assert choice.trials == 0
    assert tuning_stats().tuned_cells == 0


def test_resolve_run_returns_bit_compatible_plan_and_policy():
    plan = compile_plan(named_pattern("cyc"))
    tuned_plan, policy = resolve_run(GRAPH, plan, KernelPolicy(tuned=True))
    assert not policy.tuned
    assert list(
        per_root_counts(GRAPH, tuned_plan, kernels=policy)
    ) == list(per_root_counts(GRAPH, plan))


def test_tuner_version_bump_invalidates_the_store():
    plan = compile_plan(named_pattern("tt"))
    tune_plan(GRAPH, plan)
    key = choice_key(GRAPH, plan, KernelPolicy())
    stored = load_choice(tuning_cache(), key)
    assert stored is not None
    from dataclasses import replace

    tuning_cache().put(key, replace(stored, tuner_version=TUNER_VERSION + 1))
    assert load_choice(tuning_cache(), key) is None


def test_base_policies_key_separately():
    plan = compile_plan(named_pattern("tt"))
    a = choice_key(GRAPH, plan, KernelPolicy())
    b = choice_key(GRAPH, plan, KernelPolicy(engine="recursive"))
    assert a != b
    # ...but the tuned flag itself never reaches the key.
    assert choice_key(GRAPH, plan, KernelPolicy(tuned=True)) == a


def test_trial_sample_rounds_grow_and_dedupe():
    samples = tuner_mod._trial_samples(320)
    assert len(samples) >= 1
    sizes = [len(s) for s in samples]
    assert sizes == sorted(sizes)
    assert all(
        samples[i] != samples[i + 1] for i in range(len(samples) - 1)
    )
    tiny = tuner_mod._trial_samples(3)
    assert tiny[-1] == [0, 1, 2]
    assert all(
        tiny[i] != tiny[i + 1] for i in range(len(tiny) - 1)
    )


def test_tuned_counting_matches_untuned_on_fresh_store():
    plan = compile_plan(named_pattern("house"))
    reference = count_embeddings(GRAPH, plan)
    assert count_embeddings(
        GRAPH, plan, kernels=KernelPolicy(tuned=True)
    ) == reference


def test_trials_run_with_probes_suspended():
    """Tuning must not emit sanitizer probe events: a cold-store trial
    inside a sanitized double-run would otherwise diverge the traces."""
    from repro import sanitize

    events = []
    plan = compile_plan(named_pattern("tt"))
    with sanitize.capture() as trace:
        tune_plan(GRAPH, plan, force=True)
        events = list(trace.events)
    assert events == []
