"""Candidate generation: the order × policy grid and its invariants."""

import pytest

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.pattern.compiler import compile_plan
from repro.pattern.pattern import all_named_patterns, named_pattern
from repro.setops.kernels import KernelPolicy
from repro.tuning import generate_candidates, original_pattern, policy_grid
from repro.tuning.candidates import TunerCandidate
from repro.tuning.signature import graph_signature

ER = erdos_renyi(90, 0.15, seed=7)
BA = barabasi_albert(110, 5, seed=3)


@pytest.mark.parametrize("pattern", sorted(all_named_patterns()))
def test_original_pattern_round_trips(pattern):
    """Inverting the plan's relabeling recovers an isomorphic copy of
    the caller's pattern: recompiling it with the plan's own order
    reproduces the plan's internal pattern."""
    plan = compile_plan(named_pattern(pattern))
    original = original_pattern(plan)
    recompiled = compile_plan(original, order=tuple(plan.vertex_order))
    assert recompiled.pattern == plan.pattern


@pytest.mark.parametrize("pattern", sorted(all_named_patterns()))
def test_reference_candidate_is_first_and_unchanged(pattern):
    plan = compile_plan(named_pattern(pattern))
    candidates = generate_candidates(ER, plan, KernelPolicy())
    ref = candidates[0]
    assert ref.label == "reference"
    assert ref.order == tuple(plan.vertex_order)
    assert ref.policy == KernelPolicy()


def test_candidates_are_unique_and_bounded():
    plan = compile_plan(named_pattern("house"))
    candidates = generate_candidates(ER, plan, KernelPolicy())
    seen = {(c.order, c.policy) for c in candidates}
    assert len(seen) == len(candidates)
    assert 1 <= len(candidates) <= 24


def test_candidate_orders_share_the_root_orbit():
    """Every candidate's level-0 vertex sits in the automorphism orbit
    of the reference root — the necessary condition for per-root
    attribution to survive the reorder."""
    from repro.pattern.automorphism import orbits

    plan = compile_plan(named_pattern("cyc"))
    pattern = original_pattern(plan)
    root = tuple(plan.vertex_order)[0]
    orbit = next(o for o in orbits(pattern) if root in o)
    for candidate in generate_candidates(ER, plan, KernelPolicy()):
        assert candidate.order[0] in orbit, candidate.label


def test_candidates_reject_tuned_policies():
    with pytest.raises(ValueError, match="concrete"):
        TunerCandidate(
            label="bad", order=(0, 1, 2), policy=KernelPolicy(tuned=True)
        )


def test_policy_grid_contains_base_and_flipped_engine():
    grid = dict(policy_grid(KernelPolicy(), graph_signature(ER)))
    assert grid["base"] == KernelPolicy()
    assert grid["recursive"].engine == "recursive"


def test_policy_grid_strips_the_tuned_flag():
    grid = policy_grid(KernelPolicy(tuned=True), graph_signature(ER))
    assert all(not policy.tuned for _, policy in grid)


def test_policy_grid_gates_hub_variant_on_hub_mass():
    sig = graph_signature(BA)
    labels_hubby = {n for n, _ in policy_grid(KernelPolicy(), sig)}
    if sig.hub_mass >= 0.05:
        assert "hubs-eager" in labels_hubby
    labels_off = {
        n for n, _ in policy_grid(
            KernelPolicy(use_hub_bitmaps=False), sig
        )
    }
    assert "hubs-eager" not in labels_off


def test_policy_grid_respects_forced_kernels():
    labels = {
        n for n, _ in policy_grid(
            KernelPolicy(force_kernel="merge"), graph_signature(ER)
        )
    }
    assert "gallop-eager" not in labels
