"""Regression tests for the audited RACE001 findings.

The first Tier-C sweep over the real tree flagged three module-level
mutable-state sites on worker-reachable paths.  Each was audited as an
intentional per-process design and suppressed with an inline
``# noqa: RACE001`` pragma; these tests pin the *behavior* that makes
each suppression sound, so a refactor that breaks the invariant fails
here rather than silently re-introducing the hazard.
"""

import numpy as np
import pytest

from repro.analysis.dataflow import analyze_sources
from repro.graph import erdos_renyi
from repro.mining.api import plan_for
from repro.parallel import pool
from repro.parallel.pool import run_shards
from repro.setops.kernels import (
    intersect_adaptive,
    kernel_counters,
    reset_kernel_counters,
)


def _double(payload, shard):
    return [x * payload["k"] for x in shard]


class TestPoolWorkerGlobals:
    """`pool._WORKER` / `pool._PAYLOAD` are per-process only."""

    def test_parent_globals_untouched_by_pool_run(self):
        assert pool._WORKER is None
        assert pool._PAYLOAD is None
        out = run_shards(_double, {"k": 3}, [[1, 2], [3, 4]], 2)
        assert out == [[3, 6], [9, 12]]
        # The initializer ran in the *children*; the parent's module
        # globals must never have been written.
        assert pool._WORKER is None
        assert pool._PAYLOAD is None

    def test_serial_path_never_installs_globals(self):
        out = run_shards(_double, {"k": 2}, [[5]], 1)
        assert out == [[10]]
        assert pool._WORKER is None
        assert pool._PAYLOAD is None


class TestPoolFailureLatch:
    """`pool._POOL_FAILURE` / `pool._WARNED` are an advisory latch: once
    set, later calls skip the pool but produce identical results."""

    def test_latched_failure_falls_back_with_identical_results(
        self, monkeypatch
    ):
        pooled = run_shards(_double, {"k": 7}, [[1], [2], [3]], 2)
        monkeypatch.setattr(pool, "_POOL_FAILURE", "OSError: simulated")
        monkeypatch.setattr(pool, "_WARNED", True)
        assert pool.pool_unavailable_reason() == "OSError: simulated"
        serial = run_shards(_double, {"k": 7}, [[1], [2], [3]], 2)
        assert serial == pooled == [[7], [14], [21]]

    def test_pool_error_sets_latch_and_warns_once(self, monkeypatch):
        monkeypatch.setattr(pool, "_POOL_FAILURE", None)
        monkeypatch.setattr(pool, "_WARNED", False)

        class _Boom:
            def __init__(self, *a, **kw):
                raise OSError("no processes here")

        monkeypatch.setattr(pool, "ProcessPoolExecutor", _Boom)
        with pytest.warns(RuntimeWarning, match="running shards serially"):
            out = run_shards(_double, {"k": 1}, [[1], [2]], 2)
        assert out == [[1], [2]]
        assert "no processes here" in pool.pool_unavailable_reason()
        # Second call: latched, serial, and silent.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            again = run_shards(_double, {"k": 1}, [[1], [2]], 2)
        assert again == [[1], [2]]


class TestKernelCounters:
    """`kernels._COUNTERS` tallies are per-process advisory telemetry."""

    def test_counters_increment_in_process_and_snapshot_is_a_copy(self):
        reset_kernel_counters()
        a = np.array([1, 2, 3, 4], dtype=np.int32)
        b = np.array([2, 4, 6], dtype=np.int32)
        intersect_adaptive(a, b)
        snap = kernel_counters()
        assert sum(snap.values()) == 1
        snap["intersect/merge"] = 999
        # Mutating the snapshot must not write through to the tally.
        assert kernel_counters() != snap or sum(kernel_counters().values()) == 1
        reset_kernel_counters()
        assert kernel_counters() == {}

    def test_parallel_run_leaves_parent_counters_at_serial_levels(self):
        """Worker-process tallies stay in the workers: the parent's
        counters reflect only parent-side kernel calls."""
        from repro.core.sharded import per_root_counts_parallel

        graph = erdos_renyi(20, 0.3, seed=5)
        plan = plan_for("tc")
        reset_kernel_counters()
        per_root_counts_parallel(graph, plan, None, 2)
        parent_tally = sum(kernel_counters().values())
        reset_kernel_counters()
        per_root_counts_parallel(graph, plan, None, 1)
        serial_tally = sum(kernel_counters().values())
        # If the pool spawned, workers did the counting and the parent
        # saw none of it; on the serial fallback the tallies match.
        if pool.pool_unavailable_reason() is None:
            assert parent_tally == 0
        else:
            assert parent_tally == serial_tally
        assert serial_tally > 0
        reset_kernel_counters()


class TestSuppressionsStillNeeded:
    """The noqa'd findings are real: stripping the pragmas re-fires
    RACE001 — i.e. the suppressions document live behavior, not cruft."""

    def test_pool_initializer_fires_without_noqa(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_WORKER = None\n"
            "_PAYLOAD = None\n"
            "def _initializer(worker, payload):\n"
            "    global _WORKER, _PAYLOAD\n"
            "    _WORKER = worker\n"
            "    _PAYLOAD = payload\n"
            "def run(worker, payload, shards, jobs):\n"
            "    with ProcessPoolExecutor(\n"
            "        max_workers=jobs, initializer=_initializer,\n"
            "        initargs=(worker, payload),\n"
            "    ) as ex:\n"
            "        return list(ex.map(worker, shards))\n"
        )
        findings = analyze_sources({"repro.parallel.mini": source})
        assert [f.rule for f in findings] == ["RACE001"]
        assert "_initializer" in findings[0].message
