"""Shard recovery under faults: crashes, hangs, transients, exhaustion.

The load-bearing assertion in every test: recovery is invisible in
results — a run that absorbed worker deaths and injected exceptions is
bit-identical to a fault-free run (docs/RESILIENCE.md).
"""

import os
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FingersConfig, count, simulate
from repro.errors import (
    InjectedFault,
    PoolDegradedWarning,
    RetryExhausted,
    RetryableError,
)
from repro.graph import erdos_renyi
from repro.parallel import pool
from repro.parallel.pool import run_shards
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy, RetryStats

#: Backoff-free policy: fault tests measure recovery, not sleeping.
FAST = RetryPolicy(backoff_base_s=0.0)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_RETRY", raising=False)
    monkeypatch.setattr(pool, "_WARNED_DEGRADED", False)
    faults.clear()
    yield
    faults.clear()


def _square_sum(payload, shard):
    return payload * sum(shard)


def _crash_once(payload, shard):
    # A worker defect with a memory: os._exit (no exception, no cleanup)
    # on the first encounter of shard [3], recorded via a sentinel file
    # so the retry succeeds.  Exactly the BrokenProcessPool shape.
    sentinel = os.path.join(payload, f"crashed-{shard[0]}")
    if shard[0] == 3 and not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(86)
    return sum(shard)


def _always_transient(payload, shard):
    raise InjectedFault("always failing", kind="transient")


def _defective(payload, shard):
    raise KeyError("logic bug, not a fault")


SHARDS = [[i, i + 1] for i in range(8)]


class TestCrashRecovery:
    def test_os_exit_mid_shard_is_bit_identical_after_retry(self, tmp_path):
        shards = [[i] for i in range(8)]
        clean = [sum(s) for s in shards]
        stats = RetryStats()
        out = run_shards(
            _crash_once, str(tmp_path), shards, jobs=4,
            policy=FAST, stats=stats,
        )
        assert out == clean
        assert stats.crashes >= 1
        assert stats.pool_rebuilds >= 1
        assert stats.retries >= 1
        assert stats.exhausted == 0

    def test_injected_crash_plan_is_bit_identical(self):
        # seed=7 draws a crash for 3 of the 8 shard tokens at attempt 0
        # (so the first pool always breaks).  Salvage counts, rebuild
        # depth, and possible degradation to serial legitimately vary
        # with OS scheduling — a shard is attempt-bumped whenever the
        # pool dies under it, even to another shard's crash — so the
        # assertions avoid them, and the attempt budget is sized so
        # exhaustion is impossible for this seed: at most 4 break-bumps
        # (the rebuild budget) plus at most 8 own-fault firings over 15
        # attempts leaves every token a clean attempt.
        clean = run_shards(_square_sum, 3, SHARDS, jobs=1, policy=FAST)
        faults.install("seed=7,crash:pool=0.3,transient:pool=0.2")
        stats = RetryStats()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PoolDegradedWarning)
            out = run_shards(
                _square_sum, 3, SHARDS, jobs=4,
                policy=RetryPolicy(max_attempts=15, backoff_base_s=0.0),
                stats=stats,
            )
        assert out == clean
        assert stats.crashes > 0
        assert stats.pool_rebuilds >= 1
        assert stats.retries > 0
        assert stats.exhausted == 0

    def test_rebuild_budget_zero_degrades_to_serial(self):
        # Deterministic degradation: every worker attempt crashes and
        # the budget tolerates zero rebuilds, so the first pool death
        # must warn once and finish the run in-process (where crash
        # faults never fire).
        clean = run_shards(_square_sum, 3, SHARDS, jobs=1, policy=FAST)
        faults.install("crash:pool=1")
        stats = RetryStats()
        with pytest.warns(PoolDegradedWarning, match="degraded to serial"):
            out = run_shards(
                _square_sum, 3, SHARDS, jobs=4,
                policy=RetryPolicy(max_pool_rebuilds=0, backoff_base_s=0.0),
                stats=stats,
            )
        assert out == clean
        assert stats.serial_fallbacks == 1
        assert stats.crashes >= 1

    def test_injected_crashes_never_fire_on_the_serial_path(self):
        # crash/hang are worker-only: jobs=1 runs in the driver process,
        # so a 100% crash rate must be a no-op (the test surviving is
        # the point).
        faults.install("crash:pool=1")
        out = run_shards(_square_sum, 3, SHARDS, jobs=1, policy=FAST)
        assert out == run_shards(_square_sum, 3, SHARDS, jobs=1, policy=FAST)


class TestTimeouts:
    def test_hung_shard_times_out_and_retries_clean(self):
        # seed=0 hangs two shard attempts (5 s each) on first draw; the
        # 0.5 s collection timeout abandons the stuck pool and the
        # retried attempts draw clean.
        clean = run_shards(_square_sum, 3, SHARDS, jobs=1, policy=FAST)
        faults.install("seed=0,hang:pool=0.35@5")
        stats = RetryStats()
        out = run_shards(
            _square_sum, 3, SHARDS, jobs=4,
            policy=RetryPolicy(timeout_s=0.5, backoff_base_s=0.0),
            stats=stats,
        )
        assert out == clean
        assert stats.timeouts >= 1
        assert stats.pool_rebuilds >= 1
        assert stats.exhausted == 0


class TestTransients:
    def test_transient_faults_retry_to_identical_results(self):
        clean = run_shards(_square_sum, 3, SHARDS, jobs=1, policy=FAST)
        faults.install("seed=2,transient:pool=0.5")
        stats = RetryStats()
        out = run_shards(_square_sum, 3, SHARDS, jobs=1, policy=FAST,
                         stats=stats)
        assert out == clean
        assert stats.transient_errors > 0
        assert stats.retries == stats.transient_errors

    def test_retry_exhaustion_raises_with_cause(self):
        with pytest.raises(RetryExhausted) as err:
            run_shards(_always_transient, None, [[1]], jobs=1,
                       policy=RetryPolicy(max_attempts=3, backoff_base_s=0.0))
        assert err.value.attempts == 3
        assert isinstance(err.value.__cause__, RetryableError)

    def test_non_retryable_worker_defects_propagate_unchanged(self):
        stats = RetryStats()
        with pytest.raises(KeyError, match="logic bug"):
            run_shards(_defective, None, [[1], [2]], jobs=1,
                       policy=FAST, stats=stats)
        assert stats.retries == 0  # defects are reported, never retried


class TestStatsPlumbing:
    def test_process_totals_accumulate_across_calls(self):
        faults.install("seed=2,transient:pool=0.5")
        before = pool.retry_stats()
        run_shards(_square_sum, 3, SHARDS, jobs=1, policy=FAST)
        delta = pool.retry_stats().delta(before)
        assert delta.retries > 0
        assert delta.attempts >= len(SHARDS)

    def test_fault_free_runs_report_no_recovery(self):
        stats = RetryStats()
        run_shards(_square_sum, 3, SHARDS, jobs=1, policy=FAST, stats=stats)
        assert stats.attempts == len(SHARDS)
        assert not stats.recovered


TINY = erdos_renyi(30, 0.3, seed=1)


class TestFaultInvarianceProperties:
    """Transient faults never change results, for any seed and rate."""

    @given(seed=st.integers(0, 2 ** 32), rate=st.floats(0.05, 0.7))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_run_shards_results_are_fault_invariant(self, seed, rate):
        policy = RetryPolicy(max_attempts=60, backoff_base_s=0.0)
        clean = run_shards(_square_sum, 3, SHARDS, jobs=1, policy=policy)
        faults.install(f"seed={seed},transient:pool={rate}")
        try:
            faulted = run_shards(_square_sum, 3, SHARDS, jobs=1,
                                 policy=policy)
        finally:
            faults.clear()
        assert faulted == clean

    @given(seed=st.integers(0, 2 ** 32))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_run_result_counts_are_fault_invariant(self, seed, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY", "base=0,attempts=60")
        clean_count = count(TINY, "tc", jobs=1)
        clean_sim = simulate(TINY, "tc", FingersConfig(num_pes=2), jobs=1)
        faults.install(f"seed={seed},transient:pool=0.4")
        try:
            assert count(TINY, "tc", jobs=1) == clean_count
            faulted = simulate(TINY, "tc", FingersConfig(num_pes=2), jobs=1)
        finally:
            faults.clear()
        assert faulted.count == clean_sim.count
        assert tuple(faulted.counts) == tuple(clean_sim.counts)
        assert faulted.cycles == clean_sim.cycles
