"""Properties of the degree-aware root sharding policy."""

import numpy as np
import pytest

from repro.graph import erdos_renyi, star_graph
from repro.parallel import (
    CHUNKS_PER_JOB,
    DEFAULT_SHARDS,
    default_num_shards,
    engine_num_chunks,
    shard_roots,
)


class TestShardRoots:
    def test_concatenation_preserves_order(self, small_random):
        roots = list(range(small_random.num_vertices))
        shards = shard_roots(small_random, roots, 4)
        assert [v for shard in shards for v in shard] == roots

    def test_subset_roots_preserved(self, small_random):
        roots = [5, 1, 28, 3]
        shards = shard_roots(small_random, roots, 2)
        assert [v for shard in shards for v in shard] == roots

    def test_none_means_all_vertices(self, small_random):
        shards = shard_roots(small_random, None, 3)
        flat = [v for shard in shards for v in shard]
        assert flat == list(range(small_random.num_vertices))

    def test_no_empty_shards(self, small_random):
        for num_shards in (1, 2, 5, 16, 64):
            shards = shard_roots(small_random, None, num_shards)
            assert all(len(shard) > 0 for shard in shards)

    def test_at_most_requested_shards(self, small_random):
        shards = shard_roots(small_random, None, 7)
        assert 1 <= len(shards) <= 7

    def test_more_shards_than_roots(self, small_random):
        shards = shard_roots(small_random, [0, 1], 16)
        assert [v for shard in shards for v in shard] == [0, 1]
        assert len(shards) <= 2

    def test_single_shard_is_identity(self, small_random):
        roots = [4, 2, 9]
        assert shard_roots(small_random, roots, 1) == [roots]

    def test_degree_balance_on_star(self):
        # Hub vertex 0 carries nearly all the weight: it should sit in
        # its own shard rather than dragging half the leaves with it.
        g = star_graph(64)
        shards = shard_roots(g, None, 4)
        hub_shard = next(s for s in shards if 0 in s)
        assert len(hub_shard) < g.num_vertices / 2

    def test_deterministic(self, small_random):
        a = shard_roots(small_random, None, 8)
        b = shard_roots(small_random, None, 8)
        assert a == b

    def test_out_of_range_root_raises(self, small_random):
        with pytest.raises(ValueError):
            shard_roots(small_random, [small_random.num_vertices], 2)
        with pytest.raises(ValueError):
            shard_roots(small_random, [-1], 2)

    def test_empty_roots(self, small_random):
        assert shard_roots(small_random, [], 4) == []

    def test_num_shards_must_be_positive(self, small_random):
        with pytest.raises(ValueError):
            shard_roots(small_random, None, 0)

    def test_weights_are_degree_plus_one(self):
        # A zero-degree vertex still gets weight 1, so isolated vertices
        # cannot collapse every cut to the same boundary.
        g = erdos_renyi(20, 0.0, seed=3)
        shards = shard_roots(g, None, 4)
        sizes = sorted(len(s) for s in shards)
        assert sizes == [5, 5, 5, 5]


class TestPolicies:
    def test_default_num_shards_caps(self):
        assert default_num_shards(1) == 1
        assert default_num_shards(5) == 5
        assert default_num_shards(10_000) == DEFAULT_SHARDS

    def test_engine_chunks_scale_with_jobs(self):
        assert engine_num_chunks(1000, 4) == 4 * CHUNKS_PER_JOB
        assert engine_num_chunks(2, 8) == 2
        assert engine_num_chunks(0, 8) == 1
