"""run_shards: ordering, serial paths, and the serial fallback."""

import pytest

from repro.parallel import pool
from repro.parallel.pool import run_shards


def _square_sum(payload, shard):
    return payload * sum(shard)


def _shard_id(payload, shard):
    return shard


class TestRunShards:
    def test_serial_path(self):
        out = run_shards(_square_sum, 2, [[1, 2], [3]], jobs=1)
        assert out == [6, 6]

    def test_single_shard_runs_serially(self):
        out = run_shards(_square_sum, 10, [[1]], jobs=8)
        assert out == [10]

    def test_parallel_matches_serial(self):
        shards = [[i, i + 1] for i in range(10)]
        serial = run_shards(_square_sum, 3, shards, jobs=1)
        parallel = run_shards(_square_sum, 3, shards, jobs=4)
        assert parallel == serial

    def test_results_in_submission_order(self):
        shards = [[i] for i in range(20)]
        assert run_shards(_shard_id, None, shards, jobs=4) == shards

    def test_empty_shards(self):
        assert run_shards(_square_sum, 1, [], jobs=4) == []

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_shards(_square_sum, 1, [[1]], jobs=0)

    def test_fallback_on_pool_failure(self, monkeypatch):
        def _broken(*args, **kwargs):
            raise OSError("no semaphores here")

        monkeypatch.setattr(pool, "ProcessPoolExecutor", _broken)
        monkeypatch.setattr(pool, "_POOL_FAILURE", None)
        monkeypatch.setattr(pool, "_WARNED", False)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            out = run_shards(_square_sum, 2, [[1], [2], [3]], jobs=4)
        assert out == [2, 4, 6]
        assert pool.pool_unavailable_reason() is not None
        # Subsequent calls skip the pool without re-warning.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = run_shards(_square_sum, 2, [[1], [2]], jobs=4)
        assert again == [2, 4]
