"""The parallelism contract: jobs=1 and jobs=N produce identical results.

Engine results additionally equal the unsharded (jobs=None) path; chip
and software results are compared within the sharded model, where
``jobs=1`` executes the same shard decomposition serially (see
docs/PARALLELISM.md).
"""

import pytest

from repro.graph import erdos_renyi
from repro.hw.api import (
    FingersConfig,
    FlexMinerConfig,
    resolve_workload,
    simulate,
)
from repro.hw.chip import merge_chip_results, run_chip
from repro.mining.api import count, embeddings, motif_census, plan_for
from repro.mining.engine import count_embeddings, per_root_counts
from repro.parallel import shard_roots, sharded_run_chip
from repro.sw import SoftwareConfig, simulate_software

JOBS = 4


class TestEngineDeterminism:
    @pytest.mark.parametrize("pattern", ["tc", "tt", "cyc"])
    def test_count_matches_serial(self, small_random, pattern):
        serial = count(small_random, pattern)
        assert count(small_random, pattern, jobs=1) == serial
        assert count(small_random, pattern, jobs=JOBS) == serial

    def test_count_on_paper_graph(self, paper_graph):
        assert count(paper_graph, "tc", jobs=JOBS) == count(paper_graph, "tc")

    def test_count_larger_graph(self):
        g = erdos_renyi(80, 0.15, seed=11)
        assert count(g, "tc", jobs=JOBS) == count(g, "tc")

    def test_embeddings_order_and_limit(self, small_random):
        serial = embeddings(small_random, "tc", limit=17)
        assert embeddings(small_random, "tc", limit=17, jobs=JOBS) == serial
        full = embeddings(small_random, "tc")
        assert embeddings(small_random, "tc", jobs=JOBS) == full

    def test_per_root_counts_order(self, small_random):
        plan = plan_for("tt")
        serial = list(per_root_counts(small_random, plan))
        parallel = list(per_root_counts(small_random, plan, jobs=JOBS))
        assert parallel == serial

    def test_count_embeddings_with_roots(self, small_random):
        plan = plan_for("tc")
        roots = list(range(0, small_random.num_vertices, 3))
        serial = count_embeddings(small_random, plan, roots=roots)
        parallel = count_embeddings(
            small_random, plan, roots=roots, jobs=JOBS
        )
        assert parallel == serial

    def test_motif_census(self, small_random):
        assert motif_census(small_random, 3, jobs=JOBS) == motif_census(
            small_random, 3
        )


class TestChipDeterminism:
    @pytest.mark.parametrize("pattern", ["tc", "tt"])
    def test_jobs1_equals_jobs4_bitwise(self, small_random, pattern):
        cfg = FingersConfig(num_pes=2)
        one = simulate(small_random, pattern, cfg, jobs=1)
        four = simulate(small_random, pattern, cfg, jobs=JOBS)
        assert one.chip == four.chip  # dataclass equality: bit-for-bit

    def test_flexminer_design(self, small_random):
        cfg = FlexMinerConfig(num_pes=2)
        one = simulate(small_random, "tc", cfg, jobs=1)
        four = simulate(small_random, "tc", cfg, jobs=JOBS)
        assert one.chip == four.chip

    def test_sharded_counts_match_unsharded(self, small_random):
        cfg = FingersConfig(num_pes=2)
        unsharded = simulate(small_random, "tc", cfg)
        sharded = simulate(small_random, "tc", cfg, jobs=JOBS)
        assert sharded.counts == unsharded.counts
        assert unsharded.chip.num_shards == 1
        assert sharded.chip.num_shards > 1

    def test_explicit_shards_param(self, small_random):
        cfg = FingersConfig(num_pes=2)
        a = simulate(small_random, "tc", cfg, jobs=1, shards=5)
        b = simulate(small_random, "tc", cfg, jobs=JOBS, shards=5)
        assert a.chip == b.chip
        assert a.chip.num_shards == 5

    def test_manual_merge_equals_sharded_run(self, small_random):
        # The sharded model is BY DEFINITION: run each shard on a cold
        # chip, then merge.  Verify the plumbing implements exactly that.
        cfg = FingersConfig(num_pes=2)
        _, plans, _ = resolve_workload("tc")
        shards = shard_roots(small_random, None, 5)
        manual = merge_chip_results(
            [
                run_chip(small_random, plans, cfg, roots=shard)
                for shard in shards
            ]
        )
        via_api = simulate(small_random, "tc", cfg, jobs=1, shards=5)
        assert via_api.chip == manual

    def test_merged_cycles_is_max_over_shards(self, small_random):
        cfg = FingersConfig(num_pes=2)
        _, plans, _ = resolve_workload("tc")
        shards = shard_roots(small_random, None, 4)
        parts = [
            run_chip(small_random, plans, cfg, roots=shard)
            for shard in shards
        ]
        merged = merge_chip_results(parts)
        assert merged.cycles == max(p.cycles for p in parts)
        assert merged.num_shards == len(parts)
        assert len(merged.pe_stats) == sum(len(p.pe_stats) for p in parts)

    def test_sharded_run_chip_single_shard_is_plain(self, small_random):
        cfg = FingersConfig(num_pes=2)
        _, plans, _ = resolve_workload("tc")
        plain = run_chip(small_random, plans, cfg)
        sharded = sharded_run_chip(
            small_random, plans, cfg, None, roots=None, jobs=1, num_shards=1
        )
        assert sharded == plain

    def test_tracer_with_jobs_rejected(self, small_random):
        with pytest.raises(ValueError):
            simulate(
                small_random, "tc", FingersConfig(num_pes=1),
                tracer=object(), jobs=2,
            )

    def test_bad_jobs_rejected(self, small_random):
        with pytest.raises(ValueError):
            simulate(small_random, "tc", FingersConfig(num_pes=1), jobs=0)


class TestSoftwareDeterminism:
    def test_jobs1_equals_jobs4(self, small_random):
        cfg = SoftwareConfig(num_cores=2)
        one = simulate_software(small_random, "tc", cfg, jobs=1)
        four = simulate_software(small_random, "tc", cfg, jobs=JOBS)
        assert one == four

    def test_counts_match_unsharded(self, small_random):
        cfg = SoftwareConfig(num_cores=2)
        unsharded = simulate_software(small_random, "tc", cfg)
        sharded = simulate_software(small_random, "tc", cfg, jobs=JOBS)
        assert sharded.counts == unsharded.counts
        assert sharded.num_shards > 1
        assert unsharded.num_shards == 1
