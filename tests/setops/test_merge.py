"""Unit and property tests for the merge-based set operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pattern.plan import OpKind
from repro.setops import (
    apply_op,
    exclude_values,
    intersect,
    lower_bound_filter,
    subtract,
)
from repro.setops.merge import merge_intersect_py, merge_subtract_py

sorted_sets = st.lists(
    st.integers(min_value=0, max_value=300), max_size=60, unique=True
).map(sorted)


def arr(values):
    return np.asarray(values, dtype=np.int32)


class TestBasics:
    def test_intersect(self):
        assert list(intersect(arr([1, 3, 5]), arr([3, 4, 5]))) == [3, 5]

    def test_subtract(self):
        assert list(subtract(arr([1, 3, 5]), arr([3]))) == [1, 5]

    def test_empty_cases(self):
        e = arr([])
        assert intersect(e, arr([1])).size == 0
        assert intersect(arr([1]), e).size == 0
        assert subtract(e, arr([1])).size == 0
        assert list(subtract(arr([1, 2]), e)) == [1, 2]

    def test_apply_op_init(self):
        out = apply_op(OpKind.INIT_COPY, None, arr([4, 7]))
        assert list(out) == [4, 7]

    def test_apply_op_intersect(self):
        out = apply_op(OpKind.INTERSECT, arr([1, 2, 3]), arr([2, 3, 4]))
        assert list(out) == [2, 3]

    def test_apply_op_subtract_variants(self):
        a, b = arr([1, 2, 3]), arr([2])
        assert list(apply_op(OpKind.SUBTRACT, a, b)) == [1, 3]
        assert list(apply_op(OpKind.ANTI_SUBTRACT, a, b)) == [1, 3]

    def test_apply_op_requires_source(self):
        with pytest.raises(ValueError):
            apply_op(OpKind.INTERSECT, None, arr([1]))


class TestFilters:
    def test_lower_bound(self):
        assert list(lower_bound_filter(arr([1, 5, 9]), 5)) == [9]

    def test_lower_bound_all_pass(self):
        assert list(lower_bound_filter(arr([6, 7]), 5)) == [6, 7]

    def test_lower_bound_none_pass(self):
        assert lower_bound_filter(arr([1, 2]), 9).size == 0

    def test_exclude_values(self):
        assert list(exclude_values(arr([1, 2, 3, 4]), [2, 4])) == [1, 3]

    def test_exclude_missing_value(self):
        assert list(exclude_values(arr([1, 3]), [2])) == [1, 3]

    def test_exclude_empty(self):
        assert exclude_values(arr([]), [1]).size == 0


class TestProperties:
    @given(sorted_sets, sorted_sets)
    @settings(max_examples=200)
    def test_intersect_matches_python_sets(self, a, b):
        got = list(intersect(arr(a), arr(b)))
        assert got == sorted(set(a) & set(b))

    @given(sorted_sets, sorted_sets)
    @settings(max_examples=200)
    def test_subtract_matches_python_sets(self, a, b):
        got = list(subtract(arr(a), arr(b)))
        assert got == sorted(set(a) - set(b))

    @given(sorted_sets, sorted_sets)
    def test_pure_python_merge_agrees(self, a, b):
        assert merge_intersect_py(a, b) == sorted(set(a) & set(b))
        assert merge_subtract_py(a, b) == sorted(set(a) - set(b))

    @given(sorted_sets, sorted_sets)
    def test_subtract_identity(self, a, b):
        """A − B == A − (A ∩ B): the identity FINGERS hardware exploits."""
        a_, b_ = arr(a), arr(b)
        direct = list(subtract(a_, b_))
        via_intersect = list(subtract(a_, intersect(a_, b_)))
        assert direct == via_intersect

    @given(sorted_sets, sorted_sets, sorted_sets)
    def test_subtract_chain_is_intersection_of_differences(self, a, b, c):
        """A − B − C == (A − B) ∩ (A − C): the OR-aggregation identity."""
        a_, b_, c_ = arr(a), arr(b), arr(c)
        chained = list(subtract(subtract(a_, b_), c_))
        intersected = list(intersect(subtract(a_, b_), subtract(a_, c_)))
        assert chained == intersected

    @given(sorted_sets, sorted_sets)
    def test_results_sorted_unique(self, a, b):
        for out in (intersect(arr(a), arr(b)), subtract(arr(a), arr(b))):
            lst = list(out)
            assert lst == sorted(set(lst))
