"""Property and unit tests for the size-adaptive kernel layer.

Every kernel must be bit-identical to the pure-Python merge oracle
(``merge_intersect_py`` / ``merge_subtract_py``) on all inputs — the
contract that makes kernel dispatch functional-only (docs/KERNELS.md).
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.builders import from_edges
from repro.graph.generators import barabasi_albert
from repro.pattern.plan import OpKind
from repro.setops.kernels import (
    DEFAULT_POLICY,
    KERNEL_NAMES,
    KernelContext,
    KernelPolicy,
    bitmap_and_count,
    bitmap_intersect,
    bitmap_subtract,
    gallop_intersect,
    gallop_subtract,
    intersect_adaptive,
    kernel_counters,
    merge_intersect,
    merge_subtract,
    pack_bitmap,
    popcount,
    reset_kernel_counters,
    subtract_adaptive,
    unpack_bitmap,
)
from repro.setops.merge import apply_op, merge_intersect_py, merge_subtract_py

sorted_sets = st.lists(
    st.integers(min_value=0, max_value=300), max_size=60, unique=True
).map(sorted)

#: Also exercise heavily skewed sizes (the galloping regime).
skewed_pairs = st.tuples(
    st.lists(
        st.integers(min_value=0, max_value=5000), max_size=8, unique=True
    ).map(sorted),
    st.lists(
        st.integers(min_value=0, max_value=5000),
        min_size=200,
        max_size=400,
        unique=True,
    ).map(sorted),
)

INTERSECT_KERNELS = {
    "merge": merge_intersect,
    "gallop": gallop_intersect,
    "bitmap": bitmap_intersect,
}
SUBTRACT_KERNELS = {
    "merge": merge_subtract,
    "gallop": gallop_subtract,
    "bitmap": bitmap_subtract,
}


def arr(values):
    return np.asarray(values, dtype=np.int32)


class TestKernelsAgainstOracle:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @given(a=sorted_sets, b=sorted_sets)
    def test_intersect_matches_oracle(self, kernel, a, b):
        out = INTERSECT_KERNELS[kernel](arr(a), arr(b))
        assert out.dtype == np.int32
        assert list(out) == merge_intersect_py(a, b)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @given(a=sorted_sets, b=sorted_sets)
    def test_subtract_matches_oracle(self, kernel, a, b):
        out = SUBTRACT_KERNELS[kernel](arr(a), arr(b))
        assert out.dtype == np.int32
        assert list(out) == merge_subtract_py(a, b)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @given(pair=skewed_pairs)
    def test_skewed_sizes_both_directions(self, kernel, pair):
        small, large = pair
        assert list(INTERSECT_KERNELS[kernel](arr(small), arr(large))) == (
            merge_intersect_py(small, large)
        )
        assert list(SUBTRACT_KERNELS[kernel](arr(large), arr(small))) == (
            merge_subtract_py(large, small)
        )

    @given(a=sorted_sets, b=sorted_sets)
    def test_adaptive_dispatch_matches_oracle(self, a, b):
        for policy in (
            DEFAULT_POLICY,
            KernelPolicy(gallop_ratio=1.0, gallop_min_large=1),
        ):
            assert list(intersect_adaptive(arr(a), arr(b), policy)) == (
                merge_intersect_py(a, b)
            )
            assert list(subtract_adaptive(arr(a), arr(b), policy)) == (
                merge_subtract_py(a, b)
            )

    @given(a=sorted_sets, b=sorted_sets)
    def test_prebuilt_bitmap_path(self, a, b):
        words = pack_bitmap(arr(b), 301)
        assert list(bitmap_intersect(arr(a), arr(b), b_words=words)) == (
            merge_intersect_py(a, b)
        )
        assert list(bitmap_subtract(arr(a), arr(b), b_words=words)) == (
            merge_subtract_py(a, b)
        )


class TestBitmapPrimitives:
    @given(ids=sorted_sets)
    def test_pack_unpack_round_trip(self, ids):
        words = pack_bitmap(arr(ids))
        assert list(unpack_bitmap(words)) == ids

    @given(ids=sorted_sets)
    def test_popcount(self, ids):
        assert popcount(pack_bitmap(arr(ids))) == len(ids)

    @given(a=sorted_sets, b=sorted_sets)
    def test_bitmap_and_count(self, a, b):
        count = bitmap_and_count(pack_bitmap(arr(a)), pack_bitmap(arr(b)))
        assert count == len(merge_intersect_py(a, b))

    def test_fixed_width_pack(self):
        words = pack_bitmap(arr([0, 63, 64, 200]), 256)
        assert words.size == 4
        assert list(unpack_bitmap(words, 256)) == [0, 63, 64, 200]


class TestDispatchMachinery:
    def test_force_kernel_validation(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            KernelPolicy(force_kernel="quantum")

    def test_counters_tally_dispatch(self):
        reset_kernel_counters()
        big = arr(list(range(0, 4000, 2)))
        small = arr([3, 5, 100])
        intersect_adaptive(small, big)  # skew -> gallop
        intersect_adaptive(big, big)  # balanced -> merge
        subtract_adaptive(small, big, KernelPolicy(force_kernel="bitmap"))
        counters = kernel_counters()
        assert counters["intersect/gallop"] == 1
        assert counters["intersect/merge"] == 1
        assert counters["subtract/bitmap"] == 1
        reset_kernel_counters()
        assert kernel_counters() == {}

    def test_forced_kernel_pins_every_dispatch(self):
        big = arr(list(range(0, 4000, 2)))
        small = arr([2, 4])
        reset_kernel_counters()
        policy = KernelPolicy(force_kernel="merge")
        intersect_adaptive(small, big, policy)
        assert kernel_counters() == {"intersect/merge": 1}
        reset_kernel_counters()


class TestKernelContext:
    def _graph(self):
        return barabasi_albert(300, 6, seed=2)

    def test_apply_op_matches_merge_reference(self):
        graph = self._graph()
        ctx = KernelContext(graph, KernelPolicy(hub_min_degree=8))
        for v in range(0, 300, 7):
            operand = graph.neighbors(v)
            source = graph.neighbors((v + 1) % 300)
            for kind in (
                OpKind.INIT_COPY,
                OpKind.INTERSECT,
                OpKind.SUBTRACT,
                OpKind.ANTI_SUBTRACT,
            ):
                src = None if kind is OpKind.INIT_COPY else source
                got = ctx.apply_op(kind, src, operand, vertex=v)
                want = apply_op(kind, src, operand)
                assert np.array_equal(got, want), (v, kind)

    def test_hub_bitmaps_actually_used(self):
        graph = self._graph()
        ctx = KernelContext(
            graph, KernelPolicy(hub_min_degree=4, hub_max_hubs=300)
        )
        hubs = graph.hub_bitmap_index(
            min_degree=4, max_hubs=300, memory_bytes=8 << 20
        )
        assert len(hubs) > 0
        hub = hubs.hub_ids[0]
        reset_kernel_counters()
        ctx.intersect(graph.neighbors((hub + 1) % 300), graph.neighbors(hub),
                      vertex=hub)
        assert kernel_counters().get("intersect/bitmap") == 1
        reset_kernel_counters()

    def test_requires_source_for_binary_ops(self):
        ctx = KernelContext(self._graph())
        with pytest.raises(ValueError, match="requires a source"):
            ctx.apply_op(OpKind.INTERSECT, None, arr([1, 2]))


class TestHubBitmapIndex:
    def test_memory_bound_caps_hub_count(self):
        graph = barabasi_albert(1000, 10, seed=4)
        bytes_per_hub = ((1000 + 63) // 64) * 8
        index = graph.hub_bitmap_index(
            max_hubs=64, min_degree=1, memory_bytes=3 * bytes_per_hub
        )
        assert len(index) == 3
        assert index.memory_bytes <= 3 * bytes_per_hub

    def test_selection_is_degree_desc_id_asc(self):
        # Star around 0 plus a smaller star around 1: degree order is
        # deterministic, ties broken by ascending id.
        edges = [(0, i) for i in range(2, 10)] + [(1, i) for i in range(5, 10)]
        graph = from_edges(edges, num_vertices=10)
        index = graph.hub_bitmap_index(max_hubs=2, min_degree=1)
        assert index.hub_ids == [0, 1]

    def test_words_match_neighbor_lists(self):
        graph = barabasi_albert(200, 5, seed=9)
        index = graph.hub_bitmap_index(min_degree=1, max_hubs=16)
        for v in index.hub_ids:
            words = index.words_for(v)
            assert list(unpack_bitmap(words, graph.num_vertices)) == list(
                graph.neighbors(v)
            )

    def test_memoized_and_not_pickled(self):
        import pickle

        graph = barabasi_albert(100, 4, seed=1)
        first = graph.hub_bitmap_index(min_degree=1)
        assert graph.hub_bitmap_index(min_degree=1) is first
        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph
        assert clone._hub_cache == {}
